"""Ledger auditing — "enable any participant to verify the integrity
of stored data" (Research Challenge 4).

An auditor is a lightweight client that keeps only the latest digest it
has verified.  Each audit round it requests a fresh digest plus a
consistency proof from the (untrusted) ledger holder and checks that
history only grew.  Optionally it spot-checks entries with inclusion
proofs.  The auditor never needs plaintext access to payloads, so
auditing is privacy-preserving by construction: for private data,
PReVer appends commitments/ciphertexts, and the auditor checks those.
"""

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.ledger.central import CentralLedger, LedgerDigest
from repro.obs.tracing import NOOP_TRACER


class AuditOutcome(enum.Enum):
    CONSISTENT = "consistent"
    TAMPERED = "tampered"
    FIRST_CONTACT = "first_contact"


@dataclass
class AuditReport:
    outcome: AuditOutcome
    old_digest: Optional[LedgerDigest]
    new_digest: LedgerDigest
    checked_entries: List[int] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.outcome is not AuditOutcome.TAMPERED


class LedgerAuditor:
    """A participant that periodically verifies a ledger's integrity."""

    def __init__(self, name: str = "auditor", tracer=None):
        self.name = name
        self.trusted_digest: Optional[LedgerDigest] = None
        self.audit_count = 0
        self.tracer = tracer or NOOP_TRACER

    def audit(
        self,
        ledger: CentralLedger,
        spot_check: int = 0,
        rng=None,
    ) -> AuditReport:
        """One audit round against a possibly-malicious ledger holder."""
        self.audit_count += 1
        span = None
        if self.tracer.enabled:
            span = self.tracer.start_trace(
                "audit.round",
                attributes={"auditor": self.name, "ledger": ledger.name,
                            "round": self.audit_count},
            )
        new_digest = ledger.digest()
        failures: List[str] = []
        checked: List[int] = []

        if self.trusted_digest is None:
            outcome = AuditOutcome.FIRST_CONTACT
        else:
            old = self.trusted_digest
            if new_digest.size < old.size:
                failures.append("history shrank")
                outcome = AuditOutcome.TAMPERED
            else:
                proof = ledger.prove_consistency(old.size, new_digest.size)
                if CentralLedger.verify_extension(old, new_digest, proof):
                    outcome = AuditOutcome.CONSISTENT
                else:
                    failures.append("consistency proof failed")
                    outcome = AuditOutcome.TAMPERED

        if outcome is not AuditOutcome.TAMPERED and spot_check and len(ledger):
            indices = self._choose_indices(len(ledger), spot_check, rng)
            for index in indices:
                entry = ledger.entry(index)
                proof = ledger.prove_inclusion(index, new_digest.size)
                ok = CentralLedger.verify_entry(new_digest, entry, proof)
                if not ok:
                    failures.append(f"inclusion failed for entry {index}")
                    outcome = AuditOutcome.TAMPERED
                checked.append(index)
                if span is not None:
                    # Anchored pipeline decisions carry the update's
                    # trace_id, so spot checks correlate with the
                    # pipeline's event log entry for the same update.
                    payload = entry.payload if isinstance(entry.payload, dict) else {}
                    self.tracer.event(
                        "audit.entry_check",
                        trace_id=payload.get("trace_id"),
                        auditor=self.name,
                        sequence=index,
                        ok=ok,
                    )

        report = AuditReport(
            outcome=outcome,
            old_digest=self.trusted_digest,
            new_digest=new_digest,
            checked_entries=checked,
            failures=failures,
        )
        if report.ok:
            self.trusted_digest = new_digest
        if span is not None:
            span.set_attribute("outcome", outcome.value)
            span.set_attribute("checked_entries", len(checked))
            if failures:
                span.set_status("error")
                span.set_attribute("failures", list(failures))
            span.end()
        return report

    def cross_check(self, other: "LedgerAuditor", ledger: CentralLedger) -> bool:
        """Gossip defense against split-view attacks.

        A malicious ledger holder can serve two auditors different,
        individually-consistent histories (a fork); neither auditor
        alone can notice.  When auditors gossip their trusted digests,
        the holder must produce a consistency proof between them —
        impossible across a fork.  Returns True when the two views are
        provably on one history.
        """
        mine, theirs = self.trusted_digest, other.trusted_digest
        if mine is None or theirs is None:
            return True  # nothing to compare yet
        older, newer = (mine, theirs) if mine.size <= theirs.size else (theirs, mine)
        if older.size == newer.size:
            return older.root == newer.root
        try:
            proof = ledger.prove_consistency(older.size, newer.size)
        except Exception:
            return False
        return CentralLedger.verify_extension(older, newer, proof)

    @staticmethod
    def _choose_indices(size: int, count: int, rng=None) -> List[int]:
        if rng is None:
            # Deterministic spread: evenly spaced spot checks.
            step = max(1, size // max(1, count))
            return list(range(0, size, step))[:count]
        return sorted({rng.randbelow(size) for _ in range(count)})
