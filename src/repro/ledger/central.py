"""The centralized ledger database (QLDB/LedgerDB substitute).

The ledger stores opaque entry payloads (PReVer appends update records
and constraint-verification attestations).  Every append extends a
Merkle tree; a *digest* (root + size) can be published out-of-band, and
the ledger produces:

* inclusion proofs — "entry i is in the history with digest D";
* consistency proofs — "digest D2 extends digest D1 append-only".

Tamper-evidence, not tamper-prevention: a malicious manager can rewrite
its local journal, but any participant holding an old digest will catch
it (see :mod:`repro.ledger.audit` and the tamper tests).
"""

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence

from repro.common.errors import IntegrityError
from repro.common.serialization import (
    canonical_bytes,
    canonical_json,
    from_canonical_json,
)
from repro.crypto.merkle import (
    ConsistencyProof,
    InclusionProof,
    MerkleTree,
    verify_consistency,
    verify_inclusion,
)
from repro.obs.tracing import NOOP_TRACER


@dataclass(frozen=True)
class LedgerEntry:
    """One journal entry: a sequence number plus an opaque payload."""

    sequence: int
    payload: Any

    def leaf_bytes(self) -> bytes:
        return canonical_bytes({"sequence": self.sequence, "payload": self.payload})


@dataclass(frozen=True)
class LedgerDigest:
    """A published commitment to the first ``size`` entries."""

    size: int
    root: bytes

    def to_dict(self) -> dict:
        return {"size": self.size, "root": self.root}


class CentralLedger:
    """Append-only journal with Merkle anchoring."""

    def __init__(self, name: str = "ledger", tracer=None, executor=None):
        self.name = name
        self._entries: List[LedgerEntry] = []
        self._tree = MerkleTree()
        self._tracer = tracer or NOOP_TRACER
        self._executor = executor

    def bind_tracer(self, tracer) -> None:
        """Attach a tracer after construction (the framework does this
        so Merkle-extension spans appear in pipeline traces)."""
        self._tracer = tracer

    def bind_executor(self, executor) -> None:
        """Attach an execution layer; batch appends then hash their
        leaf chunks across its workers (roots stay bit-identical —
        only the leaf hashing parallelizes, the tree combines
        serially)."""
        self._executor = executor

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, payload: Any) -> LedgerEntry:
        entry = LedgerEntry(sequence=len(self._entries), payload=payload)
        self._entries.append(entry)
        self._tree.append(entry.leaf_bytes())
        return entry

    def append_batch(self, payloads: Sequence[Any],
                     executor=None) -> List[LedgerEntry]:
        """Append many payloads under one amortized Merkle extension.

        Entries get the same consecutive sequence numbers (and hence
        the same leaf bytes, digests, inclusion and consistency proofs)
        as if each payload had been :meth:`append`-ed individually —
        the tree is simply extended in bulk instead of leaf-by-leaf.
        ``executor`` overrides the bound execution layer for this batch
        (leaf-chunk hashing only; results are digest-identical).
        """
        executor = executor if executor is not None else self._executor
        start = len(self._entries)
        entries = [
            LedgerEntry(sequence=start + offset, payload=payload)
            for offset, payload in enumerate(payloads)
        ]
        self._entries.extend(entries)
        if self._tracer.enabled:
            with self._tracer.span("merkle.extend", ledger=self.name,
                                   leaves=len(entries), start=start):
                self._tree.extend((entry.leaf_bytes() for entry in entries),
                                  executor=executor)
        else:
            self._tree.extend((entry.leaf_bytes() for entry in entries),
                              executor=executor)
        return entries

    def entry(self, sequence: int) -> LedgerEntry:
        try:
            return self._entries[sequence]
        except IndexError:
            raise IntegrityError(f"no entry {sequence} in {self.name!r}") from None

    def entries(self, since: int = 0) -> List[LedgerEntry]:
        return list(self._entries[since:])

    def digest(self, size: Optional[int] = None) -> LedgerDigest:
        size = len(self._entries) if size is None else size
        return LedgerDigest(size=size, root=self._tree.root(size))

    def prove_inclusion(self, sequence: int, size: Optional[int] = None) -> InclusionProof:
        return self._tree.inclusion_proof(sequence, size)

    def prove_consistency(self, old_size: int, new_size: Optional[int] = None) -> ConsistencyProof:
        return self._tree.consistency_proof(old_size, new_size)

    # -- static verification (no ledger access needed) -------------------

    @staticmethod
    def verify_entry(
        digest: LedgerDigest, entry: LedgerEntry, proof: InclusionProof
    ) -> bool:
        if proof.tree_size != digest.size:
            return False
        return verify_inclusion(digest.root, entry.leaf_bytes(), proof)

    @staticmethod
    def verify_extension(
        old: LedgerDigest, new: LedgerDigest, proof: ConsistencyProof
    ) -> bool:
        if proof.old_size != old.size or proof.new_size != new.size:
            return False
        return verify_consistency(old.root, new.root, proof)

    # -- persistence -------------------------------------------------------

    def dump(self, path: str) -> None:
        """Persist the journal as canonical JSON lines: a header with
        the current digest, then one line per entry.  The digest lets
        :meth:`load` detect a file tampered at rest."""
        digest = self.digest()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(canonical_json({
                "ledger": self.name,
                "size": digest.size,
                "root": digest.root,
            }) + "\n")
            for entry in self._entries:
                handle.write(canonical_json({
                    "sequence": entry.sequence,
                    "payload": entry.payload,
                }) + "\n")

    @classmethod
    def load(cls, path: str) -> "CentralLedger":
        """Rebuild a ledger from :meth:`dump` output, verifying every
        entry against the stored digest (fail-closed on tampering)."""
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line.rstrip("\n") for line in handle if line.strip()]
        if not lines:
            raise IntegrityError("empty ledger file")
        header = from_canonical_json(lines[0])
        ledger = cls(name=header.get("ledger", "ledger"))
        for index, line in enumerate(lines[1:]):
            record = from_canonical_json(line)
            if record.get("sequence") != index:
                raise IntegrityError(
                    f"ledger file out of order at entry {index}"
                )
            ledger.append(record["payload"])
        digest = ledger.digest()
        if digest.size != header["size"] or digest.root != header["root"]:
            raise IntegrityError(
                "ledger file digest mismatch: tampered or truncated"
            )
        return ledger

    # -- adversarial hooks for the tamper tests ---------------------------

    def tamper_rewrite(self, sequence: int, payload: Any) -> None:
        """Simulate a malicious manager rewriting history in place.

        Rebuilds the tree so the *current* digest looks internally
        consistent; detection happens when checked against an honestly
        retained earlier digest.
        """
        if not 0 <= sequence < len(self._entries):
            raise IntegrityError("tamper target out of range")
        self._entries[sequence] = LedgerEntry(sequence=sequence, payload=payload)
        self._tree = MerkleTree([e.leaf_bytes() for e in self._entries])
