"""The centralized ledger database (QLDB/LedgerDB substitute).

The ledger stores opaque entry payloads (PReVer appends update records
and constraint-verification attestations).  Every append extends a
Merkle tree; a *digest* (root + size) can be published out-of-band, and
the ledger produces:

* inclusion proofs — "entry i is in the history with digest D";
* consistency proofs — "digest D2 extends digest D1 append-only".

Tamper-evidence, not tamper-prevention: a malicious manager can rewrite
its local journal, but any participant holding an old digest will catch
it (see :mod:`repro.ledger.audit` and the tamper tests).
"""

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence

from repro.common.encoding import RawJson, encode_canonical_bytes
from repro.common.errors import IntegrityError
from repro.common.serialization import (
    canonical_bytes,
    canonical_json,
    from_canonical_json,
)
from repro.crypto.merkle import (
    ConsistencyProof,
    InclusionProof,
    MerkleTree,
    verify_consistency,
    verify_inclusion,
)
from repro.obs.tracing import NOOP_TRACER


@dataclass(frozen=True)
class LedgerEntry:
    """One journal entry: a sequence number plus an opaque payload.

    The entry is frozen, so its canonical leaf bytes are computed once
    and cached on the instance (encode-once): the Merkle append, the
    ``/trace`` re-verification, and audit-side inclusion checks all
    reuse the same bytes instead of re-serializing the payload.
    """

    sequence: int
    payload: Any

    def leaf_bytes(self) -> bytes:
        """Canonical bytes hashed into the Merkle tree for this entry
        (cached; the instance is frozen, so the memo is sound)."""
        cached = self.__dict__.get("_leaf_bytes")
        if cached is None:
            cached = canonical_bytes(
                {"sequence": self.sequence, "payload": self.payload}
            )
            object.__setattr__(self, "_leaf_bytes", cached)
        return cached

    @classmethod
    def with_encoded_payload(cls, sequence: int, payload: Any,
                             encoded_payload: str) -> "LedgerEntry":
        """Build an entry whose payload was already canonically encoded
        (``encoded_payload`` must be ``canonical_json(payload)``); the
        leaf bytes splice the fragment instead of re-encoding, and the
        result is byte-identical to the re-encoding path."""
        entry = cls(sequence=sequence, payload=payload)
        object.__setattr__(
            entry, "_leaf_bytes",
            encode_canonical_bytes(
                {"sequence": sequence, "payload": RawJson(encoded_payload)}
            ),
        )
        return entry


@dataclass(frozen=True)
class LedgerDigest:
    """A published commitment to the first ``size`` entries."""

    size: int
    root: bytes

    def to_dict(self) -> dict:
        """Serializable form (``root`` stays raw bytes; the canonical
        JSON encoder hex-tags it)."""
        return {"size": self.size, "root": self.root}


class CentralLedger:
    """Append-only journal with Merkle anchoring."""

    def __init__(self, name: str = "ledger", tracer=None, executor=None):
        self.name = name
        self._entries: List[LedgerEntry] = []
        self._tree = MerkleTree()
        self._tracer = tracer or NOOP_TRACER
        self._executor = executor

    def bind_tracer(self, tracer) -> None:
        """Attach a tracer after construction (the framework does this
        so Merkle-extension spans appear in pipeline traces)."""
        self._tracer = tracer

    def bind_executor(self, executor) -> None:
        """Attach an execution layer; batch appends then hash their
        leaf chunks across its workers (roots stay bit-identical —
        only the leaf hashing parallelizes, the tree combines
        serially)."""
        self._executor = executor

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, payload: Any,
               encoded_payload: Optional[str] = None) -> LedgerEntry:
        """Append one opaque payload; returns the new journal entry
        (its ``sequence`` doubles as the Merkle leaf index).

        ``encoded_payload``, when given, must be the payload's
        canonical JSON; the leaf bytes then splice it instead of
        re-encoding (the anchor stage shares one encoding between the
        Merkle leaf and the WAL anchor frame).
        """
        sequence = len(self._entries)
        if encoded_payload is None:
            entry = LedgerEntry(sequence=sequence, payload=payload)
        else:
            entry = LedgerEntry.with_encoded_payload(
                sequence, payload, encoded_payload
            )
        self._entries.append(entry)
        self._tree.append(entry.leaf_bytes())
        return entry

    def append_batch(self, payloads: Sequence[Any], executor=None,
                     encoded_payloads: Optional[Sequence[str]] = None,
                     ) -> List[LedgerEntry]:
        """Append many payloads under one amortized Merkle extension.

        Entries get the same consecutive sequence numbers (and hence
        the same leaf bytes, digests, inclusion and consistency proofs)
        as if each payload had been :meth:`append`-ed individually —
        the tree is simply extended in bulk instead of leaf-by-leaf.
        ``executor`` overrides the bound execution layer for this batch
        (leaf-chunk hashing only; results are digest-identical).
        ``encoded_payloads`` (parallel to ``payloads``) carries each
        payload's canonical JSON when the caller already encoded it;
        leaf bytes are then assembled by fragment splicing — zero
        payload re-serialization — with byte-identical output.
        """
        executor = executor if executor is not None else self._executor
        start = len(self._entries)
        if encoded_payloads is None:
            entries = [
                LedgerEntry(sequence=start + offset, payload=payload)
                for offset, payload in enumerate(payloads)
            ]
        else:
            if len(encoded_payloads) != len(payloads):
                raise IntegrityError(
                    "encoded_payloads must parallel payloads"
                )
            entries = [
                LedgerEntry.with_encoded_payload(
                    start + offset, payload, encoded
                )
                for offset, (payload, encoded)
                in enumerate(zip(payloads, encoded_payloads))
            ]
        self._entries.extend(entries)
        leaf_data = [entry.leaf_bytes() for entry in entries]
        if self._tracer.enabled:
            with self._tracer.span("merkle.extend", ledger=self.name,
                                   leaves=len(entries), start=start):
                self._tree.extend(leaf_data, executor=executor)
        else:
            self._tree.extend(leaf_data, executor=executor)
        return entries

    def entry(self, sequence: int) -> LedgerEntry:
        """The entry at ``sequence``; :class:`IntegrityError` if absent."""
        try:
            return self._entries[sequence]
        except IndexError:
            raise IntegrityError(f"no entry {sequence} in {self.name!r}") from None

    def entries(self, since: int = 0) -> List[LedgerEntry]:
        """All entries from sequence ``since`` onward (a shallow copy)."""
        return list(self._entries[since:])

    def digest(self, size: Optional[int] = None) -> LedgerDigest:
        """The commitment to the first ``size`` entries (default: all)."""
        size = len(self._entries) if size is None else size
        return LedgerDigest(size=size, root=self._tree.root(size))

    def prove_inclusion(self, sequence: int, size: Optional[int] = None) -> InclusionProof:
        """Audit path showing entry ``sequence`` is under the size-``size``
        digest (default: the current one)."""
        return self._tree.inclusion_proof(sequence, size)

    def prove_consistency(self, old_size: int, new_size: Optional[int] = None) -> ConsistencyProof:
        """Proof that the ``old_size``-entry history is an untouched
        prefix of the ``new_size``-entry history (default: current)."""
        return self._tree.consistency_proof(old_size, new_size)

    # -- static verification (no ledger access needed) -------------------

    @staticmethod
    def verify_entry(
        digest: LedgerDigest, entry: LedgerEntry, proof: InclusionProof
    ) -> bool:
        """Check an inclusion proof against a published digest."""
        if proof.tree_size != digest.size:
            return False
        return verify_inclusion(digest.root, entry.leaf_bytes(), proof)

    @staticmethod
    def verify_extension(
        old: LedgerDigest, new: LedgerDigest, proof: ConsistencyProof
    ) -> bool:
        """Check a consistency proof between two published digests."""
        if proof.old_size != old.size or proof.new_size != new.size:
            return False
        return verify_consistency(old.root, new.root, proof)

    # -- durability hooks --------------------------------------------------

    def snapshot_state(self) -> dict:
        """Serializable ledger state for the durability snapshotter.

        Includes the leaf-hash vector so :meth:`restore_state` can
        rebuild the Merkle tree without rehashing, plus the root as a
        self-check, and the raw payloads so audits keep working after
        recovery.
        """
        digest = self.digest()
        return {
            "name": self.name,
            "size": digest.size,
            "root": digest.root.hex(),
            "leaf_hashes": [h.hex() for h in self._tree.leaf_hashes()],
            "entries": [entry.payload for entry in self._entries],
        }

    def restore_state(self, state: dict) -> None:
        """Restore from :meth:`snapshot_state` output into an empty
        ledger, verifying the rebuilt tree's root against the stored
        one (fail-closed: :class:`IntegrityError` on any mismatch)."""
        if self._entries:
            raise IntegrityError(
                f"refusing to restore into non-empty ledger {self.name!r}"
            )
        entries = state["entries"]
        leaf_hashes = [bytes.fromhex(h) for h in state["leaf_hashes"]]
        if len(entries) != len(leaf_hashes) or len(entries) != state["size"]:
            raise IntegrityError("ledger snapshot size mismatch")
        self._entries = [
            LedgerEntry(sequence=index, payload=payload)
            for index, payload in enumerate(entries)
        ]
        self._tree = MerkleTree.from_leaf_hashes(leaf_hashes)
        root = self._tree.root()
        if root.hex() != state["root"]:
            raise IntegrityError(
                "ledger snapshot root mismatch: snapshot tampered or corrupt"
            )

    # -- persistence -------------------------------------------------------

    def dump(self, path: str) -> None:
        """Persist the journal as canonical JSON lines: a header with
        the current digest, then one line per entry.  The digest lets
        :meth:`load` detect a file tampered at rest."""
        digest = self.digest()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(canonical_json({
                "ledger": self.name,
                "size": digest.size,
                "root": digest.root,
            }) + "\n")
            for entry in self._entries:
                handle.write(canonical_json({
                    "sequence": entry.sequence,
                    "payload": entry.payload,
                }) + "\n")

    @classmethod
    def load(cls, path: str) -> "CentralLedger":
        """Rebuild a ledger from :meth:`dump` output, verifying every
        entry against the stored digest (fail-closed on tampering)."""
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line.rstrip("\n") for line in handle if line.strip()]
        if not lines:
            raise IntegrityError("empty ledger file")
        header = from_canonical_json(lines[0])
        ledger = cls(name=header.get("ledger", "ledger"))
        for index, line in enumerate(lines[1:]):
            record = from_canonical_json(line)
            if record.get("sequence") != index:
                raise IntegrityError(
                    f"ledger file out of order at entry {index}"
                )
            ledger.append(record["payload"])
        digest = ledger.digest()
        if digest.size != header["size"] or digest.root != header["root"]:
            raise IntegrityError(
                "ledger file digest mismatch: tampered or truncated"
            )
        return ledger

    # -- adversarial hooks for the tamper tests ---------------------------

    def tamper_rewrite(self, sequence: int, payload: Any) -> None:
        """Simulate a malicious manager rewriting history in place.

        Rebuilds the tree so the *current* digest looks internally
        consistent; detection happens when checked against an honestly
        retained earlier digest.
        """
        if not 0 <= sequence < len(self._entries):
            raise IntegrityError("tamper target out of range")
        self._entries[sequence] = LedgerEntry(sequence=sequence, payload=payload)
        self._tree = MerkleTree([e.leaf_bytes() for e in self._entries])
