"""Authenticated query results (RC4, the read path).

The ledger anchors the *decision history*; clients also need to trust
*query answers* from an untrusted manager ("verifiable database
techniques", Section 4).  This module provides an authenticated view
over a table:

* the manager periodically publishes a **state commitment** — the
  Merkle root over the table's rows sorted by primary key — and anchors
  it on the ledger;
* a query answer for key k comes with an **inclusion proof** against
  the commitment;
* a *negative* answer ("no such row") comes with an **absence proof**:
  inclusion proofs for the two key-adjacent rows bracketing k, whose
  adjacency in the sorted leaf order shows nothing lies between them.

So a malicious manager can neither fabricate rows, return stale values
(the commitment is anchored and auditable), nor silently suppress rows.
"""

import bisect
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import IntegrityError
from repro.common.serialization import canonical_bytes
from repro.crypto.merkle import InclusionProof, MerkleTree, verify_inclusion
from repro.database.table import Table
from repro.ledger.central import CentralLedger


def _key_bytes(key: Tuple) -> bytes:
    return canonical_bytes(list(key))


def _leaf_bytes(key: Tuple, row: Dict[str, Any]) -> bytes:
    return canonical_bytes({"key": list(key), "row": row})


@dataclass(frozen=True)
class StateCommitment:
    """Published commitment to one table snapshot."""

    table: str
    version: int
    size: int
    root: bytes

    def to_dict(self) -> dict:
        return {"table": self.table, "version": self.version,
                "size": self.size, "root": self.root}


@dataclass(frozen=True)
class RowProof:
    key: Tuple
    row: Dict[str, Any]
    proof: InclusionProof


@dataclass(frozen=True)
class AbsenceProof:
    """The two sorted-order neighbours bracketing the missing key.

    ``left`` is None when the key sorts before every row; ``right`` is
    None when it sorts after every row; both present means the key
    would fall strictly between two adjacent leaves.
    """

    missing_key: Tuple
    left: Optional[RowProof]
    right: Optional[RowProof]


class AuthenticatedTableView:
    """Manager-side: snapshots a table and serves proofs.

    ``snapshot()`` must be called after each update batch; old
    snapshots remain provable (clients verify against the commitment
    version they hold).
    """

    def __init__(self, table: Table, ledger: Optional[CentralLedger] = None):
        self.table = table
        self.ledger = ledger or CentralLedger(name=f"{table.schema.name}-state")
        self._versions: List[dict] = []

    def snapshot(self) -> StateCommitment:
        rows = {
            self.table.schema.key_of(row): row for row in self.table.rows()
        }
        ordered_keys = sorted(rows, key=_key_bytes)
        tree = MerkleTree([_leaf_bytes(k, rows[k]) for k in ordered_keys])
        commitment = StateCommitment(
            table=self.table.schema.name,
            version=len(self._versions),
            size=len(ordered_keys),
            root=tree.root(),
        )
        self._versions.append(
            {"keys": ordered_keys, "rows": rows, "tree": tree,
             "commitment": commitment}
        )
        self.ledger.append(commitment.to_dict())
        return commitment

    def latest(self) -> StateCommitment:
        if not self._versions:
            raise IntegrityError("no snapshot published yet")
        return self._versions[-1]["commitment"]

    def _version(self, version: Optional[int]) -> dict:
        if not self._versions:
            raise IntegrityError("no snapshot published yet")
        if version is None:
            return self._versions[-1]
        try:
            return self._versions[version]
        except IndexError:
            raise IntegrityError(f"no snapshot version {version}") from None

    def prove_row(self, key: Tuple, version: Optional[int] = None) -> RowProof:
        state = self._version(version)
        try:
            index = state["keys"].index(key)
        except ValueError:
            raise IntegrityError(f"no row {key!r} in this snapshot") from None
        return RowProof(
            key=key,
            row=state["rows"][key],
            proof=state["tree"].inclusion_proof(index),
        )

    def prove_absent(self, key: Tuple, version: Optional[int] = None) -> AbsenceProof:
        state = self._version(version)
        if key in state["rows"]:
            raise IntegrityError(f"{key!r} exists; absence is unprovable")
        ordered = state["keys"]
        position = bisect.bisect_left(
            [_key_bytes(k) for k in ordered], _key_bytes(key)
        )
        left = None
        right = None
        if position > 0:
            left = self.prove_row(ordered[position - 1], version)
        if position < len(ordered):
            right = self.prove_row(ordered[position], version)
        return AbsenceProof(missing_key=key, left=left, right=right)


# -- client-side verification (static; no view access required) -------------

def verify_row(commitment: StateCommitment, proof: RowProof) -> bool:
    if proof.proof.tree_size != commitment.size:
        return False
    return verify_inclusion(
        commitment.root, _leaf_bytes(proof.key, proof.row), proof.proof
    )


def verify_absence(commitment: StateCommitment, proof: AbsenceProof) -> bool:
    missing = _key_bytes(proof.missing_key)
    if proof.left is None and proof.right is None:
        return commitment.size == 0
    left_index = -1
    if proof.left is not None:
        if not verify_row(commitment, proof.left):
            return False
        if _key_bytes(proof.left.key) >= missing:
            return False
        left_index = proof.left.proof.leaf_index
    if proof.right is not None:
        if not verify_row(commitment, proof.right):
            return False
        if _key_bytes(proof.right.key) <= missing:
            return False
        if proof.right.proof.leaf_index != left_index + 1:
            return False  # not adjacent: something could hide between
    else:
        # Key sorts after every row: left must be the last leaf.
        if left_index != commitment.size - 1:
            return False
    if proof.left is None:
        # Key sorts before every row: right must be the first leaf.
        if proof.right is None or proof.right.proof.leaf_index != 0:
            return False
    return True
