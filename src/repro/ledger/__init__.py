"""Append-only ledgers (Research Challenge 4, single-database setting).

A centralized ledger database in the style of Amazon QLDB / Alibaba
LedgerDB: an append-only journal whose entries are anchored in a Merkle
tree, exposing digests, inclusion proofs, consistency proofs, and an
auditor that any participant can run against an untrusted copy.
"""

from repro.ledger.central import CentralLedger, LedgerEntry, LedgerDigest
from repro.ledger.audit import LedgerAuditor, AuditReport

__all__ = [
    "CentralLedger",
    "LedgerEntry",
    "LedgerDigest",
    "LedgerAuditor",
    "AuditReport",
]
