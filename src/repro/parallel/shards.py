"""Process-backed shard workers: stateful task pinning for scale-out.

:class:`~repro.parallel.executors.ParallelExecutor` fans *stateless*
chunk functions across a shared pool — fine for crypto work, useless
for a shard, which is a long-lived stateful ``PReVer`` (tables, ledger
Merkle frontier, WAL handles, engine caches).  A shard's state must
live in exactly one process for its whole lifetime.

:class:`ShardWorker` provides that pinning by construction: each
worker owns a *dedicated single-process* ``ProcessPoolExecutor``, so
every task submitted through it lands in the same child process.  The
child builds the framework once (from a picklable builder callable)
into a module-level registry, and subsequent calls look it up by key —
no framework state ever crosses the process boundary; only updates go
in and :class:`~repro.core.outcome.UpdateResult` lists, digests, and
report dicts come back.

Used by :class:`repro.core.sharded.ShardedPReVer` under
``dispatch="process"``; everything here is dispatch plumbing, the
sharding semantics live there.
"""

import atexit
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Callable, Dict, List

from repro.common.errors import PReVerError

#: Child-process-side registry: shard key -> the built framework.  One
#: ShardWorker's pool has exactly one process, so each child sees only
#: its own shard's entry.
_STATE: Dict[str, object] = {}

#: Child-process-side delta trackers: shard key -> the DeltaTracker
#: computing incremental telemetry captures for that shard.
_TRACKERS: Dict[str, object] = {}


def _shard_build(key: str, builder: Callable[[], object]) -> bool:
    """(child) Build the shard's framework into the registry."""
    _STATE[key] = builder()
    return True


def _shard_method(key: str, method: str, args: tuple, kwargs: dict):
    """(child) Call a public framework method and return its result."""
    return getattr(_STATE[key], method)(*args, **kwargs)


def _shard_digest(key: str):
    """(child) The shard ledger's current digest."""
    return _STATE[key].ledger.digest()


def _shard_metrics(key: str) -> dict:
    """(child) The shard's metrics snapshot."""
    return _STATE[key].metrics.snapshot()


def _shard_telemetry(key: str):
    """(child) The shard's telemetry delta since the last capture.

    The first capture for a shard covers everything it ever recorded
    (origin baseline), so a coordinator that starts scraping late still
    sees the full history; later captures ship only the increments.
    """
    from repro.obs.aggregate import DeltaTracker

    framework = _STATE[key]
    tracker = _TRACKERS.get(key)
    if tracker is None:
        tracker = _TRACKERS[key] = DeltaTracker(
            framework.metrics, tracer=framework.tracer, origin=True
        )
    return tracker.capture()


def _shard_counters(key: str) -> dict:
    """(child) The running pipeline counters recovery and reporting
    need coordinator-side."""
    framework = _STATE[key]
    return {
        "submitted": framework._submitted_count,
        "applied": framework._applied_count,
        "ledger_size": len(framework.ledger),
    }


_LIVE_WORKERS: List["ShardWorker"] = []


def _shutdown_workers() -> None:
    while _LIVE_WORKERS:
        _LIVE_WORKERS.pop().shutdown()


atexit.register(_shutdown_workers)


class ShardWorker:
    """One shard pinned to one dedicated child process.

    The pool has ``max_workers=1``, so every call routes to the same
    process and the framework built by ``builder`` stays resident
    there.  ``builder`` must be picklable (a top-level function or a
    ``functools.partial`` over one) and must construct the shard's
    entire framework — databases, constraints, durability — inside the
    child; nothing built in the parent is shipped over.
    """

    def __init__(self, key: str, builder: Callable[[], object]):
        self.key = key
        self._pool = ProcessPoolExecutor(max_workers=1)
        self._closed = False
        try:
            self._pool.submit(_shard_build, key, builder).result()
        except Exception as exc:
            self._pool.shutdown(wait=False, cancel_futures=True)
            raise PReVerError(
                f"shard {key!r} failed to build in its worker: {exc}"
            ) from exc
        _LIVE_WORKERS.append(self)

    def call(self, method: str, *args, **kwargs):
        """Run a framework method in the shard's process, blocking."""
        return self.call_async(method, *args, **kwargs).result()

    def call_async(self, method: str, *args, **kwargs) -> Future:
        """Run a framework method in the shard's process; returns the
        future so batches fan out across shards concurrently."""
        if self._closed:
            raise PReVerError(f"shard worker {self.key!r} is shut down")
        return self._pool.submit(_shard_method, self.key, method, args, kwargs)

    def digest(self):
        """The shard ledger's digest, fetched from the child."""
        return self._pool.submit(_shard_digest, self.key).result()

    def metrics_snapshot(self) -> dict:
        """The shard's metrics snapshot, fetched from the child."""
        return self._pool.submit(_shard_metrics, self.key).result()

    def telemetry_delta(self):
        """The shard's incremental
        :class:`~repro.obs.aggregate.TelemetryDelta` (everything since
        the previous call; the full history on the first)."""
        return self._pool.submit(_shard_telemetry, self.key).result()

    def alive(self) -> bool:
        """Liveness probe: True while the pinned child can take work."""
        if self._closed:
            return False
        return not getattr(self._pool, "_broken", False)

    def counters(self) -> dict:
        """Submitted/applied/ledger-size counters from the child."""
        return self._pool.submit(_shard_counters, self.key).result()

    def shutdown(self) -> None:
        """Close the shard framework (WAL flush) and kill the child."""
        if self._closed:
            return
        self._closed = True
        try:
            self._pool.submit(
                _shard_method, self.key, "close", (), {}
            ).result(timeout=30)
        except Exception:
            pass  # the child may already be gone (crash tests)
        self._pool.shutdown(wait=False, cancel_futures=True)
        if self in _LIVE_WORKERS:
            _LIVE_WORKERS.remove(self)
