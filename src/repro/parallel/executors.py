"""Executor implementations for chunked crypto work.

The contract all call sites rely on:

* ``map_chunks(fn, items)`` splits ``items`` into contiguous chunks,
  applies ``fn(chunk) -> list`` to each, and returns the concatenation
  in input order.  ``fn`` must be a top-level function and chunks must
  pickle; per-item results must pickle back.
* The serial executor applies ``fn`` to the whole item list in the
  calling process — identical arithmetic, identical ordering — so any
  correctly chunk-local ``fn`` is execution-equivalent across
  executors.

Process pools are cached per worker count and shared across executor
instances (one fork-server-style warm pool per process), so tests and
short-lived frameworks do not pay pool startup per batch.  Pools are
torn down atexit.
"""

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.common.errors import PReVerError
from repro.obs.aggregate import instrumented_chunk, merge_delta
from repro.obs.tracing import NOOP_TRACER

#: Below this many items a process round-trip costs more than it saves;
#: ``ParallelExecutor`` runs such batches inline.
DEFAULT_MIN_ITEMS = 8

_ENV_EXECUTOR = "REPRO_EXECUTOR"
_ENV_WORKERS = "REPRO_WORKERS"


def split_chunks(items: Sequence, n_chunks: int) -> List[List]:
    """Split ``items`` into at most ``n_chunks`` contiguous, near-even
    chunks (never empty ones), preserving order."""
    items = list(items)
    if not items:
        return []
    n_chunks = max(1, min(n_chunks, len(items)))
    base, extra = divmod(len(items), n_chunks)
    chunks = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks


class Executor:
    """Interface: chunked map over picklable items."""

    name = "abstract"
    workers = 1
    #: True when chunks may run in other processes (call sites that are
    #: order-sensitive or unpicklable should check this).
    parallel = False

    def bind_tracer(self, tracer) -> None:
        """Attach a tracer; parallel maps then record ``parallel.map``
        spans with worker/chunk counts."""

    def bind_metrics(self, registry) -> None:
        """Attach a metrics registry; pooled maps then collect each
        worker's telemetry delta alongside its results and merge it
        here under per-worker labels.  A no-op for executors that run
        everything in the calling process (their work already records
        into the caller's registry)."""

    def healthy(self) -> bool:
        """Liveness probe for the ops server: True when the executor
        can still accept work (always, for in-process executors)."""
        return True

    def map_chunks(self, fn: Callable[[list], list], items: Sequence,
                   label: str = "map") -> list:
        """Apply ``fn(chunk) -> list`` across chunks of ``items`` and
        return the concatenated results in input order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (shared pools survive; see module notes)."""

    def describe(self) -> dict:
        """Identification for bench artifacts and reports."""
        return {"executor": self.name, "workers": self.workers}


class SerialExecutor(Executor):
    """Run every chunk function inline — the default execution mode."""

    name = "serial"
    workers = 1
    parallel = False

    def map_chunks(self, fn: Callable[[list], list], items: Sequence,
                   label: str = "map") -> list:
        """Apply ``fn`` to the whole list in the calling process."""
        items = list(items)
        if not items:
            return []
        return list(fn(items))


#: Shared default instance; stateless, safe to reuse everywhere.
SERIAL_EXECUTOR = SerialExecutor()


# -- shared process pools ---------------------------------------------------

_POOL_CACHE: Dict[int, ProcessPoolExecutor] = {}


def _shared_pool(workers: int) -> ProcessPoolExecutor:
    pool = _POOL_CACHE.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _POOL_CACHE[workers] = pool
    return pool


def _shutdown_pools() -> None:
    while _POOL_CACHE:
        _, pool = _POOL_CACHE.popitem()
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(_shutdown_pools)


class ParallelExecutor(Executor):
    """Fan chunks out to a process pool, reassemble in input order.

    ``workers`` defaults to the host CPU count.  Batches smaller than
    ``min_items`` run inline (the pool round-trip would dominate).
    Worker processes are plain CPython interpreters: chunk functions
    re-derive any per-process state (Paillier key caches, randomness
    pools) locally — nothing in this repo shares mutable state across
    workers.
    """

    name = "process"
    parallel = True

    def __init__(self, workers: Optional[int] = None,
                 min_items: int = DEFAULT_MIN_ITEMS,
                 tracer=None):
        if workers is not None and workers <= 0:
            raise PReVerError("ParallelExecutor needs a positive worker count")
        self.workers = workers or os.cpu_count() or 1
        self.min_items = min_items
        self.tracer = tracer or NOOP_TRACER
        # Telemetry collection (off unless a registry is bound): pooled
        # chunks are wrapped so each worker's metric delta rides back
        # with its results, merged here under a stable per-worker label
        # (pids map to w0, w1, ... in first-seen order).
        self._metrics = None
        self._worker_labels: Dict[int, str] = {}

    def bind_tracer(self, tracer) -> None:
        """Attach a tracer: maps then emit ``parallel.map`` spans."""
        self.tracer = tracer

    def bind_metrics(self, registry) -> None:
        """Attach the coordinator registry worker telemetry merges
        into.  Rebinding (an executor shared across frameworks)
        redirects future merges to the latest registry."""
        self._metrics = registry

    def healthy(self) -> bool:
        """True while the shared pool (if started) is not broken."""
        pool = _POOL_CACHE.get(self.workers)
        if pool is None:
            return True  # lazily started; nothing to be broken yet
        return not getattr(pool, "_broken", False)

    def _submit(self, pool, fn, chunk):
        if self._metrics is not None:
            return pool.submit(instrumented_chunk, fn, chunk)
        return pool.submit(fn, chunk)

    def _consume(self, future) -> list:
        value = future.result()
        if self._metrics is not None:
            results, delta, pid = value
            label = self._worker_labels.get(pid)
            if label is None:
                label = f"worker.w{len(self._worker_labels)}"
                self._worker_labels[pid] = label
            merge_delta(self._metrics, delta, prefix=label)
            return results
        return value

    def map_chunks(self, fn: Callable[[list], list], items: Sequence,
                   label: str = "map") -> list:
        """Fan chunks out to the shared process pool (inline below
        ``min_items``); results come back in input order."""
        items = list(items)
        if not items:
            return []
        if len(items) < max(2, self.min_items) or self.workers == 1:
            # Inline fast path: identical arithmetic, no pool traffic.
            return list(fn(items))
        chunks = split_chunks(items, self.workers)
        if self.tracer.enabled:
            return self._map_traced(fn, chunks, len(items), label)
        pool = _shared_pool(self.workers)
        futures = [self._submit(pool, fn, chunk) for chunk in chunks]
        out: List[Any] = []
        for future in futures:
            out.extend(self._consume(future))
        return out

    def _map_traced(self, fn, chunks, n_items: int, label: str) -> list:
        """Same fan-out, wrapped in a ``parallel.map`` span with one
        ``parallel.chunk`` child per submitted chunk."""
        pool = _shared_pool(self.workers)
        with self.tracer.span(
            "parallel.map", label=label, workers=self.workers,
            chunks=len(chunks), items=n_items,
        ) as span:
            futures = []
            for i, chunk in enumerate(chunks):
                child = span.child(
                    "parallel.chunk", chunk=i, items=len(chunk)
                )
                futures.append((self._submit(pool, fn, chunk), child))
            out: List[Any] = []
            for future, child in futures:
                try:
                    out.extend(self._consume(future))
                except BaseException as exc:
                    child.set_status("error")
                    child.set_attribute("exception", repr(exc))
                    raise
                finally:
                    child.end()
        return out


# -- selection --------------------------------------------------------------

def make_executor(kind: str, workers: Optional[int] = None) -> Executor:
    """Build an executor by name (``serial`` | ``process``)."""
    if kind == "serial":
        return SERIAL_EXECUTOR
    if kind == "process":
        return ParallelExecutor(workers=workers)
    raise PReVerError(f"unknown executor kind {kind!r}")


def executor_from_env(environ=None) -> Executor:
    """Resolve the default executor from ``REPRO_EXECUTOR`` /
    ``REPRO_WORKERS`` (serial when unset), so CI can run the whole
    suite over the process-pool path without code changes."""
    environ = os.environ if environ is None else environ
    kind = environ.get(_ENV_EXECUTOR, "serial").strip().lower() or "serial"
    workers_raw = environ.get(_ENV_WORKERS, "").strip()
    workers = int(workers_raw) if workers_raw else None
    return make_executor(kind, workers=workers)


def resolve_executor(executor: Optional[Executor]) -> Executor:
    """``executor`` if given, else the environment default."""
    return executor if executor is not None else executor_from_env()
