"""Executor implementations for chunked crypto work.

The contract all call sites rely on:

* ``map_chunks(fn, items)`` splits ``items`` into contiguous chunks,
  applies ``fn(chunk) -> list`` to each, and returns the concatenation
  in input order.  ``fn`` must be a top-level function and chunks must
  pickle; per-item results must pickle back.
* The serial executor applies ``fn`` to the whole item list in the
  calling process — identical arithmetic, identical ordering — so any
  correctly chunk-local ``fn`` is execution-equivalent across
  executors.

Process pools are cached per worker count and shared across executor
instances (one fork-server-style warm pool per process), so tests and
short-lived frameworks do not pay pool startup per batch.  Pools are
torn down atexit.
"""

import atexit
import math
import os
from concurrent.futures import ProcessPoolExecutor
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.common.errors import PReVerError
from repro.obs.aggregate import instrumented_chunk, merge_delta
from repro.obs.tracing import NOOP_TRACER

#: Below this many items a process round-trip costs more than it saves;
#: ``ParallelExecutor`` runs such batches inline.
DEFAULT_MIN_ITEMS = 8

#: Adaptive chunking aims for at least this much measured work per
#: submitted chunk, so pool dispatch (~0.1–1 ms per chunk) stays a
#: small fraction of each chunk's runtime.
TARGET_CHUNK_SECONDS = 0.005

#: EWMA weight for new per-item cost samples (recent batches dominate,
#: one outlier does not).
_COST_ALPHA = 0.3

_ENV_EXECUTOR = "REPRO_EXECUTOR"
_ENV_WORKERS = "REPRO_WORKERS"
_ENV_ADAPTIVE = "REPRO_ADAPTIVE_CHUNKS"


def split_chunks(items: Sequence, n_chunks: int) -> List[List]:
    """Split ``items`` into at most ``n_chunks`` contiguous, near-even
    chunks (never empty ones), preserving order."""
    items = list(items)
    if not items:
        return []
    n_chunks = max(1, min(n_chunks, len(items)))
    base, extra = divmod(len(items), n_chunks)
    chunks = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks


class Executor:
    """Interface: chunked map over picklable items."""

    name = "abstract"
    workers = 1
    #: True when chunks may run in other processes (call sites that are
    #: order-sensitive or unpicklable should check this).
    parallel = False

    def bind_tracer(self, tracer) -> None:
        """Attach a tracer; parallel maps then record ``parallel.map``
        spans with worker/chunk counts."""

    def bind_metrics(self, registry) -> None:
        """Attach a metrics registry; pooled maps then collect each
        worker's telemetry delta alongside its results and merge it
        here under per-worker labels.  A no-op for executors that run
        everything in the calling process (their work already records
        into the caller's registry)."""

    def healthy(self) -> bool:
        """Liveness probe for the ops server: True when the executor
        can still accept work (always, for in-process executors)."""
        return True

    def map_chunks(self, fn: Callable[[list], list], items: Sequence,
                   label: str = "map") -> list:
        """Apply ``fn(chunk) -> list`` across chunks of ``items`` and
        return the concatenated results in input order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (shared pools survive; see module notes)."""

    def describe(self) -> dict:
        """Identification for bench artifacts and reports."""
        return {"executor": self.name, "workers": self.workers}


class SerialExecutor(Executor):
    """Run every chunk function inline — the default execution mode."""

    name = "serial"
    workers = 1
    parallel = False

    def map_chunks(self, fn: Callable[[list], list], items: Sequence,
                   label: str = "map") -> list:
        """Apply ``fn`` to the whole list in the calling process."""
        items = list(items)
        if not items:
            return []
        return list(fn(items))


#: Shared default instance; stateless, safe to reuse everywhere.
SERIAL_EXECUTOR = SerialExecutor()


# -- shared process pools ---------------------------------------------------

_POOL_CACHE: Dict[int, ProcessPoolExecutor] = {}


def _shared_pool(workers: int) -> ProcessPoolExecutor:
    pool = _POOL_CACHE.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _POOL_CACHE[workers] = pool
    return pool


def _shutdown_pools() -> None:
    while _POOL_CACHE:
        _, pool = _POOL_CACHE.popitem()
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(_shutdown_pools)


class ParallelExecutor(Executor):
    """Fan chunks out to a process pool, reassemble in input order.

    ``workers`` defaults to the host CPU count.  Batches smaller than
    ``min_items`` run inline (the pool round-trip would dominate).
    Worker processes are plain CPython interpreters: chunk functions
    re-derive any per-process state (Paillier key caches, randomness
    pools) locally — nothing in this repo shares mutable state across
    workers.
    """

    name = "process"
    parallel = True

    def __init__(self, workers: Optional[int] = None,
                 min_items: int = DEFAULT_MIN_ITEMS,
                 tracer=None, adaptive: Optional[bool] = None):
        if workers is not None and workers <= 0:
            raise PReVerError("ParallelExecutor needs a positive worker count")
        self.workers = workers or os.cpu_count() or 1
        self.min_items = min_items
        self.tracer = tracer or NOOP_TRACER
        if adaptive is None:
            raw = os.environ.get(_ENV_ADAPTIVE, "").strip().lower()
            adaptive = raw not in ("0", "false", "off", "no")
        self.adaptive = adaptive
        # Measured per-item cost (seconds, EWMA) per map label.  The
        # first batch under a label always takes the full fan-out (no
        # measurement yet — assume the work is expensive); later
        # batches size their chunk count from the prediction, down to
        # running inline when the whole batch is cheaper than a single
        # pool dispatch.  Chunking never changes results (chunk
        # functions are chunk-local by contract), only scheduling.
        self._cost_ewma: Dict[str, float] = {}
        # Telemetry collection (off unless a registry is bound): pooled
        # chunks are wrapped so each worker's metric delta rides back
        # with its results, merged here under a stable per-worker label
        # (pids map to w0, w1, ... in first-seen order).
        self._metrics = None
        self._worker_labels: Dict[int, str] = {}

    def bind_tracer(self, tracer) -> None:
        """Attach a tracer: maps then emit ``parallel.map`` spans."""
        self.tracer = tracer

    def bind_metrics(self, registry) -> None:
        """Attach the coordinator registry worker telemetry merges
        into.  Rebinding (an executor shared across frameworks)
        redirects future merges to the latest registry."""
        self._metrics = registry

    def healthy(self) -> bool:
        """True while the shared pool (if started) is not broken."""
        pool = _POOL_CACHE.get(self.workers)
        if pool is None:
            return True  # lazily started; nothing to be broken yet
        return not getattr(pool, "_broken", False)

    def describe(self) -> dict:
        """Identification for bench artifacts and reports."""
        return {"executor": self.name, "workers": self.workers,
                "adaptive": self.adaptive}

    def _submit(self, pool, fn, chunk):
        if self._metrics is not None:
            return pool.submit(instrumented_chunk, fn, chunk)
        return pool.submit(fn, chunk)

    def _consume(self, future) -> list:
        value = future.result()
        if self._metrics is not None:
            results, delta, pid = value
            label = self._worker_labels.get(pid)
            if label is None:
                label = f"worker.w{len(self._worker_labels)}"
                self._worker_labels[pid] = label
            merge_delta(self._metrics, delta, prefix=label)
            return results
        return value

    def _observe(self, label: str, n_items: int, elapsed: float,
                 n_chunks: int) -> None:
        """Fold one batch's measured cost into the label's EWMA.

        Pooled batches report wall time; scaling by the chunk count
        recovers an (optimistic) serial-equivalent per-item cost, which
        is the quantity the chunk planner predicts with.
        """
        if not self.adaptive or n_items <= 0 or elapsed <= 0.0:
            return
        sample = elapsed * n_chunks / n_items
        prior = self._cost_ewma.get(label)
        if prior is None:
            self._cost_ewma[label] = sample
        else:
            self._cost_ewma[label] = (
                _COST_ALPHA * sample + (1.0 - _COST_ALPHA) * prior
            )

    def _plan_chunks(self, label: str, n_items: int) -> int:
        """Chunk count for this batch: enough chunks that each carries
        ~:data:`TARGET_CHUNK_SECONDS` of predicted work, capped at the
        worker count; 1 means run inline.  Unmeasured labels take the
        full fan-out (expensive until proven cheap)."""
        if not self.adaptive:
            return self.workers
        cost = self._cost_ewma.get(label)
        if cost is None:
            return self.workers
        predicted = cost * n_items
        return max(1, min(self.workers,
                          math.ceil(predicted / TARGET_CHUNK_SECONDS)))

    def map_chunks(self, fn: Callable[[list], list], items: Sequence,
                   label: str = "map") -> list:
        """Fan chunks out to the shared process pool (inline below
        ``min_items``, or whenever the measured per-item cost predicts
        the batch is cheaper than pool dispatch); results come back in
        input order."""
        items = list(items)
        if not items:
            return []
        if len(items) < max(2, self.min_items) or self.workers == 1:
            # Inline fast path: identical arithmetic, no pool traffic.
            return list(fn(items))
        n_chunks = self._plan_chunks(label, len(items))
        start = perf_counter()
        if n_chunks <= 1:
            out = list(fn(items))
            self._observe(label, len(items), perf_counter() - start, 1)
            return out
        chunks = split_chunks(items, n_chunks)
        if self.tracer.enabled:
            out = self._map_traced(fn, chunks, len(items), label)
        else:
            pool = _shared_pool(self.workers)
            futures = [self._submit(pool, fn, chunk) for chunk in chunks]
            out = []
            for future in futures:
                out.extend(self._consume(future))
        self._observe(label, len(items), perf_counter() - start,
                      len(chunks))
        return out

    def _map_traced(self, fn, chunks, n_items: int, label: str) -> list:
        """Same fan-out, wrapped in a ``parallel.map`` span with one
        ``parallel.chunk`` child per submitted chunk."""
        pool = _shared_pool(self.workers)
        with self.tracer.span(
            "parallel.map", label=label, workers=self.workers,
            chunks=len(chunks), items=n_items,
        ) as span:
            futures = []
            for i, chunk in enumerate(chunks):
                child = span.child(
                    "parallel.chunk", chunk=i, items=len(chunk)
                )
                futures.append((self._submit(pool, fn, chunk), child))
            out: List[Any] = []
            for future, child in futures:
                try:
                    out.extend(self._consume(future))
                except BaseException as exc:
                    child.set_status("error")
                    child.set_attribute("exception", repr(exc))
                    raise
                finally:
                    child.end()
        return out


# -- selection --------------------------------------------------------------

def make_executor(kind: str, workers: Optional[int] = None) -> Executor:
    """Build an executor by name (``serial`` | ``process``)."""
    if kind == "serial":
        return SERIAL_EXECUTOR
    if kind == "process":
        return ParallelExecutor(workers=workers)
    raise PReVerError(f"unknown executor kind {kind!r}")


def executor_from_env(environ=None) -> Executor:
    """Resolve the default executor from ``REPRO_EXECUTOR`` /
    ``REPRO_WORKERS`` (serial when unset), so CI can run the whole
    suite over the process-pool path without code changes."""
    environ = os.environ if environ is None else environ
    kind = environ.get(_ENV_EXECUTOR, "serial").strip().lower() or "serial"
    workers_raw = environ.get(_ENV_WORKERS, "").strip()
    workers = int(workers_raw) if workers_raw else None
    return make_executor(kind, workers=workers)


def resolve_executor(executor: Optional[Executor]) -> Executor:
    """``executor`` if given, else the environment default."""
    return executor if executor is not None else executor_from_env()
