"""Pluggable multicore execution for the crypto-heavy pipeline stages.

After the batching work, the verify stage dominates wall time and runs
entirely on one core: every big-int operation (Paillier ``pow``,
Schnorr verification, Merkle SHA-256) is serial under the GIL.  This
package provides the execution layer those stages plug into:

* :class:`SerialExecutor` — the default; runs chunk functions inline
  in the calling process, byte-for-byte the pre-existing behaviour;
* :class:`ParallelExecutor` — fans chunks out to a shared
  ``ProcessPoolExecutor`` and reassembles results in order.

Call sites never branch on the executor type: they hand a *chunk
function* (top-level, pickling-cheap arguments) to
:meth:`~Executor.map_chunks` and get the concatenated results back in
input order, so serial and parallel execution are decision- and
digest-equivalent by construction.

Executor selection is explicit (``PReVer(executor=...)``) or
environment-driven (``REPRO_EXECUTOR={serial,process}``,
``REPRO_WORKERS=N``) so CI can exercise the process-pool path without
code changes.
"""

from repro.parallel.executors import (
    SERIAL_EXECUTOR,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    executor_from_env,
    make_executor,
    resolve_executor,
    split_chunks,
)
from repro.parallel.shards import ShardWorker

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "SERIAL_EXECUTOR",
    "ShardWorker",
    "executor_from_env",
    "make_executor",
    "resolve_executor",
    "split_chunks",
]
