"""Privacy labels (Sections 1–3).

Each of {data, updates, constraints} is independently private or
public; an instantiation of PReVer is characterized by this triple plus
whether the database is single or federated and whether the solution is
centralized or decentralized.  :class:`PrivacyPolicy` captures the
triple; ``repro.core`` picks engines that satisfy it and tests assert
the choice matrix matches Figure 1's applications.
"""

import enum
from dataclasses import dataclass


class Visibility(enum.Enum):
    PRIVATE = "private"
    PUBLIC = "public"


@dataclass(frozen=True)
class PrivacyPolicy:
    """Who may see what, from the data manager's perspective."""

    data: Visibility
    updates: Visibility
    constraints: Visibility

    @property
    def manager_may_see_data(self) -> bool:
        return self.data is Visibility.PUBLIC

    @property
    def manager_may_see_updates(self) -> bool:
        return self.updates is Visibility.PUBLIC

    @property
    def manager_may_see_constraints(self) -> bool:
        return self.constraints is Visibility.PUBLIC

    def describe(self) -> str:
        return (
            f"data={self.data.value}, updates={self.updates.value}, "
            f"constraints={self.constraints.value}"
        )


# The four Figure-1 applications as policy constants.

SUSTAINABILITY_POLICY = PrivacyPolicy(
    data=Visibility.PRIVATE, updates=Visibility.PRIVATE, constraints=Visibility.PUBLIC
)
"""Environmental sustainability: private data+updates, public metrics."""

CONFERENCE_POLICY = PrivacyPolicy(
    data=Visibility.PUBLIC, updates=Visibility.PRIVATE, constraints=Visibility.PUBLIC
)
"""In-person conference: public attendee list, private vaccination records."""

CROWDWORKING_POLICY = PrivacyPolicy(
    data=Visibility.PRIVATE, updates=Visibility.PRIVATE, constraints=Visibility.PUBLIC
)
"""Multi-platform crowdworking (Separ): private data/updates, public FLSA."""

SUPPLY_CHAIN_POLICY = PrivacyPolicy(
    data=Visibility.PRIVATE, updates=Visibility.PRIVATE, constraints=Visibility.PRIVATE
)
"""Supply chain: everything private (Figure 1(d))."""
