"""Constraints and regulations (Section 3.2).

A constraint is "a Boolean function computed over the database and an
incoming update".  We support three shapes, matching the paper's menu:

* **row predicates** — a Boolean :class:`~repro.database.expr.Expr`
  over the target row's columns and the update's fields (classic
  database constraints, e.g. CHECK clauses);
* **aggregate constraints** — compare ``AGG(column) over rows matching
  a filter, plus the update's contribution`` against a bound (COUNT /
  SUM / ...); this is the token-mechanism-compatible class;
* **windowed aggregates** — the same but restricted to a sliding time
  window (the paper: "workers cannot work more than 40 hours a week"),
  the temporal-logic extension Section 3.2 calls for.

*Internal constraints* are scoped to one data owner's database(s);
*regulations* come from external authorities and may span the
databases of multiple owners — the evaluator accepts a list of
databases and sums the aggregate across them.
"""

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.common.errors import ConstraintViolation
from repro.common.ids import make_id
from repro.common.serialization import canonical_bytes
from repro.database.expr import Env, Expr, linearize


class ConstraintKind(enum.Enum):
    INTERNAL = "internal"       # defined by a data owner
    REGULATION = "regulation"   # defined by an external authority


class Comparison(enum.Enum):
    LE = "<="
    GE = ">="
    LT = "<"
    GT = ">"
    EQ = "=="

    def apply(self, left: float, right: float) -> bool:
        # Branch directly: this runs once per constraint per update on
        # the hot verification path.
        if self is Comparison.LE:
            return left <= right
        if self is Comparison.GE:
            return left >= right
        if self is Comparison.LT:
            return left < right
        if self is Comparison.GT:
            return left > right
        return left == right


@dataclass(frozen=True)
class WindowSpec:
    """A sliding time window over a timestamp column."""

    time_column: str
    length: float  # seconds of (simulated) time

    def admits(self, row: Dict[str, Any], now: float) -> bool:
        timestamp = row.get(self.time_column)
        if timestamp is None:
            return False
        return now - self.length < timestamp <= now


@dataclass(frozen=True)
class AggregateSpec:
    """``AGG(column) WHERE filter [GROUP-scoped by match_columns]``.

    ``match_columns`` restricts the aggregate to rows agreeing with the
    update on those columns (e.g. the same worker_id), which is how
    per-participant budgets are expressed.
    """

    func: str                         # COUNT | SUM
    column: Optional[str]             # None for COUNT
    filter: Optional[Expr] = None
    match_columns: Sequence[str] = field(default_factory=tuple)
    window: Optional[WindowSpec] = None

    def contribution_of(self, update_payload: Dict[str, Any]) -> float:
        """The update's own contribution to the aggregate."""
        if self.func.upper() == "COUNT":
            return 1.0
        value = update_payload.get(self.column)
        return float(value) if value is not None else 0.0

    def evaluate_over(
        self,
        databases: Sequence,
        table: str,
        update_payload: Dict[str, Any],
        now: float,
    ) -> float:
        """Sum the aggregate across all databases (regulation scope).

        When the aggregate is windowed and the table carries a range
        index on the window's time column, only the in-window rows are
        visited (O(log n + matches) instead of a full scan).
        """
        total = 0.0
        for database in databases:
            table_obj = database.table(table)
            rows = self._candidate_rows(table_obj, now)
            for row in rows:
                if not self._row_matches(row, update_payload, now):
                    continue
                if self.func.upper() == "COUNT":
                    total += 1.0
                else:
                    value = row.get(self.column)
                    if value is not None:
                        total += float(value)
        return total

    def _candidate_rows(self, table_obj, now: float):
        window = self.window
        if window is not None and table_obj.has_range_index(window.time_column):
            return table_obj.range_lookup(
                window.time_column,
                low=now - window.length,
                high=now,
                include_low=False,
                include_high=True,
            )
        return table_obj.scan()

    def _row_matches(
        self, row: Dict[str, Any], update_payload: Dict[str, Any], now: float
    ) -> bool:
        for column in self.match_columns:
            if row.get(column) != update_payload.get(column):
                return False
        if self.window is not None and not self.window.admits(row, now):
            return False
        if self.filter is not None:
            if not bool(self.filter.evaluate(Env(row=row))):
                return False
        return True


@dataclass
class Constraint:
    """A named policy for accepting or rejecting updates.

    Exactly one of ``predicate`` (row-level) or ``aggregate`` +
    ``bound`` (aggregate-level) is set.
    """

    name: str
    kind: ConstraintKind
    predicate: Optional[Expr] = None
    aggregate: Optional[AggregateSpec] = None
    comparison: Optional[Comparison] = None
    bound: Optional[float] = None
    authority: Optional[str] = None
    tables: Sequence[str] = field(default_factory=tuple)
    constraint_id: str = field(default_factory=lambda: make_id("cst"))
    signature: Optional[object] = None

    def __post_init__(self):
        has_predicate = self.predicate is not None
        has_aggregate = self.aggregate is not None
        if has_predicate == has_aggregate:
            raise ValueError(
                "constraint needs exactly one of predicate / aggregate"
            )
        if has_aggregate and (self.comparison is None or self.bound is None):
            raise ValueError("aggregate constraints need comparison and bound")

    @property
    def is_regulation(self) -> bool:
        return self.kind is ConstraintKind.REGULATION

    @property
    def is_aggregate(self) -> bool:
        return self.aggregate is not None

    def is_linear(self) -> bool:
        """Whether the privacy engines (Paillier / MPC / tokens) can
        evaluate this constraint under encryption: aggregates are
        linear by construction; predicates must linearize."""
        if self.is_aggregate:
            return self.aggregate.func.upper() in ("COUNT", "SUM")
        # A comparison of two linear sides is engine-evaluable.
        expr = self.predicate
        from repro.database.expr import BinOp

        if isinstance(expr, BinOp) and expr.op in ("<", "<=", ">", ">=", "=="):
            return (
                linearize(expr.left) is not None
                and linearize(expr.right) is not None
            )
        return False

    def body_bytes(self) -> bytes:
        # Key-based memo, not an identity cache: the dataclass is
        # mutable (callers pin constraint_id after construction), so
        # the memo is valid only while every signed field matches the
        # key it was computed under.  Authority signing + repeated
        # signature verification hit this on every submit.
        key = (
            self.name,
            self.kind.value,
            self.constraint_id,
            self.bound,
            self.comparison.value if self.comparison else None,
            tuple(self.tables),
            self.is_aggregate,
        )
        cached = self.__dict__.get("_body_memo")
        if cached is not None and cached[0] == key:
            return cached[1]
        encoded = canonical_bytes(
            {
                "name": self.name,
                "kind": self.kind.value,
                "constraint_id": self.constraint_id,
                "bound": self.bound,
                "comparison": self.comparison.value if self.comparison else None,
                "tables": list(self.tables),
                "shape": "aggregate" if self.is_aggregate else "predicate",
            }
        )
        self.__dict__["_body_memo"] = (key, encoded)
        return encoded

    # -- evaluation (plaintext reference semantics) ---------------------

    def check(
        self,
        databases: Sequence,
        update,
        now: float,
    ) -> bool:
        """Reference (plaintext) evaluation; privacy engines must agree
        with this on every input — the property tests enforce that."""
        if self.is_aggregate:
            current = self.aggregate.evaluate_over(
                databases, update.table, update.payload, now
            )
            proposed = current + self.aggregate.contribution_of(update.payload)
            return self.comparison.apply(proposed, float(self.bound))
        # Row predicate, SQL-CHECK semantics: column references resolve
        # against the row as it would look *after* the update — for
        # INSERT that is the payload itself, for MODIFY the existing row
        # overlaid with the changes.  NEW.field always references the
        # payload.
        row: Dict[str, Any] = {}
        if update.key is not None:
            for database in databases:
                existing = database.table(update.table).get(update.key)
                if existing is not None:
                    row = existing
                    break
        effective = dict(row)
        effective.update(update.payload)
        env = Env(row=effective, update=update.payload)
        result = self.predicate.evaluate(env)
        return bool(result)

    def enforce(self, databases: Sequence, update, now: float) -> None:
        if not self.check(databases, update, now):
            raise ConstraintViolation(self.constraint_id, f"{self.name} violated")


# -- convenience constructors for the regulation shapes the paper uses ----

def upper_bound_regulation(
    name: str,
    table: str,
    column: str,
    bound: float,
    match_columns: Sequence[str],
    window: Optional[WindowSpec] = None,
    authority: Optional[str] = None,
) -> Constraint:
    """SUM(column) per match-group must stay <= bound (FLSA shape)."""
    return Constraint(
        name=name,
        kind=ConstraintKind.REGULATION,
        aggregate=AggregateSpec(
            func="SUM", column=column, match_columns=tuple(match_columns), window=window
        ),
        comparison=Comparison.LE,
        bound=bound,
        authority=authority,
        tables=(table,),
    )


def lower_bound_regulation(
    name: str,
    table: str,
    column: str,
    bound: float,
    match_columns: Sequence[str],
    window: Optional[WindowSpec] = None,
    authority: Optional[str] = None,
) -> Constraint:
    """SUM(column) per match-group must reach >= bound after the update
    (Separ also supports lower-bound regulations, e.g. minimum wage)."""
    return Constraint(
        name=name,
        kind=ConstraintKind.REGULATION,
        aggregate=AggregateSpec(
            func="SUM", column=column, match_columns=tuple(match_columns), window=window
        ),
        comparison=Comparison.GE,
        bound=bound,
        authority=authority,
        tables=(table,),
    )
