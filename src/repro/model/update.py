"""Updates (Section 3.2).

An update involves at least a data producer and a data manager and may
originate from a collaboration of several producers/managers (e.g. a
crowdworking task completion involves a worker, a requester, and a
platform).  Updates are signed by their initiating producer and carry a
privacy label.
"""

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common.ids import make_id
from repro.common.serialization import canonical_bytes
from repro.model.policy import Visibility


class UpdateOperation(enum.Enum):
    INSERT = "insert"
    MODIFY = "modify"
    DELETE = "delete"


class UpdateStatus(enum.Enum):
    PENDING = "pending"
    VERIFIED = "verified"
    APPLIED = "applied"
    REJECTED = "rejected"


@dataclass
class Update:
    """One incoming update.

    ``payload`` holds the new field values; ``key`` identifies the
    target row for MODIFY/DELETE.  ``producers`` and ``managers`` list
    the collaborating participants' names (provenance).
    """

    table: str
    operation: UpdateOperation
    payload: Dict[str, Any]
    key: Optional[Tuple] = None
    visibility: Visibility = Visibility.PRIVATE
    producers: List[str] = field(default_factory=list)
    managers: List[str] = field(default_factory=list)
    update_id: str = field(default_factory=lambda: make_id("upd"))
    status: UpdateStatus = UpdateStatus.PENDING
    rejection_reason: Optional[str] = None
    signature: Optional[object] = None
    signer_public_key: Optional[int] = None

    def body_bytes(self) -> bytes:
        """Canonical bytes of the signed portion (everything except the
        mutable status fields and the signature itself)."""
        return canonical_bytes(
            {
                "table": self.table,
                "operation": self.operation.value,
                "payload": self.payload,
                "key": list(self.key) if self.key is not None else None,
                "visibility": self.visibility.value,
                "producers": self.producers,
                "managers": self.managers,
                "update_id": self.update_id,
            }
        )

    def sign_with(self, producer) -> "Update":
        """Producer signs the update body; returns self for chaining.

        The producer is added to the provenance list *before* signing
        so the signature covers it.
        """
        if producer.name not in self.producers:
            self.producers.append(producer.name)
        self.signature = producer.sign(self.body_bytes())
        self.signer_public_key = producer.public_key
        return self

    def mark_verified(self) -> None:
        self.status = UpdateStatus.VERIFIED

    def mark_applied(self) -> None:
        self.status = UpdateStatus.APPLIED

    def mark_rejected(self, reason: str) -> None:
        self.status = UpdateStatus.REJECTED
        self.rejection_reason = reason

    def to_dict(self) -> dict:
        return {
            "table": self.table,
            "operation": self.operation.value,
            "payload": self.payload,
            "key": list(self.key) if self.key is not None else None,
            "visibility": self.visibility.value,
            "update_id": self.update_id,
            "status": self.status.value,
        }
