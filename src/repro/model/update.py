"""Updates (Section 3.2).

An update involves at least a data producer and a data manager and may
originate from a collaboration of several producers/managers (e.g. a
crowdworking task completion involves a worker, a requester, and a
platform).  Updates are signed by their initiating producer and carry a
privacy label.
"""

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common.ids import make_id
from repro.common.serialization import canonical_bytes
from repro.model.policy import Visibility


class UpdateOperation(enum.Enum):
    """The three mutation kinds an update can request (Section 3.2)."""

    INSERT = "insert"
    MODIFY = "modify"
    DELETE = "delete"


class UpdateStatus(enum.Enum):
    """Lifecycle of an update as the Figure-2 pipeline advances it."""

    PENDING = "pending"
    VERIFIED = "verified"
    APPLIED = "applied"
    REJECTED = "rejected"


@dataclass
class Update:
    """One incoming update.

    ``payload`` holds the new field values; ``key`` identifies the
    target row for MODIFY/DELETE.  ``producers`` and ``managers`` list
    the collaborating participants' names (provenance).
    """

    table: str
    operation: UpdateOperation
    payload: Dict[str, Any]
    key: Optional[Tuple] = None
    visibility: Visibility = Visibility.PRIVATE
    producers: List[str] = field(default_factory=list)
    managers: List[str] = field(default_factory=list)
    update_id: str = field(default_factory=lambda: make_id("upd"))
    status: UpdateStatus = UpdateStatus.PENDING
    rejection_reason: Optional[str] = None
    signature: Optional[object] = None
    signer_public_key: Optional[int] = None

    def body_bytes(self) -> bytes:
        """Canonical bytes of the signed portion (everything except the
        mutable status fields and the signature itself)."""
        return canonical_bytes(
            {
                "table": self.table,
                "operation": self.operation.value,
                "payload": self.payload,
                "key": list(self.key) if self.key is not None else None,
                "visibility": self.visibility.value,
                "producers": self.producers,
                "managers": self.managers,
                "update_id": self.update_id,
            }
        )

    def sign_with(self, producer) -> "Update":
        """Producer signs the update body; returns self for chaining.

        The producer is added to the provenance list *before* signing
        so the signature covers it.
        """
        if producer.name not in self.producers:
            self.producers.append(producer.name)
        self.signature = producer.sign(self.body_bytes())
        self.signer_public_key = producer.public_key
        return self

    def mark_verified(self) -> None:
        """Advance the lifecycle: the update passed verification."""
        self.status = UpdateStatus.VERIFIED

    def mark_applied(self) -> None:
        """Advance the lifecycle: the update was incorporated."""
        self.status = UpdateStatus.APPLIED

    def mark_rejected(self, reason: str) -> None:
        """Terminate the lifecycle with a rejection and its reason."""
        self.status = UpdateStatus.REJECTED
        self.rejection_reason = reason

    def to_dict(self) -> dict:
        """Summary dict for logs and reports (not the signed body)."""
        return {
            "table": self.table,
            "operation": self.operation.value,
            "payload": self.payload,
            "key": list(self.key) if self.key is not None else None,
            "visibility": self.visibility.value,
            "update_id": self.update_id,
            "status": self.status.value,
        }

    # -- the wire representation (repro.serve) ----------------------------

    def to_wire(self) -> dict:
        """The update's signed fields as a JSON-safe dict.

        Exactly the fields :meth:`body_bytes` covers, in wire-transport
        form — a producer-signed update reconstructed from this dict
        (plus its signature, carried separately by
        :func:`repro.serve.protocol.update_to_wire`) re-serializes to
        the same signing bytes, so provenance survives the network.
        """
        return {
            "table": self.table,
            "operation": self.operation.value,
            "payload": self.payload,
            "key": list(self.key) if self.key is not None else None,
            "visibility": self.visibility.value,
            "producers": list(self.producers),
            "managers": list(self.managers),
            "update_id": self.update_id,
        }

    @staticmethod
    def operation_from_wire(value) -> "UpdateOperation":
        """Parse a wire operation string, with a serve-friendly error.

        Raises :class:`ValueError` naming the valid operations rather
        than ``KeyError``/``ValueError`` internals, so the serving tier
        can surface it verbatim as a BAD_MESSAGE response.
        """
        try:
            return UpdateOperation(value)
        except ValueError:
            valid = sorted(op.value for op in UpdateOperation)
            raise ValueError(
                f"unknown update operation {value!r}; expected one of {valid}"
            ) from None
