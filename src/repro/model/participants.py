"""Participant roles (Section 3.1).

A single entity may hold several roles — e.g. a data owner that stores
locally also subsumes the data manager role — so ``Participant``
carries a *set* of roles.  Producers and authorities hold Schnorr
signing keys; everything a producer submits and every regulation an
authority publishes is signed.
"""

import enum
from typing import Optional, Set

from repro.common.ids import make_id
from repro.crypto.group import SchnorrGroup
from repro.crypto.signatures import SchnorrSigner, SchnorrVerifier


class Role(enum.Enum):
    DATA_PRODUCER = "data_producer"
    DATA_OWNER = "data_owner"
    DATA_MANAGER = "data_manager"
    AUTHORITY = "authority"


class Participant:
    """Base participant with identity and optional signing key."""

    def __init__(
        self,
        name: str,
        roles: Set[Role],
        group: Optional[SchnorrGroup] = None,
        with_keys: bool = True,
    ):
        self.name = name
        self.participant_id = make_id("pcpt")
        self.roles = set(roles)
        self._signer = SchnorrSigner(group or SchnorrGroup.default()) if with_keys else None

    def has_role(self, role: Role) -> bool:
        return role in self.roles

    @property
    def public_key(self) -> Optional[int]:
        return self._signer.public_key if self._signer else None

    def sign(self, payload: bytes):
        if self._signer is None:
            raise ValueError(f"participant {self.name!r} has no signing key")
        return self._signer.sign(payload)

    def sign_obj(self, obj):
        if self._signer is None:
            raise ValueError(f"participant {self.name!r} has no signing key")
        return self._signer.sign_obj(obj)

    def verifier(self) -> SchnorrVerifier:
        if self._signer is None:
            raise ValueError(f"participant {self.name!r} has no signing key")
        return self._signer.verifier()

    def __repr__(self):
        roles = ",".join(sorted(r.value for r in self.roles))
        return f"<{type(self).__name__} {self.name} [{roles}]>"


class DataProducer(Participant):
    """Produces updates — a client, worker, sensor, or satellite."""

    def __init__(self, name: str, **kwargs):
        super().__init__(name, {Role.DATA_PRODUCER}, **kwargs)


class DataOwner(Participant):
    """Owns data; may store locally (subsuming the manager role) or
    outsource to a third-party manager."""

    def __init__(self, name: str, manages_own_data: bool = False, **kwargs):
        roles = {Role.DATA_OWNER}
        if manages_own_data:
            roles.add(Role.DATA_MANAGER)
        super().__init__(name, roles, **kwargs)


class DataManager(Participant):
    """Stores and manages data on behalf of owners.  In the outsourced
    setting the manager is untrusted: every engine in ``repro.core``
    records what the manager was allowed to observe so tests can check
    the privacy contract."""

    def __init__(self, name: str, trusted: bool = False, **kwargs):
        super().__init__(name, {Role.DATA_MANAGER}, **kwargs)
        self.trusted = trusted
        self.observed: list = []  # transcript of everything shown to us

    def observe(self, item) -> None:
        """Record a manager-visible value (ciphertext, share, serial)."""
        self.observed.append(item)


class Authority(Participant):
    """Defines constraints (internal) or regulations (external)."""

    def __init__(self, name: str, external: bool = True, **kwargs):
        super().__init__(name, {Role.AUTHORITY}, **kwargs)
        self.external = external
