"""The PReVer data model (Section 3 of the paper).

Four participant roles (data producers, data owners, data managers,
authorities), updates with provenance, constraints vs. regulations as
Boolean functions over (database, update), privacy labels on each of
{data, updates, constraints}, and the threat-model menu.
"""

from repro.model.participants import (
    Role,
    Participant,
    DataProducer,
    DataOwner,
    DataManager,
    Authority,
)
from repro.model.update import Update, UpdateOperation, UpdateStatus
from repro.model.constraints import (
    Constraint,
    ConstraintKind,
    AggregateSpec,
    WindowSpec,
    upper_bound_regulation,
    lower_bound_regulation,
)
from repro.model.policy import Visibility, PrivacyPolicy
from repro.model.threat import ThreatModel, AdversaryClass, CollusionStructure

__all__ = [
    "Role",
    "Participant",
    "DataProducer",
    "DataOwner",
    "DataManager",
    "Authority",
    "Update",
    "UpdateOperation",
    "UpdateStatus",
    "Constraint",
    "ConstraintKind",
    "AggregateSpec",
    "WindowSpec",
    "upper_bound_regulation",
    "lower_bound_regulation",
    "Visibility",
    "PrivacyPolicy",
    "ThreatModel",
    "AdversaryClass",
    "CollusionStructure",
]
