"""A declarative constraint language.

Section 3.2: "Given the large body of work for expressing and
evaluating database constraints based on data-driven declarative query
languages ..., these languages are thus a natural choice for expressing
regulations.  Temporal logic extensions may additionally be relevant
... e.g., workers cannot work more than 40 hours a week."

This module provides that surface: a small SQL-flavoured language that
compiles to :class:`~repro.model.constraints.Constraint` objects, so
authorities can publish regulations as text.

Grammar (case-insensitive keywords)::

    constraint  :=  CHECK boolexpr [ON table]
                 |  agg [WHERE boolexpr] [PER col ("," col)*]
                        [WITHIN duration OF col] cmp number [ON table]
    agg         :=  SUM "(" col ")" | COUNT "(" ("*" | col) ")"
    boolexpr    :=  orexpr
    orexpr      :=  andexpr (OR andexpr)*
    andexpr     :=  notexpr (AND notexpr)*
    notexpr     :=  NOT notexpr | cmpexpr
    cmpexpr     :=  addexpr [cmpop addexpr | IN "(" literal, ... ")"]
    addexpr     :=  mulexpr (("+"|"-") mulexpr)*
    mulexpr     :=  unary (("*"|"/") unary)*
    unary       :=  "-" unary | primary
    primary     :=  number | string | NEW "." ident | ident
                 |  "(" boolexpr ")" | TRUE | FALSE
    duration    :=  number ("s"|"m"|"h"|"d"|"w")

``NEW.field`` references the incoming update (SQL trigger style);
a bare identifier references a database column.  Examples::

    CHECK NEW.hours > 0 ON tasks
    SUM(hours) PER worker WITHIN 7d OF completed_at <= 40 ON tasks
    COUNT(*) PER org <= 3 ON emissions
    CHECK status IN ('gold', 'platinum') AND NEW.co2 <= 100
"""

import re
from typing import Any, List, Optional, Tuple

from repro.common.errors import PReVerError
from repro.database.expr import BinOp, Col, Expr, Lit, Not, UpdateField
from repro.model.constraints import (
    AggregateSpec,
    Comparison,
    Constraint,
    ConstraintKind,
    WindowSpec,
)


class ConstraintSyntaxError(PReVerError):
    """The constraint text did not parse."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<duration>\d+(?:\.\d+)?[smhdw]\b)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<string>'[^']*')
  | (?P<op><=|>=|!=|<>|=|<|>|\+|-|\*|/|\(|\)|,|\.)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "CHECK", "ON", "WHERE", "PER", "WITHIN", "OF", "SUM", "COUNT",
    "AND", "OR", "NOT", "NEW", "IN", "TRUE", "FALSE",
}

_DURATION_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0,
                   "w": 7 * 86400.0}

_COMPARISONS = {
    "<=": Comparison.LE,
    ">=": Comparison.GE,
    "<": Comparison.LT,
    ">": Comparison.GT,
    "=": Comparison.EQ,
}


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: Any):
        self.kind = kind
        self.value = value

    def __repr__(self):  # pragma: no cover - debug aid
        return f"{self.kind}:{self.value!r}"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ConstraintSyntaxError(
                f"unexpected character {text[position]!r} at {position}"
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        value = match.group()
        if match.lastgroup == "duration":
            unit = value[-1]
            tokens.append(
                _Token("duration", float(value[:-1]) * _DURATION_UNITS[unit])
            )
        elif match.lastgroup == "number":
            number = float(value)
            tokens.append(_Token("number",
                                 int(number) if number.is_integer() else number))
        elif match.lastgroup == "string":
            tokens.append(_Token("string", value[1:-1]))
        elif match.lastgroup == "op":
            op = "!=" if value == "<>" else value
            tokens.append(_Token("op", op))
        else:
            upper = value.upper()
            if upper in _KEYWORDS:
                tokens.append(_Token("kw", upper))
            else:
                tokens.append(_Token("ident", value))
    tokens.append(_Token("eof", None))
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]):
        self._tokens = tokens
        self._index = 0

    # -- cursor helpers -------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _accept(self, kind: str, value=None) -> Optional[_Token]:
        token = self._peek()
        if token.kind != kind:
            return None
        if value is not None and token.value != value:
            return None
        return self._advance()

    def _expect(self, kind: str, value=None) -> _Token:
        token = self._accept(kind, value)
        if token is None:
            raise ConstraintSyntaxError(
                f"expected {value or kind}, found {self._peek()!r}"
            )
        return token

    # -- constraint level --------------------------------------------------

    def parse_constraint(self, name: str, kind: ConstraintKind) -> Constraint:
        if self._accept("kw", "CHECK"):
            predicate = self.parse_boolexpr()
            table = self._parse_on_clause()
            self._expect("eof")
            return Constraint(
                name=name, kind=kind, predicate=predicate,
                tables=(table,) if table else (),
            )
        return self._parse_aggregate_constraint(name, kind)

    def _parse_aggregate_constraint(self, name, kind) -> Constraint:
        func_token = self._accept("kw", "SUM") or self._accept("kw", "COUNT")
        if func_token is None:
            raise ConstraintSyntaxError(
                "a constraint starts with CHECK, SUM or COUNT"
            )
        func = func_token.value
        self._expect("op", "(")
        if func == "COUNT" and self._accept("op", "*"):
            column = None
        else:
            column = self._expect("ident").value
        self._expect("op", ")")
        filter_expr = None
        if self._accept("kw", "WHERE"):
            filter_expr = self.parse_boolexpr()
        match_columns: List[str] = []
        if self._accept("kw", "PER"):
            match_columns.append(self._expect("ident").value)
            while self._accept("op", ","):
                match_columns.append(self._expect("ident").value)
        window = None
        if self._accept("kw", "WITHIN"):
            duration = self._expect("duration").value
            self._expect("kw", "OF")
            time_column = self._expect("ident").value
            window = WindowSpec(time_column=time_column, length=duration)
        comparison = self._parse_comparison_op()
        bound_token = self._accept("number")
        if bound_token is None:
            raise ConstraintSyntaxError("aggregate bound must be a number")
        table = self._parse_on_clause()
        self._expect("eof")
        return Constraint(
            name=name,
            kind=kind,
            aggregate=AggregateSpec(
                func=func,
                column=column,
                filter=filter_expr,
                match_columns=tuple(match_columns),
                window=window,
            ),
            comparison=comparison,
            bound=float(bound_token.value),
            tables=(table,) if table else (),
        )

    def _parse_comparison_op(self) -> Comparison:
        token = self._accept("op")
        if token is None or token.value not in _COMPARISONS:
            raise ConstraintSyntaxError(
                f"expected a comparison operator, found {self._peek()!r}"
            )
        return _COMPARISONS[token.value]

    def _parse_on_clause(self) -> Optional[str]:
        if self._accept("kw", "ON"):
            return self._expect("ident").value
        return None

    # -- expression level ------------------------------------------------------

    def parse_boolexpr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._accept("kw", "OR"):
            left = BinOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._accept("kw", "AND"):
            left = BinOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self._accept("kw", "NOT"):
            return Not(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_add()
        if self._accept("kw", "IN"):
            self._expect("op", "(")
            values = [self._parse_literal()]
            while self._accept("op", ","):
                values.append(self._parse_literal())
            self._expect("op", ")")
            return BinOp("in", left, Lit(tuple(values)))
        token = self._peek()
        if token.kind == "op" and token.value in ("<=", ">=", "<", ">", "=", "!="):
            self._advance()
            op = "==" if token.value == "=" else token.value
            return BinOp(op, left, self._parse_add())
        return left

    def _parse_add(self) -> Expr:
        left = self._parse_mul()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("+", "-"):
                self._advance()
                left = BinOp(token.value, left, self._parse_mul())
            else:
                return left

    def _parse_mul(self) -> Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("*", "/"):
                self._advance()
                left = BinOp(token.value, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self._accept("op", "-"):
            return BinOp("-", Lit(0), self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind == "number" or token.kind == "string":
            self._advance()
            return Lit(token.value)
        if token.kind == "kw" and token.value in ("TRUE", "FALSE"):
            self._advance()
            return Lit(token.value == "TRUE")
        if token.kind == "kw" and token.value == "NEW":
            self._advance()
            self._expect("op", ".")
            return UpdateField(self._expect("ident").value)
        if token.kind == "ident":
            self._advance()
            return Col(token.value)
        if self._accept("op", "("):
            inner = self.parse_boolexpr()
            self._expect("op", ")")
            return inner
        raise ConstraintSyntaxError(f"unexpected token {token!r}")

    def _parse_literal(self) -> Any:
        token = self._advance()
        if token.kind in ("number", "string"):
            return token.value
        raise ConstraintSyntaxError(
            f"IN lists take number/string literals, found {token!r}"
        )


def parse_constraint(
    text: str,
    name: str = "unnamed",
    kind: ConstraintKind = ConstraintKind.INTERNAL,
) -> Constraint:
    """Compile constraint text into a :class:`Constraint`.

    >>> c = parse_constraint(
    ...     "SUM(hours) PER worker WITHIN 7d OF completed_at <= 40 ON tasks",
    ...     name="flsa", kind=ConstraintKind.REGULATION)
    >>> c.is_aggregate and c.is_linear()
    True
    """
    return _Parser(_tokenize(text)).parse_constraint(name, kind)


def parse_regulation(text: str, name: str = "regulation") -> Constraint:
    """Shorthand for external-authority regulations."""
    return parse_constraint(text, name=name, kind=ConstraintKind.REGULATION)


# ---------------------------------------------------------------------------
# Unparsing — so authorities can publish constraint objects as text and
# round-trip them (parse(unparse(c)) is semantically c; property-tested).
# ---------------------------------------------------------------------------

_COMPARISON_TEXT = {
    Comparison.LE: "<=",
    Comparison.GE: ">=",
    Comparison.LT: "<",
    Comparison.GT: ">",
    Comparison.EQ: "=",
}


def expr_to_text(expr: Expr) -> str:
    """Render an expression in the DSL's syntax (fully parenthesized,
    so precedence never changes meaning on re-parse)."""
    if isinstance(expr, Lit):
        value = expr.value
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, str):
            return f"'{value}'"
        if isinstance(value, (int, float)):
            if value < 0:
                return f"(0 - {abs(value)})"
            return str(value)
        if isinstance(value, tuple):
            raise ConstraintSyntaxError(
                "tuple literals only appear inside IN; unparse via BinOp"
            )
        raise ConstraintSyntaxError(f"cannot unparse literal {value!r}")
    if isinstance(expr, Col):
        return expr.name
    if isinstance(expr, UpdateField):
        return f"NEW.{expr.name}"
    if isinstance(expr, Not):
        return f"NOT ({expr_to_text(expr.operand)})"
    if isinstance(expr, BinOp):
        if expr.op == "in":
            items = ", ".join(
                f"'{v}'" if isinstance(v, str) else str(v)
                for v in expr.right.value
            )
            return f"({expr_to_text(expr.left)} IN ({items}))"
        op = {"and": "AND", "or": "OR", "==": "="}.get(expr.op, expr.op)
        return f"({expr_to_text(expr.left)} {op} {expr_to_text(expr.right)})"
    raise ConstraintSyntaxError(f"cannot unparse {type(expr).__name__}")


def constraint_to_text(constraint: Constraint) -> str:
    """Render a constraint in the DSL (inverse of parse_constraint for
    the DSL-expressible subset)."""
    table = f" ON {constraint.tables[0]}" if constraint.tables else ""
    if constraint.predicate is not None:
        return f"CHECK {expr_to_text(constraint.predicate)}{table}"
    spec = constraint.aggregate
    func = spec.func.upper()
    column = spec.column if spec.column is not None else "*"
    parts = [f"{func}({column})"]
    if spec.filter is not None:
        parts.append(f"WHERE {expr_to_text(spec.filter)}")
    if spec.match_columns:
        parts.append("PER " + ", ".join(spec.match_columns))
    if spec.window is not None:
        seconds = spec.window.length
        for unit, size in (("w", 604800.0), ("d", 86400.0), ("h", 3600.0),
                           ("m", 60.0), ("s", 1.0)):
            if seconds % size == 0:
                duration = f"{int(seconds // size)}{unit}"
                break
        else:  # pragma: no cover - seconds is always divisible by 1.0
            duration = f"{seconds}s"
        parts.append(f"WITHIN {duration} OF {spec.window.time_column}")
    bound = constraint.bound
    bound_text = str(int(bound)) if float(bound).is_integer() else str(bound)
    parts.append(f"{_COMPARISON_TEXT[constraint.comparison]} {bound_text}")
    return " ".join(parts) + table
