"""Threat models (Section 3.3).

The paper enumerates the usual adversary classes — honest,
honest-but-curious, covert, malicious — and notes participants may or
may not collude.  A :class:`ThreatModel` names the class per role plus
a collusion structure; engines declare which models they tolerate and
the framework refuses configurations an engine cannot defend
(fail-closed, rather than silently under-protecting).
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Set

from repro.common.errors import PReVerError
from repro.model.participants import Role


class AdversaryClass(enum.Enum):
    HONEST = "honest"
    HONEST_BUT_CURIOUS = "honest_but_curious"
    COVERT = "covert"
    MALICIOUS = "malicious"

    @property
    def strength(self) -> int:
        return {
            AdversaryClass.HONEST: 0,
            AdversaryClass.HONEST_BUT_CURIOUS: 1,
            AdversaryClass.COVERT: 2,
            AdversaryClass.MALICIOUS: 3,
        }[self]

    def at_most(self, other: "AdversaryClass") -> bool:
        return self.strength <= other.strength


class CollusionStructure:
    """Which sets of participants may pool their views.

    Stored as a family of maximal colluding coalitions (by participant
    name).  ``may_collude(a, b)`` is true iff some coalition contains
    both.
    """

    def __init__(self, coalitions: Iterable[Iterable[str]] = ()):
        self._coalitions: Set[FrozenSet[str]] = {
            frozenset(c) for c in coalitions if len(set(c)) > 1
        }

    @classmethod
    def none(cls) -> "CollusionStructure":
        return cls()

    @classmethod
    def all_pairs(cls, names: Iterable[str]) -> "CollusionStructure":
        return cls([set(names)])

    def may_collude(self, a: str, b: str) -> bool:
        return any(a in c and b in c for c in self._coalitions)

    def coalition_views(self, views: Dict[str, list]) -> Dict[FrozenSet[str], list]:
        """Pool per-participant observation transcripts per coalition —
        used by the leakage tests to check that even a coalition's
        combined view stays within the privacy contract."""
        pooled = {}
        for coalition in self._coalitions:
            combined: list = []
            for name in coalition:
                combined.extend(views.get(name, []))
            pooled[coalition] = combined
        return pooled

    @property
    def is_collusion_free(self) -> bool:
        return not self._coalitions


@dataclass(frozen=True)
class ThreatModel:
    """Adversary class per role + collusion structure."""

    per_role: Dict[Role, AdversaryClass]
    collusion: CollusionStructure = field(default_factory=CollusionStructure.none)

    @classmethod
    def honest_but_curious_manager(cls) -> "ThreatModel":
        """The canonical outsourced-database model (RC1/RC3)."""
        return cls(
            per_role={
                Role.DATA_MANAGER: AdversaryClass.HONEST_BUT_CURIOUS,
                Role.DATA_PRODUCER: AdversaryClass.HONEST,
                Role.DATA_OWNER: AdversaryClass.HONEST,
                Role.AUTHORITY: AdversaryClass.HONEST,
            }
        )

    @classmethod
    def covert_colluding_platforms(cls, platform_names: Iterable[str]) -> "ThreatModel":
        """Separ's general model: covert platforms that may collude."""
        return cls(
            per_role={
                Role.DATA_MANAGER: AdversaryClass.COVERT,
                Role.DATA_PRODUCER: AdversaryClass.COVERT,
                Role.DATA_OWNER: AdversaryClass.HONEST,
                Role.AUTHORITY: AdversaryClass.HONEST,
            },
            collusion=CollusionStructure.all_pairs(platform_names),
        )

    @classmethod
    def byzantine_managers(cls) -> "ThreatModel":
        """Federated integrity setting (RC4): malicious managers."""
        return cls(
            per_role={
                Role.DATA_MANAGER: AdversaryClass.MALICIOUS,
                Role.DATA_PRODUCER: AdversaryClass.HONEST,
                Role.DATA_OWNER: AdversaryClass.HONEST,
                Role.AUTHORITY: AdversaryClass.HONEST,
            }
        )

    def adversary_of(self, role: Role) -> AdversaryClass:
        return self.per_role.get(role, AdversaryClass.HONEST)


class ThreatModelMismatch(PReVerError):
    """An engine was asked to run under a stronger adversary than it
    defends against."""


def require_tolerates(
    engine_name: str,
    tolerated: Dict[Role, AdversaryClass],
    model: ThreatModel,
    tolerates_collusion: bool = False,
) -> None:
    """Fail-closed check used by every engine at configuration time."""
    for role, actual in model.per_role.items():
        limit = tolerated.get(role, AdversaryClass.HONEST)
        if not actual.at_most(limit):
            raise ThreatModelMismatch(
                f"{engine_name} tolerates {limit.value} {role.value}, "
                f"but the threat model declares {actual.value}"
            )
    if not model.collusion.is_collusion_free and not tolerates_collusion:
        raise ThreatModelMismatch(
            f"{engine_name} does not tolerate colluding participants"
        )
