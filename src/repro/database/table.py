"""In-memory tables with primary keys and secondary hash indexes.

Rows are plain dicts validated against the schema.  Mutations return
copies of affected rows so callers can log before/after images; the
table itself never hands out references to its internal storage.
"""

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.common.errors import PReVerError
from repro.database.expr import Env, Expr
from repro.database.schema import TableSchema


class TableError(PReVerError):
    pass


class DuplicateKeyError(TableError):
    pass


class MissingRowError(TableError):
    pass


class Table:
    """A single table: primary-key dict plus secondary hash indexes."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: Dict[Tuple, Dict[str, Any]] = {}
        self._indexes: Dict[str, Dict[Any, set]] = {
            name: {} for name in schema.indexes
        }
        self._range_indexes: Dict[str, "RangeIndex"] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: Tuple) -> bool:
        return key in self._rows

    # -- mutations ----------------------------------------------------

    def insert(self, row: Dict[str, Any]) -> Dict[str, Any]:
        normalized = self.schema.validate_row(row)
        key = self.schema.key_of(normalized)
        if key in self._rows:
            raise DuplicateKeyError(
                f"duplicate key {key!r} in table {self.schema.name!r}"
            )
        self._rows[key] = normalized
        self._index_add(key, normalized)
        return dict(normalized)

    def upsert(self, row: Dict[str, Any]) -> Dict[str, Any]:
        normalized = self.schema.validate_row(row)
        key = self.schema.key_of(normalized)
        if key in self._rows:
            self._index_remove(key, self._rows[key])
        self._rows[key] = normalized
        self._index_add(key, normalized)
        return dict(normalized)

    def update_row(
        self, key: Tuple, changes: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """Apply ``changes`` to the row at ``key``; returns
        (before_image, after_image)."""
        if key not in self._rows:
            raise MissingRowError(f"no row {key!r} in {self.schema.name!r}")
        before = dict(self._rows[key])
        merged = dict(before)
        merged.update(changes)
        normalized = self.schema.validate_row(merged)
        new_key = self.schema.key_of(normalized)
        if new_key != key and new_key in self._rows:
            raise DuplicateKeyError(f"update collides with key {new_key!r}")
        self._index_remove(key, before)
        del self._rows[key]
        self._rows[new_key] = normalized
        self._index_add(new_key, normalized)
        return before, dict(normalized)

    def delete(self, key: Tuple) -> Dict[str, Any]:
        if key not in self._rows:
            raise MissingRowError(f"no row {key!r} in {self.schema.name!r}")
        row = self._rows.pop(key)
        self._index_remove(key, row)
        return dict(row)

    # -- reads --------------------------------------------------------

    def get(self, key: Tuple) -> Optional[Dict[str, Any]]:
        row = self._rows.get(key)
        return dict(row) if row is not None else None

    def scan(self, predicate: Optional[Expr] = None) -> Iterator[Dict[str, Any]]:
        """Full scan, optionally filtered by an expression predicate."""
        for row in self._rows.values():
            if predicate is None or bool(predicate.evaluate(Env(row=row))):
                yield dict(row)

    def lookup(self, column: str, value: Any) -> List[Dict[str, Any]]:
        """Equality lookup, via index when available."""
        if column in self._indexes:
            keys = self._indexes[column].get(value, set())
            return [dict(self._rows[k]) for k in keys]
        return [dict(r) for r in self._rows.values() if r.get(column) == value]

    def aggregate(
        self,
        column: Optional[str],
        func: str,
        predicate: Optional[Expr] = None,
    ) -> Any:
        """COUNT/SUM/AVG/MIN/MAX over (optionally filtered) rows.

        ``column`` may be None only for COUNT.
        """
        values = []
        count = 0
        for row in self._rows.values():
            if predicate is not None and not bool(
                predicate.evaluate(Env(row=row))
            ):
                continue
            count += 1
            if column is not None:
                value = row.get(column)
                if value is not None:
                    values.append(value)
        func = func.upper()
        if func == "COUNT":
            return count
        if column is None:
            raise TableError(f"{func} requires a column")
        if func == "SUM":
            return sum(values) if values else 0
        if func == "AVG":
            return sum(values) / len(values) if values else None
        if func == "MIN":
            return min(values) if values else None
        if func == "MAX":
            return max(values) if values else None
        raise TableError(f"unknown aggregate {func!r}")

    def rows(self) -> List[Dict[str, Any]]:
        return [dict(r) for r in self._rows.values()]

    # -- range indexes ---------------------------------------------------

    def create_range_index(self, column: str) -> None:
        """Add a sorted index over ``column`` (idempotent); existing
        rows are indexed immediately."""
        from repro.database.rindex import RangeIndex

        self.schema.column(column)  # validates existence
        if column in self._range_indexes:
            return
        index = RangeIndex(column)
        for key, row in self._rows.items():
            index.add(row.get(column), key)
        self._range_indexes[column] = index

    def has_range_index(self, column: str) -> bool:
        return column in self._range_indexes

    def range_lookup(
        self,
        column: str,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> List[Dict[str, Any]]:
        """Rows with ``low <(=) column <(=) high`` via the sorted index."""
        if column not in self._range_indexes:
            raise TableError(f"no range index on {column!r}")
        keys = self._range_indexes[column].range_keys(
            low, high, include_low, include_high
        )
        return [dict(self._rows[k]) for k in keys]

    # -- index maintenance ---------------------------------------------

    def _index_add(self, key: Tuple, row: Dict[str, Any]) -> None:
        for column, index in self._indexes.items():
            index.setdefault(row.get(column), set()).add(key)
        for column, range_index in self._range_indexes.items():
            range_index.add(row.get(column), key)

    def _index_remove(self, key: Tuple, row: Dict[str, Any]) -> None:
        for column, index in self._indexes.items():
            bucket = index.get(row.get(column))
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del index[row.get(column)]
        for column, range_index in self._range_indexes.items():
            range_index.remove(row.get(column), key)
