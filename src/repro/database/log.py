"""Transaction log: an ordered record of every committed mutation.

The ledger layer (RC4) anchors these records into Merkle trees; the
DP-Sync-style update-pattern analysis (RC1) reads arrival timestamps
from here.
"""

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.common.serialization import canonical_bytes


class LogOp(enum.Enum):
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class LogRecord:
    """One committed mutation with before/after images.

    The record is frozen and its before/after images are defensive
    copies (see :meth:`Table.update_row` and friends), so both the
    serializable dict and the canonical payload bytes are computed once
    and memoized — WAL framing and ledger anchoring previously rebuilt
    them on every call.
    """

    sequence: int
    timestamp: float
    table: str
    op: LogOp
    key: tuple
    before: Optional[Dict[str, Any]]
    after: Optional[Dict[str, Any]]
    update_id: Optional[str] = None

    def to_dict(self) -> dict:
        cached = self.__dict__.get("_dict")
        if cached is None:
            cached = {
                "sequence": self.sequence,
                "timestamp": self.timestamp,
                "table": self.table,
                "op": self.op.value,
                "key": list(self.key),
                "before": self.before,
                "after": self.after,
                "update_id": self.update_id,
            }
            object.__setattr__(self, "_dict", cached)
        return cached

    def payload_bytes(self) -> bytes:
        cached = self.__dict__.get("_payload_bytes")
        if cached is None:
            cached = canonical_bytes(self.to_dict())
            object.__setattr__(self, "_payload_bytes", cached)
        return cached


class TransactionLog:
    """Append-only sequence of :class:`LogRecord`."""

    def __init__(self):
        self._records: List[LogRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def append(
        self,
        timestamp: float,
        table: str,
        op: LogOp,
        key: tuple,
        before: Optional[Dict[str, Any]],
        after: Optional[Dict[str, Any]],
        update_id: Optional[str] = None,
    ) -> LogRecord:
        record = LogRecord(
            sequence=len(self._records),
            timestamp=timestamp,
            table=table,
            op=op,
            key=key,
            before=before,
            after=after,
            update_id=update_id,
        )
        self._records.append(record)
        return record

    def records(self, since: int = 0) -> Iterator[LogRecord]:
        yield from self._records[since:]

    def last(self) -> Optional[LogRecord]:
        return self._records[-1] if self._records else None

    def arrival_times(self) -> List[float]:
        """Timestamps of all records — the update pattern an observer
        of the outsourced store would see (DP-Sync's threat)."""
        return [r.timestamp for r in self._records]
