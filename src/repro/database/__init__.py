"""Relational database substrate.

PReVer is a framework *over* databases, so the reproduction needs a
real (if small) relational engine to regulate: typed schemas, tables
with primary keys and secondary indexes, an expression AST shared with
the constraint language, aggregate queries with grouping, a transaction
log, and an encrypted-column store for the RC1 outsourced setting.
"""

from repro.database.schema import Column, ColumnType, TableSchema
from repro.database.expr import (
    Expr,
    Col,
    Lit,
    UpdateField,
    BinOp,
    Not,
    FuncCall,
    col,
    lit,
    update_field,
)
from repro.database.table import Table
from repro.database.engine import Database
from repro.database.log import TransactionLog, LogRecord
from repro.database.encrypted import EncryptedTable, ColumnEncryption

__all__ = [
    "Column",
    "ColumnType",
    "TableSchema",
    "Expr",
    "Col",
    "Lit",
    "UpdateField",
    "BinOp",
    "Not",
    "FuncCall",
    "col",
    "lit",
    "update_field",
    "Table",
    "Database",
    "TransactionLog",
    "LogRecord",
    "EncryptedTable",
    "ColumnEncryption",
]
