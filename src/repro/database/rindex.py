"""Sorted (range) secondary indexes.

Window regulations ("hours within the last 7 days") filter on a
timestamp column; without an order-aware index every check scans the
table.  :class:`RangeIndex` keeps a sorted list of (value, key) pairs
maintained on every mutation, answering range lookups in
O(log n + matches).
"""

import bisect
from typing import Any, List, Optional, Tuple

from repro.common.errors import PReVerError


class RangeIndexError(PReVerError):
    pass


class RangeIndex:
    """A sorted index over one column.  None values are not indexed."""

    def __init__(self, column: str):
        self.column = column
        self._entries: List[Tuple[Any, Tuple]] = []  # (value, primary key)

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, value: Any, key: Tuple) -> None:
        if value is None:
            return
        bisect.insort(self._entries, (value, key))

    def remove(self, value: Any, key: Tuple) -> None:
        if value is None:
            return
        index = bisect.bisect_left(self._entries, (value, key))
        if index < len(self._entries) and self._entries[index] == (value, key):
            del self._entries[index]

    def range_keys(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> List[Tuple]:
        """Primary keys of rows with column value in the interval."""
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(self._entries, (low,))
        else:
            start = bisect.bisect_right(self._entries, (low, _TOP))
        if high is None:
            stop = len(self._entries)
        elif include_high:
            stop = bisect.bisect_right(self._entries, (high, _TOP))
        else:
            stop = bisect.bisect_left(self._entries, (high,))
        return [key for _, key in self._entries[start:stop]]

    def min_value(self) -> Optional[Any]:
        return self._entries[0][0] if self._entries else None

    def max_value(self) -> Optional[Any]:
        return self._entries[-1][0] if self._entries else None


class _Top:
    """Sorts after every tuple key (sentinel for inclusive bounds)."""

    def __lt__(self, other):
        return False

    def __gt__(self, other):
        return True


_TOP = _Top()
