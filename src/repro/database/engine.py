"""The Database: a named collection of tables plus the transaction log.

This is the object PReVer's data managers hold.  All mutations flow
through the database (not the raw tables) so every change is logged —
the ledger layer anchors that log, and tests can replay it.
"""

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.common.clock import SimClock
from repro.common.errors import PReVerError
from repro.database.expr import Env, Expr
from repro.database.log import LogOp, TransactionLog
from repro.database.schema import TableSchema
from repro.database.table import Table


class DatabaseError(PReVerError):
    pass


class Database:
    """A single data manager's database."""

    def __init__(self, name: str, clock: Optional[SimClock] = None):
        self.name = name
        self.clock = clock or SimClock()
        self.log = TransactionLog()
        self._tables: Dict[str, Table] = {}

    # -- schema --------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise DatabaseError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise DatabaseError(f"no table {name!r} in {self.name!r}") from None

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    # -- logged mutations ------------------------------------------------

    def insert(
        self, table_name: str, row: Dict[str, Any], update_id: Optional[str] = None
    ) -> Dict[str, Any]:
        table = self.table(table_name)
        inserted = table.insert(row)
        self.log.append(
            timestamp=self.clock.now(),
            table=table_name,
            op=LogOp.INSERT,
            key=table.schema.key_of(inserted),
            before=None,
            after=inserted,
            update_id=update_id,
        )
        return inserted

    def update(
        self,
        table_name: str,
        key: Tuple,
        changes: Dict[str, Any],
        update_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        table = self.table(table_name)
        before, after = table.update_row(key, changes)
        self.log.append(
            timestamp=self.clock.now(),
            table=table_name,
            op=LogOp.UPDATE,
            key=key,
            before=before,
            after=after,
            update_id=update_id,
        )
        return after

    def delete(
        self, table_name: str, key: Tuple, update_id: Optional[str] = None
    ) -> Dict[str, Any]:
        table = self.table(table_name)
        before = table.delete(key)
        self.log.append(
            timestamp=self.clock.now(),
            table=table_name,
            op=LogOp.DELETE,
            key=key,
            before=before,
            after=None,
            update_id=update_id,
        )
        return before

    # -- queries ---------------------------------------------------------

    def select(
        self,
        table_name: str,
        predicate: Optional[Expr] = None,
        columns: Optional[Iterable[str]] = None,
    ) -> List[Dict[str, Any]]:
        rows = list(self.table(table_name).scan(predicate))
        if columns is None:
            return rows
        wanted = list(columns)
        return [{c: row.get(c) for c in wanted} for row in rows]

    def aggregate(
        self,
        table_name: str,
        func: str,
        column: Optional[str] = None,
        predicate: Optional[Expr] = None,
    ) -> Any:
        return self.table(table_name).aggregate(column, func, predicate)

    def group_by(
        self,
        table_name: str,
        group_columns: List[str],
        agg_func: str,
        agg_column: Optional[str] = None,
        predicate: Optional[Expr] = None,
    ) -> Dict[Tuple, Any]:
        """GROUP BY with one aggregate — enough for PReVer's regulation
        workloads (e.g. hours per worker per week)."""
        groups: Dict[Tuple, List[Dict[str, Any]]] = {}
        for row in self.table(table_name).scan(predicate):
            key = tuple(row.get(c) for c in group_columns)
            groups.setdefault(key, []).append(row)
        func = agg_func.upper()
        out: Dict[Tuple, Any] = {}
        for key, rows in groups.items():
            if func == "COUNT":
                out[key] = len(rows)
                continue
            values = [
                r.get(agg_column) for r in rows if r.get(agg_column) is not None
            ]
            if func == "SUM":
                out[key] = sum(values) if values else 0
            elif func == "AVG":
                out[key] = sum(values) / len(values) if values else None
            elif func == "MIN":
                out[key] = min(values) if values else None
            elif func == "MAX":
                out[key] = max(values) if values else None
            else:
                raise DatabaseError(f"unknown aggregate {agg_func!r}")
        return out

    def join(
        self,
        left_table: str,
        right_table: str,
        left_column: str,
        right_column: str,
        predicate: Optional[Expr] = None,
    ) -> List[Dict[str, Any]]:
        """Hash equi-join; right columns are prefixed on collision."""
        right = self.table(right_table)
        buckets: Dict[Any, List[Dict[str, Any]]] = {}
        for row in right.scan():
            buckets.setdefault(row.get(right_column), []).append(row)
        out = []
        for left_row in self.table(left_table).scan():
            for right_row in buckets.get(left_row.get(left_column), []):
                merged = dict(left_row)
                for column, value in right_row.items():
                    if column in merged and merged[column] != value:
                        merged[f"{right_table}.{column}"] = value
                    else:
                        merged.setdefault(column, value)
                if predicate is None or bool(predicate.evaluate(Env(row=merged))):
                    out.append(merged)
        return out
