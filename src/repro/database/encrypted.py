"""Encrypted-column storage for the outsourced single-database setting.

RC1's honest-but-curious data manager stores the data but must not read
it.  The standard practical design (CryptDB lineage) encrypts each
column under a scheme matching the operations the manager must run:

* ``DET``  — deterministic PRF-based encryption: supports equality
  lookups (and hence primary keys and joins), leaks equality pattern;
* ``AHE``  — Paillier: supports SUM/COUNT-style aggregation and linear
  constraint evaluation under encryption;
* ``RND``  — randomized (PRF-CTR) encryption: supports storage only.

The :class:`EncryptedTable` wraps a plain :class:`Table` whose cell
values are ciphertexts; the data-owner-side :class:`ColumnEncryption`
object holds the keys and translates rows both ways.  A test asserts
the manager-visible bytes never contain plaintext values.
"""

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import PReVerError, PrivacyError
from repro.common.serialization import canonical_bytes
from repro.crypto.hashing import prf
from repro.crypto.paillier import (
    PaillierCiphertext,
    PaillierKeyPair,
    generate_paillier_keypair,
)
from repro.database.schema import ColumnType, TableSchema
from repro.database.table import Table


class EncryptionScheme(enum.Enum):
    DET = "det"
    AHE = "ahe"
    RND = "rnd"


class EncryptedStoreError(PReVerError):
    pass


def _xor_stream(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """PRF counter-mode stream cipher (encrypt == decrypt)."""
    out = bytearray()
    block = 0
    while len(out) < len(data):
        pad = prf(key, nonce + block.to_bytes(8, "big"))
        out.extend(pad)
        block += 1
    return bytes(x ^ y for x, y in zip(data, out))


@dataclass
class ColumnEncryption:
    """Data-owner-side key material for one table.

    ``schemes`` maps column name -> :class:`EncryptionScheme`.  Columns
    not listed stay plaintext (public columns are legitimate: RC3's
    public data, or non-sensitive metadata).
    """

    schemes: Dict[str, EncryptionScheme]
    master_key: bytes
    paillier: Optional[PaillierKeyPair] = None
    signed_values: bool = True

    def __post_init__(self):
        if any(s is EncryptionScheme.AHE for s in self.schemes.values()):
            if self.paillier is None:
                self.paillier = generate_paillier_keypair(256)
        self._counter = 0

    def _column_key(self, column: str) -> bytes:
        return prf(self.master_key, b"col:" + column.encode())

    def encrypt_cell(self, column: str, value: Any) -> Any:
        scheme = self.schemes.get(column)
        if scheme is None or value is None:
            return value
        if scheme is EncryptionScheme.DET:
            return prf(self._column_key(column), canonical_bytes(value)).hex()
        if scheme is EncryptionScheme.AHE:
            if not isinstance(value, int) or isinstance(value, bool):
                raise EncryptedStoreError("AHE columns must hold ints")
            if self.signed_values:
                return self.paillier.public_key.encrypt_signed(value)
            return self.paillier.public_key.encrypt(value)
        # RND
        self._counter += 1
        nonce = self._counter.to_bytes(12, "big")
        ciphertext = _xor_stream(
            self._column_key(column), nonce, canonical_bytes(value)
        )
        return (nonce + ciphertext).hex()

    def decrypt_cell(self, column: str, stored: Any) -> Any:
        scheme = self.schemes.get(column)
        if scheme is None or stored is None:
            return stored
        if scheme is EncryptionScheme.DET:
            raise PrivacyError(
                "deterministic encryption is one-way; keep a client-side map"
            )
        if scheme is EncryptionScheme.AHE:
            if not isinstance(stored, PaillierCiphertext):
                raise EncryptedStoreError("AHE cell does not hold a ciphertext")
            if self.signed_values:
                return self.paillier.private_key.decrypt_signed(stored)
            return self.paillier.private_key.decrypt(stored)
        raw = bytes.fromhex(stored)
        nonce, ciphertext = raw[:12], raw[12:]
        plain = _xor_stream(self._column_key(column), nonce, ciphertext)
        from repro.common.serialization import from_canonical_json

        return from_canonical_json(plain.decode("utf-8"))

    def encrypt_row(self, row: Dict[str, Any]) -> Dict[str, Any]:
        return {c: self.encrypt_cell(c, v) for c, v in row.items()}


def encrypted_schema(plain: TableSchema, schemes: Dict[str, EncryptionScheme]) -> TableSchema:
    """Derive the manager-visible schema: encrypted columns become
    TEXT (DET/RND hex) or stay INT-typed ciphertext objects (AHE,
    stored as opaque objects — we relax the type to TEXT-free by using
    a BYTES-tolerant approach: AHE cells are PaillierCiphertext
    instances, so the column is dropped from type checking by marking
    it nullable TEXT and storing the object in a side dict).

    Practical compromise for the simulator: DET/RND columns map to
    TEXT; AHE columns keep their name but the manager-side Table stores
    the ciphertext object — we therefore bypass schema type validation
    for AHE columns by typing them as nullable TEXT and storing
    ciphertexts in the EncryptedTable's side map keyed by primary key.
    """
    from repro.database.schema import Column

    new_columns = []
    for column in plain.columns:
        scheme = schemes.get(column.name)
        if scheme in (EncryptionScheme.DET, EncryptionScheme.RND):
            new_columns.append(Column(column.name, ColumnType.TEXT, column.nullable))
        elif scheme is EncryptionScheme.AHE:
            new_columns.append(Column(column.name, ColumnType.TEXT, nullable=True))
        else:
            new_columns.append(column)
    return TableSchema(
        name=plain.name,
        columns=tuple(new_columns),
        primary_key=plain.primary_key,
        indexes=plain.indexes,
    )


class EncryptedTable:
    """The data manager's view: stores only ciphertexts.

    The manager can: insert encrypted rows, look up rows by DET
    ciphertext equality, and compute encrypted SUMs over AHE columns —
    everything else requires the data owner.
    """

    def __init__(self, plain_schema: TableSchema, encryption: ColumnEncryption):
        for key_column in plain_schema.primary_key:
            if encryption.schemes.get(key_column) is EncryptionScheme.AHE:
                raise EncryptedStoreError("primary key cannot be AHE-encrypted")
            if encryption.schemes.get(key_column) is EncryptionScheme.RND:
                raise EncryptedStoreError(
                    "primary key must be DET or plaintext for lookups"
                )
        self.encryption = encryption
        self.schema = encrypted_schema(plain_schema, encryption.schemes)
        self._ahe_columns = [
            c for c, s in encryption.schemes.items() if s is EncryptionScheme.AHE
        ]
        self._table = Table(self.schema)
        self._ahe_cells: Dict[Tuple, Dict[str, PaillierCiphertext]] = {}

    def __len__(self) -> int:
        return len(self._table)

    # -- owner-side write path ------------------------------------------

    def insert_plain(self, row: Dict[str, Any]) -> Tuple:
        """Encrypt on the owner side, then store (the manager only ever
        receives the output of ``encrypt_row``)."""
        encrypted = self.encryption.encrypt_row(row)
        return self.insert_encrypted(encrypted)

    # -- manager-side operations ------------------------------------------

    def insert_encrypted(self, encrypted_row: Dict[str, Any]) -> Tuple:
        ahe_cells = {}
        storable = dict(encrypted_row)
        for column in self._ahe_columns:
            cell = storable.pop(column, None)
            if cell is not None and not isinstance(cell, PaillierCiphertext):
                raise EncryptedStoreError(f"column {column!r} expects a ciphertext")
            ahe_cells[column] = cell
            storable[column] = None
        stored = self._table.insert(storable)
        key = self.schema.key_of(stored)
        self._ahe_cells[key] = ahe_cells
        return key

    def add_to_cell(self, key: Tuple, column: str, delta: PaillierCiphertext) -> None:
        """Homomorphically add an encrypted delta to an AHE cell —
        the manager applies a private update without decrypting it."""
        if column not in self._ahe_columns:
            raise EncryptedStoreError(f"{column!r} is not an AHE column")
        cells = self._ahe_cells.get(key)
        if cells is None:
            raise EncryptedStoreError(f"no row {key!r}")
        current = cells.get(column)
        cells[column] = delta if current is None else current + delta
    def lookup_det(self, column: str, det_ciphertext: str) -> List[Dict[str, Any]]:
        """Equality lookup on a DET column by ciphertext."""
        return self._table.lookup(column, det_ciphertext)

    def encrypted_sum(self, column: str) -> Optional[PaillierCiphertext]:
        """SUM over an AHE column, computed entirely on ciphertexts."""
        if column not in self._ahe_columns:
            raise EncryptedStoreError(f"{column!r} is not an AHE column")
        total: Optional[PaillierCiphertext] = None
        for cells in self._ahe_cells.values():
            cell = cells.get(column)
            if cell is None:
                continue
            total = cell if total is None else total + cell
        return total

    def ahe_cell(self, key: Tuple, column: str) -> Optional[PaillierCiphertext]:
        cells = self._ahe_cells.get(key)
        if cells is None:
            raise EncryptedStoreError(f"no row {key!r}")
        return cells.get(column)

    def manager_visible_rows(self) -> List[Dict[str, Any]]:
        """Everything an honest-but-curious manager can see (used by the
        leakage tests)."""
        out = []
        for row in self._table.rows():
            key = self.schema.key_of(row)
            visible = dict(row)
            for column in self._ahe_columns:
                cell = self._ahe_cells[key].get(column)
                visible[column] = None if cell is None else cell.value
            out.append(visible)
        return out
