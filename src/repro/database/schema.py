"""Table schemas: typed columns, primary keys, nullability.

Schemas validate rows on every write, so constraint evaluation can
assume well-typed data.
"""

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import PReVerError


class SchemaError(PReVerError):
    pass


class ColumnType(enum.Enum):
    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"
    BYTES = "bytes"

    def validate(self, value: Any) -> bool:
        if value is None:
            return True  # nullability is checked separately
        if self is ColumnType.INT and isinstance(value, bool):
            return False  # bool is an int subclass; reject it for INT
        return isinstance(value, _EXPECTED_TYPES[self])


_EXPECTED_TYPES = {
    ColumnType.INT: int,
    ColumnType.FLOAT: (int, float),
    ColumnType.TEXT: str,
    ColumnType.BOOL: bool,
    ColumnType.BYTES: bytes,
}


@dataclass(frozen=True)
class Column:
    name: str
    type: ColumnType
    nullable: bool = False

    def check(self, value: Any) -> None:
        if value is None and not self.nullable:
            raise SchemaError(f"column {self.name!r} is not nullable")
        if not self.type.validate(value):
            raise SchemaError(
                f"column {self.name!r} expects {self.type.value}, "
                f"got {type(value).__name__}"
            )


@dataclass(frozen=True)
class TableSchema:
    """A named, ordered collection of columns with a primary key."""

    name: str
    columns: Tuple[Column, ...]
    primary_key: Tuple[str, ...]
    indexes: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self):
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {self.name!r}")
        object.__setattr__(self, "_known_columns", frozenset(names))
        # Flat per-column validation plan so validate_row runs without
        # per-value method dispatch (hot on every insert/update).
        object.__setattr__(
            self,
            "_validation_plan",
            tuple(
                (c.name, _EXPECTED_TYPES[c.type], c.nullable,
                 c.type is ColumnType.INT, c)
                for c in self.columns
            ),
        )
        for key in self.primary_key:
            if key not in names:
                raise SchemaError(f"primary key column {key!r} missing")
        for key in self.indexes:
            if key not in names:
                raise SchemaError(f"indexed column {key!r} missing")
        if not self.primary_key:
            raise SchemaError("a table needs at least one primary-key column")

    @classmethod
    def build(
        cls,
        name: str,
        columns: Sequence[Tuple[str, ColumnType]],
        primary_key: Sequence[str],
        indexes: Sequence[str] = (),
        nullable: Sequence[str] = (),
    ) -> "TableSchema":
        """Convenience constructor from (name, type) pairs."""
        nullable_set = set(nullable)
        cols = tuple(
            Column(n, t, nullable=n in nullable_set) for n, t in columns
        )
        return cls(
            name=name,
            columns=cols,
            primary_key=tuple(primary_key),
            indexes=tuple(indexes),
        )

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        for c in self.columns:
            if c.name == name:
                return c
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def validate_row(self, row: Dict[str, Any]) -> Dict[str, Any]:
        """Check types/nullability; fill missing nullable columns with
        None; reject unknown columns.  Returns a normalized copy."""
        known = self._known_columns
        if len(row) > len(known) or not known.issuperset(row):
            unknown = set(row) - known
            raise SchemaError(f"unknown columns {sorted(unknown)} for {self.name!r}")
        normalized = {}
        for name, expected, nullable, is_int, column in self._validation_plan:
            value = row.get(name)
            if value is None:
                if not nullable:
                    raise SchemaError(f"column {name!r} is not nullable")
            elif not isinstance(value, expected) or (
                is_int and isinstance(value, bool)
            ):
                column.check(value)  # raises with the standard message
            normalized[name] = value
        return normalized

    def key_of(self, row: Dict[str, Any]) -> Tuple:
        try:
            return tuple(row[k] for k in self.primary_key)
        except KeyError as exc:
            raise SchemaError(f"row missing primary key column {exc}") from exc
