"""Expression AST shared by queries and the constraint language.

Constraints in PReVer are "Boolean functions computed over the database
and an incoming update" (Section 3.2).  This module provides the value
half of that language: column references, update-field references,
literals, arithmetic/comparison/boolean operators, and a small function
library.  Expressions evaluate against an *environment*: a row dict,
an optional update dict (for ``UpdateField``), and optional extras
(e.g. aggregate results bound by the constraint evaluator).

The AST is deliberately analyzable — ``columns_used()`` and
``linearize()`` let the privacy engines decide whether a constraint is
linear (and hence Paillier/MPC-evaluable) without executing it.
"""

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Optional, Tuple

from repro.common.errors import PReVerError


class ExprError(PReVerError):
    pass


class Expr:
    """Base class; subclasses are immutable dataclasses."""

    def evaluate(self, env: "Env") -> Any:
        raise NotImplementedError

    def columns_used(self) -> FrozenSet[str]:
        return frozenset()

    def update_fields_used(self) -> FrozenSet[str]:
        return frozenset()

    # Operator sugar so constraints read naturally:
    #   col("hours") + update_field("hours") <= lit(40)
    def _binop(self, op: str, other) -> "BinOp":
        return BinOp(op, self, _wrap(other))

    def _rbinop(self, op: str, other) -> "BinOp":
        return BinOp(op, _wrap(other), self)

    def __add__(self, other):
        return self._binop("+", other)

    def __radd__(self, other):
        return self._rbinop("+", other)

    def __sub__(self, other):
        return self._binop("-", other)

    def __rsub__(self, other):
        return self._rbinop("-", other)

    def __mul__(self, other):
        return self._binop("*", other)

    def __rmul__(self, other):
        return self._rbinop("*", other)

    def __lt__(self, other):
        return self._binop("<", other)

    def __le__(self, other):
        return self._binop("<=", other)

    def __gt__(self, other):
        return self._binop(">", other)

    def __ge__(self, other):
        return self._binop(">=", other)

    def eq(self, other) -> "BinOp":
        return self._binop("==", other)

    def ne(self, other) -> "BinOp":
        return self._binop("!=", other)

    def and_(self, other) -> "BinOp":
        return self._binop("and", other)

    def or_(self, other) -> "BinOp":
        return self._binop("or", other)

    def is_in(self, values) -> "BinOp":
        return BinOp("in", self, Lit(tuple(values)))


def _wrap(value) -> Expr:
    if isinstance(value, Expr):
        return value
    return Lit(value)


@dataclass(frozen=True)
class Env:
    """Evaluation environment for one constraint check."""

    row: Dict[str, Any]
    update: Optional[Dict[str, Any]] = None
    extras: Optional[Dict[str, Any]] = None

    def lookup_column(self, name: str) -> Any:
        if name in self.row:
            return self.row[name]
        if self.extras and name in self.extras:
            return self.extras[name]
        raise ExprError(f"unbound column {name!r}")

    def lookup_update_field(self, name: str) -> Any:
        if self.update is None:
            raise ExprError("no update bound in this environment")
        if name not in self.update:
            raise ExprError(f"update has no field {name!r}")
        return self.update[name]


@dataclass(frozen=True)
class Col(Expr):
    """Reference to a database column (or a bound aggregate name)."""

    name: str

    def evaluate(self, env: Env) -> Any:
        return env.lookup_column(self.name)

    def columns_used(self) -> FrozenSet[str]:
        return frozenset([self.name])

    def __repr__(self):
        return f"col({self.name!r})"


@dataclass(frozen=True)
class UpdateField(Expr):
    """Reference to a field of the incoming update."""

    name: str

    def evaluate(self, env: Env) -> Any:
        return env.lookup_update_field(self.name)

    def update_fields_used(self) -> FrozenSet[str]:
        return frozenset([self.name])

    def __repr__(self):
        return f"update_field({self.name!r})"


@dataclass(frozen=True)
class Lit(Expr):
    """A constant."""

    value: Any

    def evaluate(self, env: Env) -> Any:
        return self.value

    def __repr__(self):
        return f"lit({self.value!r})"


_OPERATORS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "in": lambda a, b: a in b,
}


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def evaluate(self, env: Env) -> Any:
        if self.op == "and":
            return bool(self.left.evaluate(env)) and bool(self.right.evaluate(env))
        if self.op == "or":
            return bool(self.left.evaluate(env)) or bool(self.right.evaluate(env))
        try:
            fn = _OPERATORS[self.op]
        except KeyError:
            raise ExprError(f"unknown operator {self.op!r}") from None
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if left is None or right is None:
            # SQL-style: comparisons/arithmetic with NULL are NULL,
            # which a boolean context treats as False.
            return None
        return fn(left, right)

    def columns_used(self) -> FrozenSet[str]:
        return self.left.columns_used() | self.right.columns_used()

    def update_fields_used(self) -> FrozenSet[str]:
        return self.left.update_fields_used() | self.right.update_fields_used()

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def evaluate(self, env: Env) -> Any:
        value = self.operand.evaluate(env)
        if value is None:
            return None
        return not value

    def columns_used(self) -> FrozenSet[str]:
        return self.operand.columns_used()

    def update_fields_used(self) -> FrozenSet[str]:
        return self.operand.update_fields_used()


_FUNCTIONS = {
    "abs": abs,
    "min": min,
    "max": max,
    "len": len,
}


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str
    args: Tuple[Expr, ...]

    def evaluate(self, env: Env) -> Any:
        try:
            fn = _FUNCTIONS[self.name]
        except KeyError:
            raise ExprError(f"unknown function {self.name!r}") from None
        return fn(*(arg.evaluate(env) for arg in self.args))

    def columns_used(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for arg in self.args:
            out |= arg.columns_used()
        return out

    def update_fields_used(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for arg in self.args:
            out |= arg.update_fields_used()
        return out


# ---------------------------------------------------------------------------
# Linearity analysis — the privacy engines only handle linear forms.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LinearForm:
    """sum_i coeff_i * var_i + constant, over column/update variables.

    Variables are tagged ("col", name) or ("upd", name).
    """

    coefficients: Tuple[Tuple[Tuple[str, str], float], ...]
    constant: float

    def as_dict(self) -> Dict[Tuple[str, str], float]:
        return dict(self.coefficients)


def linearize(expr: Expr) -> Optional[LinearForm]:
    """Return the linear form of an arithmetic expression, or None if
    it is not linear (product of two variables, unsupported function).
    """
    result = _linearize(expr)
    if result is None:
        return None
    coeffs, constant = result
    return LinearForm(
        coefficients=tuple(sorted(coeffs.items())), constant=constant
    )


def _linearize(expr: Expr):
    if isinstance(expr, Lit):
        if isinstance(expr.value, (int, float)) and not isinstance(expr.value, bool):
            return {}, float(expr.value)
        return None
    if isinstance(expr, Col):
        return {("col", expr.name): 1.0}, 0.0
    if isinstance(expr, UpdateField):
        return {("upd", expr.name): 1.0}, 0.0
    if isinstance(expr, BinOp):
        left = _linearize(expr.left)
        right = _linearize(expr.right)
        if left is None or right is None:
            return None
        lc, lk = left
        rc, rk = right
        if expr.op == "+":
            return _merge(lc, rc, 1.0), lk + rk
        if expr.op == "-":
            return _merge(lc, rc, -1.0), lk - rk
        if expr.op == "*":
            if lc and rc:
                return None  # variable * variable: not linear
            if lc:
                return {k: v * rk for k, v in lc.items()}, lk * rk
            return {k: v * lk for k, v in rc.items()}, lk * rk
        return None
    return None


def _merge(a: Dict, b: Dict, sign: float) -> Dict:
    out = dict(a)
    for key, value in b.items():
        out[key] = out.get(key, 0.0) + sign * value
    return {k: v for k, v in out.items() if v != 0.0}


# Public constructors ------------------------------------------------------

def col(name: str) -> Col:
    return Col(name)


def lit(value: Any) -> Lit:
    return Lit(value)


def update_field(name: str) -> UpdateField:
    return UpdateField(name)
