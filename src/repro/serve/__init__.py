"""The serving tier: network ingress for the PReVer pipeline.

The in-process API (:meth:`repro.core.framework.PReVer.submit_many`)
assumes the caller already holds a batch.  Real deployments don't:
updates arrive one or a few at a time from many concurrent producers.
This package bridges that gap with a small asyncio serving stack:

- :mod:`repro.serve.protocol` — the length-prefixed framed wire
  protocol (normative spec in ``docs/PROTOCOL.md``), codec-tagged so a
  binary codec can slot in beside canonical JSON later;
- :mod:`repro.serve.server` — :class:`PReVerServer` (asyncio) and
  :class:`ServerThread` (runs a server+loop on a background thread for
  sync callers), with challenge–response Schnorr session auth, bounded
  ingress queues, and explicit RETRY backpressure;
- :mod:`repro.serve.scheduler` — :class:`BatchingScheduler`, which
  coalesces concurrent requests within a time/size window into
  ``submit_many``/``submit_pipelined`` calls so the staged pipeline
  and the WAL group commit see real batches;
- :mod:`repro.serve.client` — :class:`ServeClient`, the async SDK with
  connection reuse and pipelined request correlation.

Everything here is transport: the served decision stream and anchored
roots are byte-identical to calling ``submit_many`` in-process on the
same total update order (``benchmarks/bench_serve.py`` asserts it).
"""

from repro.serve.client import (
    ConnectionClosed,
    RequestError,
    ServeClient,
    ServerBusy,
)
from repro.serve.protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    FrameError,
    MessageError,
    ServeError,
    ServeResult,
)
from repro.serve.scheduler import BatchingScheduler, ServeSchedulerStopped
from repro.serve.server import PReVerServer, ServeConfig, ServerThread

__all__ = [
    "BatchingScheduler",
    "ConnectionClosed",
    "ERROR_CODES",
    "FrameError",
    "MessageError",
    "PROTOCOL_VERSION",
    "PReVerServer",
    "RequestError",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeResult",
    "ServeSchedulerStopped",
    "ServerBusy",
    "ServerThread",
]
