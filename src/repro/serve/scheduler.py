"""The batching scheduler: concurrent requests → batched pipeline runs.

The serving tier's whole throughput story is here.  Requests arrive one
or a few updates at a time from hundreds of connections; the staged
pipeline (PRs 1–8) earns its amortizations — routed constraint checks,
batch Schnorr auth, one Merkle extension, one group-commit fsync — only
when updates reach it in batches.  :class:`BatchingScheduler` bridges
the two: admitted requests land on a bounded ingress queue, a collector
task coalesces everything that arrives within a **time/size window**
(``batch_window`` seconds, capped at ``max_batch`` updates), and the
coalesced batch runs through ``target.submit_many`` — or
``target.submit_pipelined`` when several windows' worth of work has
queued up, overlapping batch N's anchor fsync with batch N+1's verify
prep — on one dedicated pipeline thread.

That single thread is a correctness decision, not just a convenience:
:class:`~repro.core.framework.PReVer` is not thread-safe, and running
every batch on one thread in admission order makes the served decision
stream *identical* to calling ``submit_many`` in-process on the same
update order — the root-equality property ``benchmarks/bench_serve.py``
asserts on every run.

Backpressure is by update count, not request count: ``queue_limit``
bounds the number of admitted-but-unfinished updates, and
:meth:`try_submit` refuses (the server answers RETRY) rather than
queueing unboundedly — an explicit signal, never a silent drop.

The batch window doubles as the durability layer's **group-commit
window**: with WAL durability on, each coalesced batch is made durable
by exactly one anchor-marker fsync (see
:meth:`repro.durability.policy.Durability.serving`), so widening the
window trades per-update latency for fewer fsyncs per update.
"""

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

from repro.core.outcome import UpdateResult
from repro.model.update import Update


class _WorkItem:
    """One admitted request: its updates and the future its results land on."""

    __slots__ = ("updates", "future")

    def __init__(self, updates: Sequence[Update],
                 future: "asyncio.Future[List[UpdateResult]]"):
        self.updates = list(updates)
        self.future = future


class BatchingScheduler:
    """Coalesce admitted requests into batched pipeline runs.

    ``target`` is anything exposing ``submit_many`` — a
    :class:`~repro.core.framework.PReVer` or a
    :class:`~repro.core.sharded.ShardedPReVer` (served requests then
    route across its shards exactly as in-process batches do).  When
    the target also exposes ``submit_pipelined`` and more than one
    ``max_batch`` window's worth of work is pending, the backlog is
    chunked and submitted pipelined so anchor fsyncs overlap verify
    prep.

    Lifecycle: :meth:`start` inside a running event loop,
    :meth:`try_submit` per admitted request, :meth:`drain` to run the
    queue dry (used by graceful shutdown), :meth:`stop` to tear down.
    """

    def __init__(self, target, *, batch_window: float = 0.005,
                 max_batch: int = 256, queue_limit: int = 1024,
                 metrics=None, tracer=None):
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if max_batch <= 0 or queue_limit <= 0:
            raise ValueError("max_batch and queue_limit must be positive")
        self.target = target
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.queue_limit = queue_limit
        self.metrics = metrics if metrics is not None else target.metrics
        self.tracer = tracer if tracer is not None else getattr(
            target, "tracer", None)
        self._queue: Optional[asyncio.Queue] = None
        self._task: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._pending_updates = 0
        self._inflight = 0
        self._idle: Optional[asyncio.Event] = None
        # server.* metrics, on the target's registry so the existing
        # /metrics plane (repro.obs.server) picks them up unchanged.
        self._gauge_depth = self.metrics.gauge("server.queue_depth")
        self._ctr_batches = self.metrics.counter("server.batches")
        self._ctr_batched_updates = self.metrics.counter(
            "server.batched_updates")
        self._ctr_pipelined = self.metrics.counter("server.pipelined_batches")
        self._tmr_batch = self.metrics.timer("server.batch")
        self._tmr_wait = self.metrics.timer("server.batch_wait")
        self._hist_batch_size = self.metrics.histogram(
            "server.batch_size", buckets=(1, 2, 4, 8, 16, 32, 64, 128,
                                          256, 512, 1024))

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start the collector task and the pipeline thread (idempotent).

        Must run inside the event loop that will call
        :meth:`try_submit` — the queue and futures bind to it.
        """
        if self._task is not None:
            return
        self._queue = asyncio.Queue()
        self._idle = asyncio.Event()
        self._idle.set()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="prever-serve-pipeline")
        self._task = asyncio.get_running_loop().create_task(
            self._collect_loop(), name="prever-serve-batcher")

    async def stop(self) -> None:
        """Drain the queue, then stop the collector and pipeline thread."""
        if self._task is None:
            return
        await self.drain()
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None
        self._executor.shutdown(wait=True)
        self._executor = None

    async def drain(self) -> None:
        """Wait until every admitted update has a result.

        Graceful shutdown calls this after the server stops admitting:
        in-flight batches complete and queued requests still run —
        admitted work is never dropped.
        """
        while self._pending_updates or self._inflight \
                or (self._queue is not None and not self._queue.empty()):
            await self._idle.wait()
            # The idle event can race a fresh admission; loop until the
            # accounting really reads empty.
            if self._pending_updates == 0 and self._inflight == 0 \
                    and self._queue.empty():
                return
        return

    # -- admission ---------------------------------------------------------

    @property
    def pending_updates(self) -> int:
        """Admitted updates not yet resolved (the backpressure signal)."""
        return self._pending_updates

    def try_submit(self, updates: Sequence[Update]
                   ) -> Optional["asyncio.Future[List[UpdateResult]]"]:
        """Admit one request, or refuse it under backpressure.

        Returns a future resolving to the request's
        :class:`~repro.core.outcome.UpdateResult` list (in submission
        order), or ``None`` when admitting would exceed
        ``queue_limit`` pending updates — the caller then answers
        RETRY.  Requests larger than the whole queue limit are
        refused the same way (they can never be admitted whole).
        """
        if self._task is None:
            raise ServeSchedulerStopped("scheduler is not running")
        count = len(updates)
        if self._pending_updates + count > self.queue_limit:
            return None
        future = asyncio.get_running_loop().create_future()
        self._pending_updates += count
        self._gauge_depth.set(self._pending_updates)
        self._idle.clear()
        self._queue.put_nowait(_WorkItem(updates, future))
        return future

    # -- the collector / pipeline loop ------------------------------------

    async def _collect_loop(self) -> None:
        """Collect → coalesce → execute, forever (until cancelled)."""
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            wait_start = loop.time()
            items = [first]
            size = len(first.updates)
            deadline = loop.time() + self.batch_window
            while size < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(),
                                                  timeout=remaining)
                except asyncio.TimeoutError:
                    break
                items.append(item)
                size += len(item.updates)
            self._tmr_wait.record(loop.time() - wait_start)
            await self._execute(items)

    async def _execute(self, items: List[_WorkItem]) -> None:
        """Run one coalesced batch on the pipeline thread and fan results
        back out to each request's future."""
        loop = asyncio.get_running_loop()
        updates: List[Update] = []
        for item in items:
            updates.extend(item.updates)
        chunks = [updates[i:i + self.max_batch]
                  for i in range(0, len(updates), self.max_batch)]
        pipelined = len(chunks) > 1 and hasattr(self.target,
                                                "submit_pipelined")
        self._inflight = len(updates)
        start = loop.time()
        try:
            results = await loop.run_in_executor(
                self._executor, self._run_chunks, chunks, pipelined)
        except Exception as exc:
            for item in items:
                if not item.future.done():
                    item.future.set_exception(exc)
            # Re-arm: a poisoned batch must not wedge admission.
            self._settle(items, errored=True)
            return
        elapsed = loop.time() - start
        self._tmr_batch.record(elapsed)
        self._ctr_batches.add()
        self._ctr_batched_updates.add(len(updates))
        if pipelined:
            self._ctr_pipelined.add(len(chunks))
        self._hist_batch_size.observe(len(updates))
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.event(
                "server.batch",
                requests=len(items),
                updates=len(updates),
                chunks=len(chunks),
                pipelined=pipelined,
                seconds=elapsed,
            )
        offset = 0
        for item in items:
            share = results[offset:offset + len(item.updates)]
            offset += len(item.updates)
            if not item.future.done():
                item.future.set_result(share)
        self._settle(items)

    def _run_chunks(self, chunks: List[List[Update]],
                    pipelined: bool) -> List[UpdateResult]:
        """Pipeline-thread body: one submit_pipelined / submit_many run."""
        if pipelined:
            return self.target.submit_pipelined(chunks)
        results: List[UpdateResult] = []
        for chunk in chunks:
            results.extend(self.target.submit_many(chunk))
        return results

    def _settle(self, items: List[_WorkItem], errored: bool = False) -> None:
        """Release the items' backpressure budget and maybe go idle."""
        released = sum(len(item.updates) for item in items)
        self._pending_updates -= released
        self._inflight = 0
        self._gauge_depth.set(self._pending_updates)
        if self._pending_updates == 0 and self._queue.empty():
            self._idle.set()


class ServeSchedulerStopped(RuntimeError):
    """A submit raced the scheduler's shutdown; the server answers
    SHUTTING_DOWN."""
