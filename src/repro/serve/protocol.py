"""The PReVer serve wire protocol (v1) — framing, messages, codecs.

This module is the *normative implementation* of ``docs/PROTOCOL.md``:
the spec's byte-level examples are pinned against these functions by
``tests/test_serve_protocol.py``, so a change here that alters a single
frame byte fails the build until the spec moves with it.

Framing (one frame on the stream)::

    +-----------------+------------+--------------------------+
    | length (u32 BE) | codec (u8) | payload (length bytes)   |
    +-----------------+------------+--------------------------+

``length`` counts only the payload.  ``codec`` selects the payload
encoding; v1 defines ``0x01`` = canonical JSON (sorted keys, compact
separators, ASCII — the same :func:`repro.common.encoding` output the
ledger and WAL use), and the byte exists precisely so a binary codec
can slot in later without touching the framing.  Every framing error —
a torn frame, a zero or oversized length, an unknown codec, a payload
that does not decode — **fails closed**: the receiver must drop the
connection rather than resynchronize heuristically.

Messages are JSON objects with exactly four keys::

    {"body": {...}, "id": <int>, "type": "<TYPE>", "v": 1}

Requests (client → server): ``HELLO``, ``AUTH``, ``SUBMIT``,
``SUBMIT_MANY``.  Responses (server → client): ``RESULT``, ``RETRY``,
``ERROR``, each echoing the request's ``id`` — correlation is by id,
never by order, which is what makes client-side pipelining legal.
"""

import asyncio
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.common.encoding import encode_canonical_bytes
from repro.common.errors import PReVerError, SerializationError
from repro.common.serialization import canonical_bytes, from_canonical_json
from repro.core.outcome import UpdateResult
from repro.model.policy import Visibility
from repro.model.update import Update

#: Protocol version spoken by this implementation.
PROTOCOL_VERSION = 1

#: Payload codec ids (the u8 after the length prefix).
CODEC_JSON = 0x01

#: Default cap on a frame's payload size; larger declared lengths are
#: rejected from the 5-byte header alone, before any payload is read.
DEFAULT_MAX_FRAME_BYTES = 1 << 20

#: The 5-byte frame header: payload length (u32 BE) + codec id (u8).
FRAME_HEADER = struct.Struct(">IB")

#: Request message types.
REQUEST_TYPES = ("HELLO", "AUTH", "SUBMIT", "SUBMIT_MANY")

#: Response message types.
RESPONSE_TYPES = ("RESULT", "RETRY", "ERROR")

#: Numeric error codes carried by ERROR bodies, keyed by symbol.
ERROR_CODES = {
    "BAD_FRAME": 100,
    "FRAME_TOO_LARGE": 101,
    "BAD_MESSAGE": 102,
    "UNSUPPORTED_VERSION": 103,
    "AUTH_REQUIRED": 200,
    "AUTH_FAILED": 201,
    "SHUTTING_DOWN": 300,
    "INTERNAL": 400,
}

#: Domain tag signed during the HELLO/AUTH handshake (see
#: :func:`auth_payload`); versioned independently of the protocol so a
#: signature for one purpose can never be replayed for another.
AUTH_PURPOSE = "prever-serve-auth-v1"


class ServeError(PReVerError):
    """Base class for serving-tier errors."""


class FrameError(ServeError):
    """A frame violated the wire format; the connection must close.

    ``symbol`` is the :data:`ERROR_CODES` key the peer should be told
    (when the stream is still writable at all).
    """

    def __init__(self, symbol: str, message: str):
        self.symbol = symbol
        self.code = ERROR_CODES[symbol]
        super().__init__(message)


class MessageError(ServeError):
    """A well-framed payload carried an invalid message.

    Unlike :class:`FrameError` the stream itself is still in sync, so
    the server answers with an ERROR response instead of dropping the
    connection (except during the handshake, where it does both).
    """

    def __init__(self, symbol: str, message: str):
        self.symbol = symbol
        self.code = ERROR_CODES[symbol]
        super().__init__(message)


# -- framing ----------------------------------------------------------------


def encode_message(message: Dict[str, Any]) -> bytes:
    """Canonical JSON payload bytes for one message (codec 0x01)."""
    return encode_canonical_bytes(message)


def encode_frame(message: Dict[str, Any], codec: int = CODEC_JSON) -> bytes:
    """Serialize one message to its full on-wire frame.

    Canonical JSON makes this deterministic: one message has exactly
    one frame encoding, which is what lets ``docs/PROTOCOL.md`` pin
    frames byte-for-byte.
    """
    if codec != CODEC_JSON:
        raise FrameError("BAD_FRAME", f"unsupported codec 0x{codec:02x}")
    payload = encode_message(message)
    return FRAME_HEADER.pack(len(payload), codec) + payload


def decode_header(header: bytes,
                  max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
                  ) -> Tuple[int, int]:
    """Validate a 5-byte frame header; returns ``(length, codec)``.

    Oversized and empty frames are rejected here, before any payload
    byte is read — admission control must not require buffering the
    offending frame first.
    """
    if len(header) != FRAME_HEADER.size:
        raise FrameError("BAD_FRAME",
                         f"torn frame header ({len(header)} bytes)")
    length, codec = FRAME_HEADER.unpack(header)
    if length == 0:
        raise FrameError("BAD_FRAME", "zero-length frame")
    if length > max_frame_bytes:
        raise FrameError(
            "FRAME_TOO_LARGE",
            f"declared payload of {length} bytes exceeds the "
            f"{max_frame_bytes}-byte cap",
        )
    if codec != CODEC_JSON:
        raise FrameError("BAD_FRAME", f"unsupported codec 0x{codec:02x}")
    return length, codec


def decode_payload(codec: int, payload: bytes) -> Dict[str, Any]:
    """Decode and shape-check one frame payload into a message dict."""
    if codec != CODEC_JSON:
        raise FrameError("BAD_FRAME", f"unsupported codec 0x{codec:02x}")
    try:
        message = from_canonical_json(payload.decode("utf-8"))
    except (SerializationError, UnicodeDecodeError) as exc:
        raise FrameError("BAD_FRAME", f"undecodable payload: {exc}") from exc
    return validate_message(message)


def validate_message(message: Any) -> Dict[str, Any]:
    """Check the four-key message envelope; returns the message.

    Raises :class:`MessageError` with ``UNSUPPORTED_VERSION`` for a
    version this implementation does not speak and ``BAD_MESSAGE`` for
    every other envelope violation.  Unknown *body* keys are explicitly
    legal (the additive-evolution rule); unknown envelope keys are not.
    """
    if not isinstance(message, dict):
        raise MessageError("BAD_MESSAGE", "message is not a JSON object")
    extra = set(message) - {"v", "type", "id", "body"}
    if extra or set(message) != {"v", "type", "id", "body"}:
        raise MessageError(
            "BAD_MESSAGE",
            f"message must have exactly the keys v/type/id/body, "
            f"got {sorted(message)}",
        )
    if message["v"] != PROTOCOL_VERSION:
        raise MessageError(
            "UNSUPPORTED_VERSION",
            f"protocol version {message['v']!r} not supported "
            f"(this side speaks {PROTOCOL_VERSION})",
        )
    if message["type"] not in REQUEST_TYPES + RESPONSE_TYPES:
        raise MessageError("BAD_MESSAGE",
                           f"unknown message type {message['type']!r}")
    if not isinstance(message["id"], int) or isinstance(message["id"], bool) \
            or message["id"] < 0:
        raise MessageError("BAD_MESSAGE",
                           f"id must be a non-negative int, "
                           f"got {message['id']!r}")
    if not isinstance(message["body"], dict):
        raise MessageError("BAD_MESSAGE", "body must be a JSON object")
    return message


def make_message(msg_type: str, msg_id: int,
                 body: Dict[str, Any]) -> Dict[str, Any]:
    """Build one v1 message envelope."""
    return {"v": PROTOCOL_VERSION, "type": msg_type, "id": msg_id,
            "body": body}


def error_body(symbol: str, message: str) -> Dict[str, Any]:
    """The ERROR response body for one :data:`ERROR_CODES` symbol."""
    return {"code": ERROR_CODES[symbol], "error": symbol,
            "message": message}


async def read_frame(reader: asyncio.StreamReader,
                     max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
                     ) -> Optional[Dict[str, Any]]:
    """Read and decode one frame from an asyncio stream.

    Returns ``None`` on a clean EOF at a frame boundary.  A torn frame
    (EOF mid-header or mid-payload) and every other framing violation
    raise :class:`FrameError` — the caller must close the connection.
    """
    try:
        header = await reader.readexactly(FRAME_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError(
            "BAD_FRAME",
            f"torn frame header ({len(exc.partial)} of "
            f"{FRAME_HEADER.size} bytes)") from exc
    length, codec = decode_header(header, max_frame_bytes)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError(
            "BAD_FRAME",
            f"torn frame payload ({len(exc.partial)} of {length} bytes)",
        ) from exc
    return decode_payload(codec, payload)


# -- the authenticated-session handshake ------------------------------------


def auth_payload(producer: str, challenge: str) -> Dict[str, Any]:
    """The structured value a producer signs to open a session.

    Binding the producer name and the purpose tag into the signed value
    (not just the server's random challenge) stops a signature from
    being replayed for a different producer or a different protocol.
    """
    return {"challenge": challenge, "producer": producer,
            "purpose": AUTH_PURPOSE}


def auth_bytes(producer: str, challenge: str) -> bytes:
    """Canonical signing bytes for the HELLO/AUTH handshake."""
    return canonical_bytes(auth_payload(producer, challenge))


# -- updates and results on the wire ----------------------------------------


def signature_to_wire(signature) -> Optional[Dict[str, int]]:
    """A Schnorr signature as its wire dict (``None`` passes through)."""
    if signature is None:
        return None
    return {"R": signature.commitment, "s": signature.response}


def signature_from_wire(doc) -> Optional[object]:
    """Rebuild a :class:`~repro.crypto.signatures.SchnorrSignature`."""
    if doc is None:
        return None
    from repro.crypto.signatures import SchnorrSignature

    if not (isinstance(doc, dict)
            and isinstance(doc.get("R"), int)
            and isinstance(doc.get("s"), int)):
        raise MessageError("BAD_MESSAGE",
                           f"signature must be {{R: int, s: int}}, "
                           f"got {doc!r}")
    return SchnorrSignature(commitment=doc["R"], response=doc["s"])


def update_to_wire(update: Update) -> Dict[str, Any]:
    """One update as its SUBMIT wire dict.

    Carries every field :meth:`~repro.model.update.Update.body_bytes`
    covers, so a producer-signed update survives the round trip with
    its signature still verifying server-side.
    """
    doc = update.to_wire()
    doc["signature"] = signature_to_wire(update.signature)
    doc["signer_public_key"] = update.signer_public_key
    return doc


_VISIBILITIES = {v.value: v for v in Visibility}


def update_from_wire(doc: Any) -> Update:
    """Rebuild an :class:`~repro.model.update.Update` from its wire dict.

    Every field is validated — the server constructs pipeline inputs
    from untrusted bytes here, and a malformed update must become a
    ``BAD_MESSAGE`` response, never an internal error mid-batch.
    """
    if not isinstance(doc, dict):
        raise MessageError("BAD_MESSAGE", "update must be a JSON object")

    def _field(name, types, allow_none=False):
        value = doc.get(name)
        if value is None and allow_none:
            return None
        if not isinstance(value, types) or isinstance(value, bool):
            raise MessageError(
                "BAD_MESSAGE",
                f"update field {name!r} has invalid value {value!r}")
        return value

    table = _field("table", str)
    try:
        operation = Update.operation_from_wire(doc.get("operation"))
    except ValueError as exc:
        raise MessageError("BAD_MESSAGE", str(exc)) from None
    payload = _field("payload", dict)
    key = _field("key", list, allow_none=True)
    visibility = doc.get("visibility", Visibility.PRIVATE.value)
    if visibility not in _VISIBILITIES:
        raise MessageError("BAD_MESSAGE",
                           f"unknown visibility {visibility!r}")
    for name in ("producers", "managers"):
        values = doc.get(name, [])
        if not (isinstance(values, list)
                and all(isinstance(v, str) for v in values)):
            raise MessageError(
                "BAD_MESSAGE",
                f"update field {name!r} must be a list of strings")
    update_id = _field("update_id", str)
    return Update(
        table=table,
        operation=operation,
        payload=payload,
        key=tuple(key) if key is not None else None,
        visibility=_VISIBILITIES[visibility],
        producers=list(doc.get("producers", [])),
        managers=list(doc.get("managers", [])),
        update_id=update_id,
        signature=signature_from_wire(doc.get("signature")),
        signer_public_key=_field("signer_public_key", int, allow_none=True),
    )


def result_to_wire(result: UpdateResult) -> Dict[str, Any]:
    """One pipeline outcome as its RESULT wire dict."""
    return {
        "update_id": result.update.update_id,
        "accepted": result.outcome.accepted,
        "applied": result.applied,
        "status": result.update.status.value,
        "ledger_sequence": result.ledger_sequence,
        "engine": result.outcome.engine,
        "failed_constraint": result.outcome.failed_constraint,
        "rejection_reason": result.update.rejection_reason,
        "trace_id": result.trace_id,
        "shard": result.shard,
    }


@dataclass(frozen=True)
class ServeResult:
    """The client-side view of one served decision.

    The same decision fields :class:`~repro.core.outcome.UpdateResult`
    carries, minus server-side objects — everything a client needs to
    react to the decision and later fetch the ``/trace`` trail.
    """

    update_id: str
    accepted: bool
    applied: bool
    status: str
    ledger_sequence: Optional[int]
    engine: str
    failed_constraint: Optional[str]
    rejection_reason: Optional[str]
    trace_id: Optional[str]
    shard: Optional[str]


_RESULT_FIELDS = ("update_id", "accepted", "applied", "status",
                  "ledger_sequence", "engine", "failed_constraint",
                  "rejection_reason", "trace_id", "shard")


def result_from_wire(doc: Any) -> ServeResult:
    """Rebuild a :class:`ServeResult` from a RESULT body entry."""
    if not isinstance(doc, dict):
        raise MessageError("BAD_MESSAGE", "result must be a JSON object")
    missing = [name for name in _RESULT_FIELDS if name not in doc]
    if missing:
        raise MessageError("BAD_MESSAGE",
                           f"result missing fields {missing}")
    return ServeResult(**{name: doc[name] for name in _RESULT_FIELDS})


def results_from_wire(docs: Any) -> List[ServeResult]:
    """Rebuild the RESULT body of a SUBMIT_MANY response."""
    if not isinstance(docs, list):
        raise MessageError("BAD_MESSAGE", "results must be a JSON array")
    return [result_from_wire(doc) for doc in docs]
