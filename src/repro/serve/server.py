"""The asyncio serving front door: sessions, admission, dispatch.

:class:`PReVerServer` wraps one framework (a
:class:`~repro.core.framework.PReVer` or
:class:`~repro.core.sharded.ShardedPReVer`) in the wire protocol of
:mod:`repro.serve.protocol`:

* **Connections** speak length-prefixed frames; every framing violation
  (torn, oversized, garbage) fails closed — an ERROR frame when the
  stream is still coherent enough to carry one, then the connection
  drops.
* **Sessions** authenticate per producer with a HELLO → challenge →
  AUTH handshake over the producer's existing Schnorr key; with
  ``require_auth`` (the default) no update is accepted from an
  unauthenticated session.  An optional ``producers`` allowlist pins
  each producer name to its registered public key.
* **Admission** is bounded: requests that would push the ingress queue
  past ``queue_limit`` pending updates get an explicit RETRY response —
  never an unbounded queue, never a silent drop.
* **Batching** delegates to
  :class:`~repro.serve.scheduler.BatchingScheduler`, which coalesces
  concurrent requests into ``submit_many`` / ``submit_pipelined`` runs
  on one pipeline thread, in admission order — so the served decision
  stream and anchored roots are identical to the in-process path.
* **Shutdown** (:meth:`PReVerServer.stop`) is a drain, not an abort:
  the listener closes, late submits answer SHUTTING_DOWN, every
  admitted batch completes and its responses flush before connections
  close.

``server.*`` counters/timers/gauges land on the framework's own
metrics registry, so the existing ops endpoint
(:mod:`repro.obs.server`) exposes the serving tier with zero new
wiring.  For non-async callers, :class:`ServerThread` runs the whole
event loop on a daemon thread (``PReVer.serve()`` returns one).
"""

import asyncio
import secrets
import threading
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.crypto.group import SchnorrGroup
from repro.crypto.signatures import cached_verifier
from repro.serve import protocol
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameError,
    MessageError,
    ServeError,
    auth_bytes,
    error_body,
    make_message,
)
from repro.serve.scheduler import BatchingScheduler, ServeSchedulerStopped


@dataclass(frozen=True)
class ServeConfig:
    """Tunables for one serving instance.

    ``batch_window`` / ``max_batch`` bound the coalescing window (and,
    with WAL durability, the group-commit window); ``queue_limit``
    bounds admitted-but-unfinished updates (the RETRY threshold);
    ``producers`` optionally pins producer names to their Schnorr
    public keys; ``require_auth=False`` downgrades to an open endpoint
    (benchmark rigs only — the default refuses unauthenticated
    submits).
    """

    host: str = "127.0.0.1"
    port: int = 0
    batch_window: float = 0.005
    max_batch: int = 256
    queue_limit: int = 1024
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    require_auth: bool = True
    producers: Optional[Dict[str, int]] = None
    retry_after_ms: int = 25


class Session:
    """Per-connection authentication state and counters."""

    __slots__ = ("session_id", "producer", "public_key", "challenge",
                 "authenticated", "submitted")

    def __init__(self):
        self.session_id = secrets.token_hex(8)
        self.producer: Optional[str] = None
        self.public_key: Optional[int] = None
        self.challenge: Optional[str] = None
        self.authenticated = False
        self.submitted = 0


class PReVerServer:
    """One framework behind the wire protocol; asyncio-native.

    Use ``await server.start()`` inside a running loop (tests, the
    bench, the demo) or :class:`ServerThread` / ``PReVer.serve()``
    from synchronous code.
    """

    def __init__(self, target, config: Optional[ServeConfig] = None,
                 **overrides):
        self.target = target
        self.config = replace(config or ServeConfig(), **overrides)
        self.metrics = target.metrics
        self.tracer = getattr(target, "tracer", None)
        self.scheduler = BatchingScheduler(
            target,
            batch_window=self.config.batch_window,
            max_batch=self.config.max_batch,
            queue_limit=self.config.queue_limit,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._draining = False
        self._conn_tasks: set = set()
        self._response_tasks: set = set()
        self._ctr_connections = self.metrics.counter("server.connections")
        self._ctr_sessions = self.metrics.counter("server.sessions")
        self._ctr_auth_failures = self.metrics.counter(
            "server.auth_failures")
        self._ctr_requests = self.metrics.counter("server.requests")
        self._ctr_updates = self.metrics.counter("server.updates")
        self._ctr_retries = self.metrics.counter("server.retries")
        self._ctr_errors = self.metrics.counter("server.errors")
        self._ctr_frame_errors = self.metrics.counter("server.frame_errors")

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "PReVerServer":
        """Bind the listener and start the batching scheduler."""
        if self._server is not None:
            return self
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolves here)."""
        sockets = self._server.sockets
        return sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        """Graceful drain: stop admitting, finish everything admitted.

        Ordering: close the listener (no new connections), mark
        draining (new SUBMITs answer SHUTTING_DOWN), drain the
        scheduler (every admitted batch runs and its responses are
        written), then close the remaining connections and the
        pipeline thread.
        """
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._draining = True
        await self.scheduler.drain()
        if self._response_tasks:  # flush every in-flight response write
            await asyncio.gather(*list(self._response_tasks),
                                 return_exceptions=True)
        await self.scheduler.stop()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._server = None

    # -- connection handling ----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """Reader loop for one connection; every exit closes it."""
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._ctr_connections.add()
        session = Session()
        write_lock = asyncio.Lock()
        try:
            while True:
                try:
                    message = await protocol.read_frame(
                        reader, self.config.max_frame_bytes)
                except (FrameError, MessageError) as exc:
                    # Fail closed: a torn/oversized/garbage frame or a
                    # broken envelope (wrong version, bad keys) gets one
                    # best-effort ERROR — the stream may already be
                    # gone — and then the link drops.
                    self._ctr_frame_errors.add()
                    await self._send(
                        writer, write_lock,
                        make_message("ERROR", 0,
                                     error_body(exc.symbol, str(exc))))
                    break
                if message is None:  # clean EOF
                    break
                close = await self._dispatch(session, message, writer,
                                             write_lock)
                if close:
                    break  # failed handshake: the connection is done
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _send(self, writer, write_lock, message) -> None:
        """Write one response frame (serialized per connection)."""
        try:
            async with write_lock:
                writer.write(protocol.encode_frame(message))
                await writer.drain()
        except ConnectionError:
            pass  # peer went away; its results are still anchored

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(self, session: Session, message: dict,
                        writer, write_lock) -> bool:
        """Route one validated message; returns True to drop the link."""
        msg_type = message["type"]
        msg_id = message["id"]
        body = message["body"]
        self._ctr_requests.add()
        close = False
        try:
            if msg_type == "HELLO":
                response = self._handle_hello(session, body)
            elif msg_type == "AUTH":
                response = self._handle_auth(session, body)
            elif msg_type in ("SUBMIT", "SUBMIT_MANY"):
                await self._handle_submit(session, msg_type, msg_id, body,
                                          writer, write_lock)
                return False
            else:  # a response type sent by a confused client
                raise MessageError(
                    "BAD_MESSAGE",
                    f"{msg_type} is a response type; clients send "
                    f"{list(protocol.REQUEST_TYPES)}")
        except MessageError as exc:
            self._ctr_errors.add()
            if exc.symbol == "AUTH_FAILED":
                self._ctr_auth_failures.add()
                close = True  # a failed handshake forfeits the connection
            response = make_message("ERROR", msg_id,
                                    error_body(exc.symbol, str(exc)))
        except Exception as exc:  # surface, never kill the reader loop
            self._ctr_errors.add()
            response = make_message(
                "ERROR", msg_id, error_body("INTERNAL", repr(exc)))
        else:
            response = make_message("RESULT", msg_id, response)
        await self._send(writer, write_lock, response)
        return close

    def _handle_hello(self, session: Session, body: dict) -> dict:
        """HELLO: version/identity checks, then issue the challenge."""
        if body.get("version") != protocol.PROTOCOL_VERSION:
            raise MessageError(
                "UNSUPPORTED_VERSION",
                f"client protocol version {body.get('version')!r}; "
                f"server speaks {protocol.PROTOCOL_VERSION}")
        producer = body.get("producer")
        public_key = body.get("public_key")
        if not isinstance(producer, str) or not producer:
            raise MessageError("BAD_MESSAGE",
                               "HELLO needs a non-empty producer name")
        if not isinstance(public_key, int) or isinstance(public_key, bool):
            raise MessageError("BAD_MESSAGE",
                               "HELLO needs an integer public_key")
        allowed = self.config.producers
        if allowed is not None and allowed.get(producer) != public_key:
            raise MessageError(
                "AUTH_FAILED",
                f"producer {producer!r} is not registered with that key")
        session.producer = producer
        session.public_key = public_key
        session.challenge = secrets.token_hex(16)
        session.authenticated = False
        return {
            "challenge": session.challenge,
            "protocol": protocol.PROTOCOL_VERSION,
            "server": "prever-serve/1",
            "session": session.session_id,
        }

    def _handle_auth(self, session: Session, body: dict) -> dict:
        """AUTH: verify the Schnorr signature over the challenge."""
        if session.challenge is None or session.producer is None:
            raise MessageError("BAD_MESSAGE", "AUTH before HELLO")
        signature = protocol.signature_from_wire(body.get("signature"))
        if signature is None:
            raise MessageError("BAD_MESSAGE", "AUTH needs a signature")
        verifier = cached_verifier(SchnorrGroup.default(),
                                   session.public_key)
        signed = auth_bytes(session.producer, session.challenge)
        challenge, session.challenge = session.challenge, None
        if not verifier.verify(signed, signature):
            session.producer = None
            raise MessageError(
                "AUTH_FAILED",
                f"challenge {challenge[:8]}… signature did not verify")
        session.authenticated = True
        self._ctr_sessions.add()
        self.metrics.counter(
            f"server.producer.{session.producer}.sessions").add()
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.event("server.session",
                              producer=session.producer,
                              session=session.session_id)
        return {"authenticated": True, "session": session.session_id}

    async def _handle_submit(self, session: Session, msg_type: str,
                             msg_id: int, body: dict,
                             writer, write_lock) -> None:
        """SUBMIT / SUBMIT_MANY: admit, await the batch, respond."""
        if self.config.require_auth and not session.authenticated:
            raise MessageError(
                "AUTH_REQUIRED",
                "submit on an unauthenticated session (HELLO/AUTH first)")
        if msg_type == "SUBMIT":
            docs = [body.get("update")]
        else:
            docs = body.get("updates")
            if not isinstance(docs, list) or not docs:
                raise MessageError(
                    "BAD_MESSAGE",
                    "SUBMIT_MANY needs a non-empty updates array")
        updates = [protocol.update_from_wire(doc) for doc in docs]
        if self._draining:
            raise MessageError("SHUTTING_DOWN",
                               "server is draining; resubmit elsewhere")
        try:
            future = self.scheduler.try_submit(updates)
        except ServeSchedulerStopped:
            raise MessageError("SHUTTING_DOWN",
                               "server is draining; resubmit elsewhere")
        if future is None:
            self._ctr_retries.add()
            await self._send(writer, write_lock, make_message(
                "RETRY", msg_id, {
                    "queue_depth": self.scheduler.pending_updates,
                    "retry_after_ms": self.config.retry_after_ms,
                }))
            return
        self._ctr_updates.add(len(updates))
        session.submitted += len(updates)
        if session.producer is not None:
            self.metrics.counter(
                f"server.producer.{session.producer}.updates"
            ).add(len(updates))
        # Respond from a separate task: the reader loop keeps pulling
        # frames while the batch runs, which is what lets one
        # connection pipeline requests (and what the coalescing window
        # feeds on).
        task = asyncio.get_running_loop().create_task(
            self._respond_when_done(future, msg_type, msg_id, writer,
                                    write_lock))
        self._response_tasks.add(task)
        task.add_done_callback(self._response_tasks.discard)

    async def _respond_when_done(self, future, msg_type: str, msg_id: int,
                                 writer, write_lock) -> None:
        """Await one admitted request's batch and write its response."""
        try:
            results = await future
        except Exception as exc:
            self._ctr_errors.add()
            await self._send(writer, write_lock, make_message(
                "ERROR", msg_id, error_body("INTERNAL", repr(exc))))
            return
        wire = [protocol.result_to_wire(result) for result in results]
        if msg_type == "SUBMIT":
            response_body = {"result": wire[0]}
        else:
            response_body = {"results": wire}
        await self._send(writer, write_lock,
                         make_message("RESULT", msg_id, response_body))


class ServerThread:
    """A :class:`PReVerServer` on its own daemon thread and event loop.

    The synchronous front door: ``PReVer.serve()`` builds one so
    notebooks, WSGI apps, and the ops runbook's one-liner can serve
    without owning an asyncio loop.  :meth:`close` performs the same
    graceful drain as :meth:`PReVerServer.stop`.
    """

    def __init__(self, target, config: Optional[ServeConfig] = None,
                 **overrides):
        self._target = target
        self._config = config
        self._overrides = overrides
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self.address: Optional[Tuple[str, int]] = None
        self._thread = threading.Thread(
            target=self._run, name="prever-serve", daemon=True)

    def start(self) -> "ServerThread":
        """Start serving; blocks until the listener is bound."""
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise ServeError(
                f"serving tier failed to start: {self._startup_error!r}"
            ) from self._startup_error
        return self

    def url(self) -> str:
        """``host:port`` string of the bound listener."""
        host, port = self.address
        return f"{host}:{port}"

    def close(self) -> None:
        """Drain and stop the server, then join the thread (idempotent)."""
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=30.0)
        self._loop = None

    def __enter__(self) -> "ServerThread":
        return self.start() if not self._thread.is_alive() else self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def _run(self) -> None:
        """Thread body: one event loop running the server until closed."""
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # startup failures surface in start()
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()
            else:
                raise

    async def _main(self) -> None:
        server = PReVerServer(self._target, self._config, **self._overrides)
        try:
            await server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._stop_event = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        self.address = server.address
        self._ready.set()
        await self._stop_event.wait()
        await server.stop()
