"""The async client SDK for the PReVer serving tier.

One :class:`ServeClient` owns one connection and reuses it for its
whole lifetime: a background reader task correlates responses to
requests by message id, so any number of requests can be **in flight
simultaneously** on the same socket (pipelining) — the server's
coalescing window feeds on exactly this.

Authentication is the HELLO → challenge → AUTH handshake from
``docs/PROTOCOL.md``, driven by any
:class:`~repro.model.participants.Participant` with a Schnorr signing
key (a :class:`~repro.model.participants.DataProducer` in the common
case).  Backpressure surfaces as either an automatic retry (pass
``retries=``) or a :class:`ServerBusy` exception carrying the server's
``retry_after_ms`` hint — the client never spins on a saturated
server.

Typical use::

    async with await ServeClient.connect(host, port, producer=alice) as c:
        result = await c.submit(update, retries=8)
        assert result.accepted
"""

import asyncio
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.model.update import Update
from repro.serve import protocol
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameError,
    MessageError,
    ServeError,
    ServeResult,
    auth_bytes,
    make_message,
)


class RequestError(ServeError):
    """The server answered a request with an ERROR message."""

    def __init__(self, code: int, symbol: str, message: str):
        self.code = code
        self.symbol = symbol
        super().__init__(f"{symbol} ({code}): {message}")


class ServerBusy(ServeError):
    """Backpressure: the server answered RETRY and retries ran out."""

    def __init__(self, retry_after_ms: int, queue_depth: int):
        self.retry_after_ms = retry_after_ms
        self.queue_depth = queue_depth
        super().__init__(
            f"server busy (queue depth {queue_depth}); "
            f"retry after {retry_after_ms}ms")


class ConnectionClosed(ServeError):
    """The connection died with requests still awaiting responses."""


class ServeClient:
    """One authenticated, pipelined connection to a serving instance."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES):
        self._reader = reader
        self._writer = writer
        self._max_frame_bytes = max_frame_bytes
        self._next_id = 1
        self._pending: Dict[int, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()
        self._closed = False
        self.session_id: Optional[str] = None
        self.producer_name: Optional[str] = None
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(), name="prever-serve-client-reader")

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    async def connect(cls, host: str, port: int, *, producer=None,
                      max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
                      ) -> "ServeClient":
        """Open a connection; with ``producer``, authenticate it too.

        ``producer`` is a keyed participant (its ``name``,
        ``public_key``, and ``sign`` drive the handshake).  Without
        one the connection stays unauthenticated — useful only against
        ``require_auth=False`` servers.
        """
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, max_frame_bytes=max_frame_bytes)
        if producer is not None:
            try:
                await client.authenticate(producer)
            except BaseException:
                await client.close()
                raise
        return client

    async def close(self) -> None:
        """Close the connection and fail anything still pending."""
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass
        self._fail_pending(ConnectionClosed("client closed"))

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc) -> bool:
        await self.close()
        return False

    # -- the handshake -----------------------------------------------------

    async def authenticate(self, producer) -> str:
        """Run HELLO → challenge → AUTH; returns the session id."""
        msg_type, body = await self.request("HELLO", {
            "producer": producer.name,
            "public_key": producer.public_key,
            "version": protocol.PROTOCOL_VERSION,
        })
        challenge = body["challenge"]
        signature = producer.sign(auth_bytes(producer.name, challenge))
        msg_type, body = await self.request("AUTH", {
            "signature": protocol.signature_to_wire(signature),
        })
        self.session_id = body["session"]
        self.producer_name = producer.name
        return self.session_id

    # -- requests ----------------------------------------------------------

    async def request(self, msg_type: str, body: Dict[str, Any]
                      ) -> Tuple[str, Dict[str, Any]]:
        """Send one request; returns ``(response_type, body)``.

        ERROR responses raise :class:`RequestError`; RETRY responses
        are returned to the caller (``submit`` turns them into backoff
        or :class:`ServerBusy`).
        """
        if self._closed:
            raise ConnectionClosed("client is closed")
        msg_id = self._next_id
        self._next_id += 1
        future = asyncio.get_running_loop().create_future()
        self._pending[msg_id] = future
        frame = protocol.encode_frame(make_message(msg_type, msg_id, body))
        try:
            async with self._write_lock:
                self._writer.write(frame)
                await self._writer.drain()
        except ConnectionError as exc:
            self._pending.pop(msg_id, None)
            raise ConnectionClosed(f"send failed: {exc}") from exc
        response = await future
        if response["type"] == "ERROR":
            err = response["body"]
            raise RequestError(err.get("code", 0),
                               err.get("error", "INTERNAL"),
                               err.get("message", ""))
        return response["type"], response["body"]

    async def submit(self, update: Update, *, retries: int = 0,
                     ) -> ServeResult:
        """Submit one update; returns its served decision.

        ``retries`` bounds automatic backoff on RETRY responses; when
        they run out, :class:`ServerBusy` carries the server's hint.
        """
        results = await self.submit_many([update], retries=retries)
        return results[0]

    async def submit_many(self, updates: Sequence[Update], *,
                          retries: int = 0) -> List[ServeResult]:
        """Submit a batch of updates; returns served decisions in order."""
        updates = list(updates)
        if not updates:
            return []
        if len(updates) == 1:
            msg_type = "SUBMIT"
            body = {"update": protocol.update_to_wire(updates[0])}
        else:
            msg_type = "SUBMIT_MANY"
            body = {"updates": [protocol.update_to_wire(u)
                                for u in updates]}
        attempt = 0
        while True:
            response_type, response = await self.request(msg_type, body)
            if response_type == "RESULT":
                if msg_type == "SUBMIT":
                    return [protocol.result_from_wire(response["result"])]
                return protocol.results_from_wire(response["results"])
            if response_type != "RETRY":
                raise MessageError(
                    "BAD_MESSAGE",
                    f"unexpected response type {response_type!r}")
            retry_after_ms = response.get("retry_after_ms", 25)
            if attempt >= retries:
                raise ServerBusy(retry_after_ms,
                                 response.get("queue_depth", -1))
            attempt += 1
            await asyncio.sleep(retry_after_ms / 1000.0)

    # -- the reader task ---------------------------------------------------

    async def _read_loop(self) -> None:
        """Correlate every inbound response to its pending request."""
        try:
            while True:
                message = await protocol.read_frame(self._reader,
                                                    self._max_frame_bytes)
                if message is None:
                    self._fail_pending(
                        ConnectionClosed("server closed the connection"))
                    return
                future = self._pending.pop(message["id"], None)
                if future is not None and not future.done():
                    future.set_result(message)
                # Unsolicited ids are dropped: correlation is by id and
                # a response to a request we never made proves nothing.
        except (FrameError, MessageError, ConnectionError,
                asyncio.IncompleteReadError) as exc:
            self._fail_pending(ConnectionClosed(f"connection lost: {exc!r}"))
        except asyncio.CancelledError:
            raise

    def _fail_pending(self, exc: Exception) -> None:
        """Fail every outstanding request with ``exc``."""
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)
