"""Qanaat-style confidential multi-enterprise collaborations.

Qanaat (cited by the paper as the fix for Fabric's confidentiality
overhead) lets *every subset* of enterprises form a confidential
collaboration: data within a collaboration is replicated only to its
members, while a global hash anchor chain preserves integrity across
collaborations.  PReVer leverages exactly two properties, both
implemented here:

* **confidentiality** — an enterprise outside a collaboration can never
  read its records (enforced, tested);
* **verifiability** — any enterprise can verify that a collaboration's
  history it *is* allowed to see matches the global anchors.

Each collaboration keeps an internal :class:`CentralLedger`; after
every append, the collaboration's latest digest is anchored onto a
shared integrity chain (a public ledger of (collaboration, digest)
pairs), so members can detect fork/rollback by comparing against the
anchor trail without revealing contents to outsiders.
"""

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set

from repro.common.errors import IntegrityError, PrivacyError
from repro.ledger.central import CentralLedger, LedgerDigest


@dataclass
class Collaboration:
    """A confidential data collection shared by a set of enterprises."""

    name: str
    members: FrozenSet[str]
    ledger: CentralLedger

    def involves(self, enterprise: str) -> bool:
        return enterprise in self.members


class QanaatNetwork:
    """Enterprises + collaborations + the shared anchor chain."""

    def __init__(self, enterprises: Set[str]):
        self.enterprises = set(enterprises)
        self._collaborations: Dict[str, Collaboration] = {}
        self.anchor_chain = CentralLedger(name="qanaat-anchors")

    # -- collaboration management ------------------------------------------

    def form_collaboration(self, name: str, members: Set[str]) -> Collaboration:
        unknown = set(members) - self.enterprises
        if unknown:
            raise IntegrityError(f"unknown enterprises {sorted(unknown)}")
        if name in self._collaborations:
            raise IntegrityError(f"collaboration {name!r} already exists")
        collaboration = Collaboration(
            name=name,
            members=frozenset(members),
            ledger=CentralLedger(name=f"collab-{name}"),
        )
        self._collaborations[name] = collaboration
        return collaboration

    def collaboration(self, name: str) -> Collaboration:
        try:
            return self._collaborations[name]
        except KeyError:
            raise IntegrityError(f"no collaboration {name!r}") from None

    # -- writes ----------------------------------------------------------------

    def append(self, enterprise: str, collaboration_name: str, record: Any) -> None:
        collaboration = self.collaboration(collaboration_name)
        if not collaboration.involves(enterprise):
            raise PrivacyError(
                f"{enterprise!r} is not a member of {collaboration_name!r}"
            )
        collaboration.ledger.append(record)
        digest = collaboration.ledger.digest()
        self.anchor_chain.append(
            {
                "collaboration": collaboration_name,
                "size": digest.size,
                "root": digest.root,
            }
        )

    # -- reads ------------------------------------------------------------------

    def read(self, enterprise: str, collaboration_name: str) -> List[Any]:
        collaboration = self.collaboration(collaboration_name)
        if not collaboration.involves(enterprise):
            raise PrivacyError(
                f"{enterprise!r} may not read {collaboration_name!r}"
            )
        return [entry.payload for entry in collaboration.ledger.entries()]

    def visible_collaborations(self, enterprise: str) -> List[str]:
        return sorted(
            name
            for name, collab in self._collaborations.items()
            if collab.involves(enterprise)
        )

    # -- integrity -----------------------------------------------------------------

    def latest_anchor(self, collaboration_name: str) -> Optional[LedgerDigest]:
        latest = None
        for entry in self.anchor_chain.entries():
            if entry.payload["collaboration"] == collaboration_name:
                latest = LedgerDigest(
                    size=entry.payload["size"], root=entry.payload["root"]
                )
        return latest

    def verify_collaboration(self, enterprise: str, collaboration_name: str) -> bool:
        """A member checks its collaboration's ledger against the last
        public anchor — catches rollback/fork by a dishonest member."""
        collaboration = self.collaboration(collaboration_name)
        if not collaboration.involves(enterprise):
            raise PrivacyError(
                f"{enterprise!r} may not verify {collaboration_name!r}"
            )
        anchor = self.latest_anchor(collaboration_name)
        if anchor is None:
            return len(collaboration.ledger) == 0
        if anchor.size > len(collaboration.ledger):
            return False  # local copy is behind / rolled back
        return collaboration.ledger.digest(anchor.size).root == anchor.root
