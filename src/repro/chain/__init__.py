"""Permissioned blockchain infrastructure (RC4, federated setting).

* :mod:`repro.chain.blockchain` — a Fabric-style permissioned chain:
  PBFT ordering, blocks with Merkle transaction roots and hash links,
  private data collections (payload hash on-chain, payload off-chain
  replicated only to collection members);
* :mod:`repro.chain.sharper` — SharPer-style sharding: one consensus
  cluster per shard, cross-shard transactions coordinated across the
  involved shards;
* :mod:`repro.chain.qanaat` — Qanaat-style confidential collaborations:
  every subset of enterprises can form a private collaboration whose
  data other enterprises never see, anchored for global integrity.
"""

from repro.chain.blockchain import (
    Block,
    Transaction,
    PermissionedBlockchain,
    PrivateDataCollection,
)
from repro.chain.sharper import ShardedLedger, CrossShardResult
from repro.chain.qanaat import QanaatNetwork, Collaboration

__all__ = [
    "Block",
    "Transaction",
    "PermissionedBlockchain",
    "PrivateDataCollection",
    "ShardedLedger",
    "CrossShardResult",
    "QanaatNetwork",
    "Collaboration",
]
