"""A permissioned blockchain with private data collections.

Architecture (Hyperledger-Fabric-inspired, simplified to the parts
PReVer needs):

* **Transactions** carry a public payload, or — for confidential data —
  only the *hash* of a private payload; the payload itself is
  replicated off-chain to the members of a named
  :class:`PrivateDataCollection` (Fabric's private data collections,
  which the paper cites directly).
* **Ordering** runs through a :class:`repro.consensus.PBFTCluster`;
  decided transactions are batched into blocks.
* **Blocks** hash-link to their predecessor and carry a Merkle root of
  their transactions, so light clients can verify inclusion with an
  O(log n) proof against a block header.
"""

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.common.errors import IntegrityError, PrivacyError
from repro.common.ids import make_id
from repro.common.serialization import canonical_bytes
from repro.consensus.pbft import PBFTCluster
from repro.crypto.hashing import digest_canonical
from repro.crypto.merkle import MerkleTree, verify_inclusion


def _hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class Transaction:
    """One chain transaction.

    Exactly one of ``payload`` (public) or ``private_hash`` (hash of an
    off-chain private payload) carries the content.
    """

    tx_id: str
    channel: str
    payload: Optional[Dict[str, Any]] = None
    private_hash: Optional[str] = None
    collection: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "tx_id": self.tx_id,
            "channel": self.channel,
            "payload": self.payload,
            "private_hash": self.private_hash,
            "collection": self.collection,
        }

    def tx_bytes(self) -> bytes:
        return canonical_bytes(self.to_dict())


@dataclass(frozen=True)
class Block:
    height: int
    prev_hash: str
    tx_root: bytes
    transactions: Sequence[Transaction] = field(default_factory=tuple)

    def header_bytes(self) -> bytes:
        return canonical_bytes(
            {
                "height": self.height,
                "prev_hash": self.prev_hash,
                "tx_root": self.tx_root,
            }
        )

    def block_hash(self) -> str:
        return _hash(self.header_bytes())


class PrivateDataCollection:
    """Off-chain replicated private payloads, member-gated.

    The chain stores only ``sha256(payload)``; members hold the payload
    and can prove it matches the on-chain hash.  Non-members asking for
    the payload get a :class:`PrivacyError` — the test suite checks
    this boundary.
    """

    def __init__(self, name: str, members: Set[str]):
        self.name = name
        self.members = set(members)
        self._store: Dict[str, Dict[str, Any]] = {}

    def put(self, payload: Dict[str, Any]) -> str:
        digest = digest_canonical(payload)
        self._store[digest] = dict(payload)
        return digest

    def get(self, requester: str, digest: str) -> Dict[str, Any]:
        if requester not in self.members:
            raise PrivacyError(
                f"{requester!r} is not a member of collection {self.name!r}"
            )
        try:
            return dict(self._store[digest])
        except KeyError:
            raise IntegrityError(f"no private payload with hash {digest}") from None

    def verify_against_chain(self, digest: str) -> bool:
        payload = self._store.get(digest)
        if payload is None:
            return False
        return digest_canonical(payload) == digest


class PermissionedBlockchain:
    """The chain: PBFT ordering + block assembly + collections."""

    def __init__(
        self,
        channel: str = "main",
        f: int = 1,
        block_size: int = 10,
        cluster: Optional[PBFTCluster] = None,
    ):
        self.channel = channel
        self.block_size = block_size
        self.cluster = cluster or PBFTCluster(f=f, name_prefix=f"{channel}-orderer")
        self.collections: Dict[str, PrivateDataCollection] = {}
        self._blocks: List[Block] = []
        self._pending: List[Transaction] = []
        self._applied = 0  # consumed prefix length of the consensus log

    # -- collections -------------------------------------------------------

    def create_collection(self, name: str, members: Set[str]) -> PrivateDataCollection:
        if name in self.collections:
            raise IntegrityError(f"collection {name!r} already exists")
        collection = PrivateDataCollection(name, members)
        self.collections[name] = collection
        return collection

    # -- submission -----------------------------------------------------------

    def submit_public(self, payload: Dict[str, Any]) -> Transaction:
        tx = Transaction(tx_id=make_id("tx"), channel=self.channel, payload=payload)
        self.cluster.submit(tx.to_dict())
        return tx

    def submit_private(self, collection_name: str, payload: Dict[str, Any]) -> Transaction:
        try:
            collection = self.collections[collection_name]
        except KeyError:
            raise IntegrityError(f"no collection {collection_name!r}") from None
        digest = collection.put(payload)
        tx = Transaction(
            tx_id=make_id("tx"),
            channel=self.channel,
            private_hash=digest,
            collection=collection_name,
        )
        self.cluster.submit(tx.to_dict())
        return tx

    # -- block production ---------------------------------------------------------

    def process(self) -> List[Block]:
        """Run consensus and cut blocks from newly decided transactions."""
        self.cluster.run()
        decided = self.cluster.committed()
        new_blocks: List[Block] = []
        for tx_dict in decided[self._applied:]:
            if "noop" in tx_dict:
                self._applied += 1
                continue
            self._pending.append(
                Transaction(
                    tx_id=tx_dict["tx_id"],
                    channel=tx_dict["channel"],
                    payload=tx_dict["payload"],
                    private_hash=tx_dict["private_hash"],
                    collection=tx_dict["collection"],
                )
            )
            self._applied += 1
            if len(self._pending) >= self.block_size:
                new_blocks.append(self._cut_block())
        return new_blocks

    def flush(self) -> Optional[Block]:
        """Cut a block from any remaining pending transactions."""
        self.process()
        if not self._pending:
            return None
        return self._cut_block()

    def _cut_block(self) -> Block:
        transactions = tuple(self._pending)
        self._pending = []
        tree = MerkleTree([tx.tx_bytes() for tx in transactions])
        block = Block(
            height=len(self._blocks),
            prev_hash=self._blocks[-1].block_hash() if self._blocks else "genesis",
            tx_root=tree.root(),
            transactions=transactions,
        )
        self._blocks.append(block)
        return block

    # -- reading and verification --------------------------------------------------

    @property
    def height(self) -> int:
        return len(self._blocks)

    def block(self, height: int) -> Block:
        return self._blocks[height]

    def verify_chain(self) -> bool:
        """Full structural verification: hash links + Merkle roots."""
        prev = "genesis"
        for block in self._blocks:
            if block.prev_hash != prev:
                return False
            tree = MerkleTree([tx.tx_bytes() for tx in block.transactions])
            if tree.root() != block.tx_root:
                return False
            prev = block.block_hash()
        return True

    def prove_transaction(self, height: int, tx_index: int):
        """(tx, inclusion proof) against the block's tx_root."""
        block = self._blocks[height]
        tree = MerkleTree([tx.tx_bytes() for tx in block.transactions])
        return block.transactions[tx_index], tree.inclusion_proof(tx_index)

    @staticmethod
    def verify_transaction(block: Block, tx: Transaction, proof) -> bool:
        return verify_inclusion(block.tx_root, tx.tx_bytes(), proof)
