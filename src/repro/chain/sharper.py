"""SharPer-style sharded permissioned ledger.

SharPer (SIGMOD'21, cited as PReVer's integrity substrate for Separ)
partitions the nodes into clusters (shards); intra-shard transactions
run consensus only within their shard — so disjoint shards commit in
parallel and throughput scales near-linearly — while cross-shard
transactions run a *flattened* consensus across the union of involved
shards, paying a latency and message penalty.  Bench E10 sweeps the
cross-shard ratio to reproduce that scaling shape.

The simulator models each shard as its own PBFT cluster on a shared
simulated network.  A cross-shard transaction is submitted to every
involved shard, and counts as committed when all involved shards have
ordered it; a deterministic lock on the lexicographically-first shard
avoids conflicting interleavings (the simulator's stand-in for
SharPer's cross-shard ordering rule).
"""

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.common.errors import ProtocolError
from repro.common.ids import make_id
from repro.consensus.pbft import PBFTCluster
from repro.net.simnet import SimNetwork


@dataclass
class CrossShardResult:
    tx_id: str
    shards: List[str]
    submitted_at: float
    committed_at: Optional[float] = None
    shard_results: Optional[list] = None  # per-shard ConsensusResults

    @property
    def latency(self) -> Optional[float]:
        if self.committed_at is None:
            return None
        return self.committed_at - self.submitted_at


class ShardedLedger:
    """A set of PBFT shards with intra- and cross-shard transactions."""

    def __init__(
        self,
        shard_names: Sequence[str],
        f: int = 1,
        network: Optional[SimNetwork] = None,
    ):
        if not shard_names:
            raise ProtocolError("need at least one shard")
        self.network = network or SimNetwork()
        self.shards: Dict[str, PBFTCluster] = {
            name: PBFTCluster(f=f, network=self.network, name_prefix=f"shard-{name}")
            for name in shard_names
        }
        self._intra_results: Dict[str, list] = {name: [] for name in shard_names}
        self._cross_results: List[CrossShardResult] = []

    def submit_intra(self, shard: str, payload: Dict[str, Any]) -> str:
        """An intra-shard transaction: one shard's consensus only."""
        tx_id = make_id("itx")
        cluster = self._shard(shard)
        result = cluster.submit({"tx_id": tx_id, "shard": shard, "payload": payload})
        self._intra_results[shard].append(result)
        return tx_id

    def submit_cross(self, shards: Sequence[str], payload: Dict[str, Any]) -> CrossShardResult:
        """A cross-shard transaction ordered in every involved shard."""
        involved = sorted(set(shards))
        if len(involved) < 2:
            raise ProtocolError("cross-shard transactions need >= 2 shards")
        tx_id = make_id("xtx")
        record = CrossShardResult(
            tx_id=tx_id,
            shards=involved,
            submitted_at=self.network.clock.now(),
        )
        self._cross_results.append(record)
        body = {"tx_id": tx_id, "shards": involved, "payload": payload}
        record.shard_results = [
            self._shard(shard).submit(dict(body, shard=shard))
            for shard in involved
        ]
        return record

    def _shard(self, name: str) -> PBFTCluster:
        try:
            return self.shards[name]
        except KeyError:
            raise ProtocolError(f"no shard {name!r}") from None

    def run(self, until: Optional[float] = None) -> None:
        self.network.run(until=until)
        self._settle_cross()

    def _settle_cross(self) -> None:
        """Mark cross-shard transactions committed once ordered in all
        involved shards; commit time is when the *last* shard decided."""
        for record in self._cross_results:
            if record.committed_at is not None:
                continue
            decided = [r.decided_at for r in record.shard_results]
            if all(d is not None for d in decided):
                record.committed_at = max(decided)

    # -- reporting -------------------------------------------------------

    def shard_stats(self) -> Dict[str, Any]:
        """Per-shard :class:`~repro.consensus.base.ClusterStats` — the
        replication drivers and the federated bench read ordering
        latency per consensus shard from here."""
        return {name: cluster.stats()
                for name, cluster in self.shards.items()}

    def committed_counts(self) -> Dict[str, int]:
        return {
            name: len(cluster.committed()) for name, cluster in self.shards.items()
        }

    def cross_shard_latencies(self) -> List[float]:
        return [
            r.latency for r in self._cross_results if r.latency is not None
        ]

    def throughput(self) -> float:
        """Committed transactions per simulated second, counting each
        cross-shard transaction once."""
        duration = self.network.clock.now()
        if duration <= 0:
            return 0.0
        cross_ids = {r.tx_id for r in self._cross_results}
        total = 0
        for cluster in self.shards.values():
            for entry in cluster.committed():
                if isinstance(entry, dict) and entry.get("tx_id") not in cross_ids:
                    total += 1
        total += sum(1 for r in self._cross_results if r.committed_at is not None)
        return total / duration
