"""The live ops endpoint: scrapeable metrics, probes, and audit trails.

A stdlib :class:`~http.server.ThreadingHTTPServer` wrapped around one
framework (:class:`~repro.core.framework.PReVer` or
:class:`~repro.core.sharded.ShardedPReVer`), serving:

``/metrics``
    Prometheus text exposition of the coordinator registry.  When the
    target exposes ``collect_telemetry()`` (the sharded front-end), the
    scrape first pulls per-shard/per-worker deltas, so worker-side
    counters and spans appear under their labels.
``/metrics.json``
    The versioned JSON schema (:func:`repro.obs.export.metrics_to_json`).
``/healthz``
    Liveness: WAL writability, executor pool liveness, ledger
    reachability — HTTP 200 when every check passes, 503 otherwise.
``/readyz``
    Readiness: everything ``/healthz`` checks plus the ledger-root vs
    last-anchored-root consistency check.
``/trace/<trace_id>``
    One update's full verification trail: its correlated event-log
    records plus the anchored ledger entry, its inclusion proof, and
    the digest the proof verifies against — everything an auditor
    needs to re-verify the decision independently (see
    ``examples/telemetry_demo.py`` for a client-side re-verification).

The server binds ``127.0.0.1`` on an ephemeral port by default; it is
an operator/auditor surface, not a hardened public API.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.obs.export import metrics_to_json, to_prometheus

#: Content type Prometheus scrapers expect for the text format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _json_default(value):
    if isinstance(value, bytes):
        return value.hex()
    return repr(value)


class OpsServer:
    """Ops endpoint for one framework; start with :meth:`start`."""

    def __init__(self, target, host: str = "127.0.0.1", port: int = 0,
                 namespace: Optional[str] = "repro"):
        self.target = target
        self.namespace = namespace
        ops = self

        class _Handler(BaseHTTPRequestHandler):
            """Routes GETs into the owning :class:`OpsServer`."""

            server_version = "prever-obs"

            def do_GET(self):
                """Serve one ops route."""
                status, content_type, body = ops.handle(self.path)
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format, *args):
                """Quiet: probes poll; stderr noise helps nobody."""

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolves here)."""
        return self._httpd.server_address[:2]

    def url(self, path: str = "/") -> str:
        """Absolute URL for ``path`` on this server."""
        host, port = self.address
        return f"http://{host}:{port}{path}"

    def start(self) -> "OpsServer":
        """Serve on a daemon thread (idempotent); returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="prever-obs-server", daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self._httpd.shutdown()
            thread.join(timeout=5.0)
        self._httpd.server_close()

    def __enter__(self) -> "OpsServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- routing -----------------------------------------------------------

    def handle(self, path: str) -> Tuple[int, str, bytes]:
        """Resolve one request path to ``(status, content_type, body)``."""
        path = path.split("?", 1)[0]
        try:
            if path == "/metrics":
                text = to_prometheus(self._registry(),
                                     namespace=self.namespace)
                return 200, PROMETHEUS_CONTENT_TYPE, text.encode("utf-8")
            if path == "/metrics.json":
                return self._json(200, metrics_to_json(self._registry()))
            if path == "/healthz":
                report = self.target.health_report()
                return self._json(200 if report["ok"] else 503, report)
            if path == "/readyz":
                report = self.target.readiness_report()
                return self._json(200 if report["ok"] else 503, report)
            if path.startswith("/trace/"):
                trace_id = path[len("/trace/"):]
                trail = self.target.verification_trail(trace_id)
                if trail is None:
                    return self._json(
                        404, {"error": f"no trail for trace {trace_id!r}"}
                    )
                return self._json(200, trail)
            return self._json(404, {
                "error": f"unknown path {path!r}",
                "routes": ["/metrics", "/metrics.json", "/healthz",
                           "/readyz", "/trace/<trace_id>"],
            })
        except Exception as exc:  # surface, don't kill the serving thread
            return self._json(500, {"error": repr(exc)})

    def _registry(self):
        target = self.target
        collect = getattr(target, "collect_telemetry", None)
        if collect is not None:
            return collect()
        return target.metrics

    @staticmethod
    def _json(status: int, document: dict) -> Tuple[int, str, bytes]:
        body = json.dumps(document, indent=2, sort_keys=True,
                          default=_json_default).encode("utf-8")
        return status, "application/json", body


def start_ops_server(target, host: str = "127.0.0.1",
                     port: int = 0) -> OpsServer:
    """Build and start an :class:`OpsServer` for ``target``; returns
    the running server (``server.address`` has the bound port)."""
    return OpsServer(target, host=host, port=port).start()
