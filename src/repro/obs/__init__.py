"""Observability: tracing, events, exporters, aggregation, ops server.

The pipeline (``repro.core.framework``), the simulated network, both
consensus protocols, the ledger, and the crypto hot paths all accept a
:class:`~repro.obs.tracing.Tracer`.  The default is the shared no-op
tracer :data:`NOOP_TRACER`, which costs one attribute check on the hot
path, so instrumented code runs at full speed unless a recording tracer
is attached.

* :mod:`repro.obs.tracing` — trace/span IDs (deterministic, counter
  based), nested spans with attributes/events/status;
* :mod:`repro.obs.events` — a structured JSONL event log that doubles
  as a span sink, correlating spans, constraint verdicts, rejections,
  and ledger anchors by ``trace_id``;
* :mod:`repro.obs.export` — Prometheus text format and a stable JSON
  schema for :class:`~repro.common.metrics.MetricsRegistry`;
* :mod:`repro.obs.aggregate` — picklable :class:`TelemetryDelta`
  snapshots merging worker-process and shard-child telemetry into the
  coordinator registry;
* :mod:`repro.obs.server` — the live ops endpoint (``/metrics``,
  ``/metrics.json``, ``/healthz``, ``/readyz``, ``/trace/<id>``);
* :mod:`repro.obs.profiler` — the opt-in (``REPRO_PROFILE=wall|cpu``)
  per-stage sampling profiler with collapsed-stack output.
"""

from repro.obs.aggregate import (
    DeltaTracker,
    TelemetryDelta,
    merge_delta,
    worker_metrics,
)
from repro.obs.events import EventLog
from repro.obs.export import (
    METRICS_SCHEMA_VERSION,
    metrics_to_json,
    to_prometheus,
    write_metrics_json,
)
from repro.obs.profiler import SamplingProfiler, profiler_from_env
from repro.obs.server import OpsServer, start_ops_server
from repro.obs.tracing import NOOP_TRACER, NullTracer, Span, Tracer

__all__ = [
    "DeltaTracker",
    "EventLog",
    "METRICS_SCHEMA_VERSION",
    "NOOP_TRACER",
    "NullTracer",
    "OpsServer",
    "SamplingProfiler",
    "Span",
    "TelemetryDelta",
    "Tracer",
    "merge_delta",
    "metrics_to_json",
    "profiler_from_env",
    "start_ops_server",
    "to_prometheus",
    "worker_metrics",
    "write_metrics_json",
]
