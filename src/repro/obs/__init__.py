"""Observability: tracing, structured events, and metric exporters.

The pipeline (``repro.core.framework``), the simulated network, both
consensus protocols, the ledger, and the crypto hot paths all accept a
:class:`~repro.obs.tracing.Tracer`.  The default is the shared no-op
tracer :data:`NOOP_TRACER`, which costs one attribute check on the hot
path, so instrumented code runs at full speed unless a recording tracer
is attached.

* :mod:`repro.obs.tracing` — trace/span IDs (deterministic, counter
  based), nested spans with attributes/events/status;
* :mod:`repro.obs.events` — a structured JSONL event log that doubles
  as a span sink, correlating spans, constraint verdicts, rejections,
  and ledger anchors by ``trace_id``;
* :mod:`repro.obs.export` — Prometheus text format and a stable JSON
  schema for :class:`~repro.common.metrics.MetricsRegistry`.
"""

from repro.obs.events import EventLog
from repro.obs.export import (
    METRICS_SCHEMA_VERSION,
    metrics_to_json,
    to_prometheus,
    write_metrics_json,
)
from repro.obs.tracing import NOOP_TRACER, NullTracer, Span, Tracer

__all__ = [
    "EventLog",
    "METRICS_SCHEMA_VERSION",
    "NOOP_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "metrics_to_json",
    "to_prometheus",
    "write_metrics_json",
]
