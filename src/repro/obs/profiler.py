"""Opt-in per-stage sampling profiler with collapsed-stack output.

``REPRO_PROFILE=wall`` samples every thread currently inside a
profiled pipeline stage from a background thread at a fixed wall-clock
interval; ``REPRO_PROFILE=cpu`` samples the main thread on CPU time
via ``signal.setitimer(ITIMER_PROF)`` (so time blocked in ``fsync``
does not accrue).  Either way a sample is the thread's current stage
stack (pushed by :meth:`SamplingProfiler.stage` context managers
threaded through ``core/pipeline.py`` and the pipelined committer)
prefixed onto its Python call stack, aggregated into
flamegraph-compatible collapsed form::

    stage:verify;framework.py:submit_many;paillier.py:encrypt 42

Overhead design: only threads with a non-empty stage stack are ever
walked, sample aggregation is a dict bump under the GIL, and with the
profiler absent (the default) the pipeline takes its original
unconditionally-unprofiled path, so default-off runs stay
byte-identical and measurably unchanged.  The benchmark's
profiler-overhead row gates the enabled-path cost at <= 5%.
"""

import os
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.common.errors import PReVerError

_ENV_PROFILE = "REPRO_PROFILE"
_ENV_INTERVAL = "REPRO_PROFILE_INTERVAL"

#: Frames deeper than this are truncated (flamegraphs stay readable and
#: sample keys stay cheap to hash).
_MAX_DEPTH = 64

_MODES = ("wall", "cpu")


def _frame_label(frame) -> str:
    """``<file basename>:<function>`` — one collapsed-stack element."""
    code = frame.f_code
    return f"{os.path.basename(code.co_filename)}:{code.co_name}"


def _walk_stack(frame) -> List[str]:
    """Root-first labels for a frame chain, depth-capped."""
    labels: List[str] = []
    while frame is not None and len(labels) < _MAX_DEPTH:
        labels.append(_frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return labels


class _StageContext:
    """Reusable stage marker: entering pushes the stage name onto the
    calling thread's stack, exiting pops it.

    A plain class (not ``@contextmanager``) because this sits on the
    per-update hot path five times over: the generator machinery alone
    would cost a measurable slice of a plaintext update, and the <=5%
    profiler-overhead gate prices exactly that.  Instances hold no
    per-entry state, so one cached instance per stage name is shared
    by every thread and every (non-recursive) entry.
    """

    __slots__ = ("_stages", "_name")

    def __init__(self, stages: Dict[int, List[str]], name: str):
        self._stages = stages
        self._name = name

    def __enter__(self) -> None:
        ident = threading.get_ident()
        stack = self._stages.get(ident)
        if stack is None:
            stack = self._stages[ident] = []
        stack.append(self._name)

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._stages[threading.get_ident()].pop()
        return False


class SamplingProfiler:
    """Per-stage sampling profiler (wall or CPU mode).

    One instance per framework; pass it as ``PReVer(profiler=...)`` or
    let :func:`profiler_from_env` build it from ``REPRO_PROFILE``.
    Samples are only taken while some thread is inside a
    :meth:`stage` context, so an idle profiler costs one sleeping
    thread and nothing else.
    """

    def __init__(self, mode: str = "wall", interval: float = 0.005):
        if mode not in _MODES:
            raise PReVerError(
                f"unknown profiler mode {mode!r}; use 'wall' or 'cpu'"
            )
        if interval <= 0:
            raise PReVerError("profiler interval must be positive")
        self.mode = mode
        self.interval = interval
        self._counts: Dict[Tuple[str, ...], int] = {}
        self._stage_self: Dict[str, int] = {}
        self._stage_cum: Dict[str, int] = {}
        self._stages: Dict[int, List[str]] = {}
        self._stage_ctx: Dict[str, _StageContext] = {}
        self._samples = 0
        self._running = False
        self._thread: Optional[threading.Thread] = None
        self._old_handler = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        """True while the sampler is active."""
        return self._running

    def start(self) -> "SamplingProfiler":
        """Begin sampling (idempotent); returns self."""
        if self._running:
            return self
        self._running = True
        if self.mode == "wall":
            self._thread = threading.Thread(
                target=self._sample_loop, name="prever-profiler", daemon=True
            )
            self._thread.start()
        else:
            self._start_cpu()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling (idempotent); collected samples are kept."""
        if not self._running:
            return self
        self._running = False
        if self.mode == "wall":
            thread, self._thread = self._thread, None
            if thread is not None:
                thread.join(timeout=2.0)
        else:
            self._stop_cpu()
        return self

    def _start_cpu(self) -> None:
        import signal

        if threading.current_thread() is not threading.main_thread():
            self._running = False
            raise PReVerError(
                "cpu profiling uses SIGPROF and must start on the main thread"
            )
        self._old_handler = signal.signal(signal.SIGPROF, self._on_sigprof)
        signal.setitimer(signal.ITIMER_PROF, self.interval, self.interval)

    def _stop_cpu(self) -> None:
        import signal

        signal.setitimer(signal.ITIMER_PROF, 0.0)
        if self._old_handler is not None:
            signal.signal(signal.SIGPROF, self._old_handler)
            self._old_handler = None

    # -- stage context -----------------------------------------------------

    def stage(self, name: str) -> _StageContext:
        """Context manager marking the calling thread as inside
        pipeline stage ``name``; nested stages stack (samples credit
        the innermost as self time, every enclosing stage as
        cumulative time)."""
        ctx = self._stage_ctx.get(name)
        if ctx is None:
            ctx = self._stage_ctx[name] = _StageContext(self._stages, name)
        return ctx

    def thread_stack(self) -> List[str]:
        """The calling thread's mutable stage stack (created on first
        use).

        The per-update pipeline hot path pushes/pops stage names on
        this list directly instead of going through :meth:`stage` —
        five stage boundaries per update make even minimal
        context-manager machinery a measurable tax on the plaintext
        engine, and list append/pop are atomic under the GIL, so the
        sampler's cross-thread view stays consistent.
        """
        ident = threading.get_ident()
        stack = self._stages.get(ident)
        if stack is None:
            stack = self._stages[ident] = []
        return stack

    # -- sampling ----------------------------------------------------------

    def _sample_loop(self) -> None:
        me = threading.get_ident()
        while self._running:
            time.sleep(self.interval)
            frames = sys._current_frames()
            for ident, stack in list(self._stages.items()):
                if not stack or ident == me:
                    continue
                frame = frames.get(ident)
                if frame is not None:
                    self._record(tuple(stack), frame)

    def _on_sigprof(self, signum, frame) -> None:
        stack = self._stages.get(threading.get_ident())
        if stack and frame is not None:
            self._record(tuple(stack), frame)

    def _record(self, stages: Tuple[str, ...], frame) -> None:
        key = tuple(f"stage:{s}" for s in stages) + tuple(_walk_stack(frame))
        self._counts[key] = self._counts.get(key, 0) + 1
        self._samples += 1
        for name in set(stages):
            self._stage_cum[name] = self._stage_cum.get(name, 0) + 1
        leaf = stages[-1]
        self._stage_self[leaf] = self._stage_self.get(leaf, 0) + 1

    # -- reporting ---------------------------------------------------------

    @property
    def sample_count(self) -> int:
        """Total samples taken so far."""
        return self._samples

    def collapsed(self) -> str:
        """Flamegraph-compatible collapsed stacks: one
        ``frame;frame;... count`` line per distinct stack, sorted."""
        lines = [
            ";".join(key) + f" {count}"
            for key, count in sorted(self._counts.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path: str) -> int:
        """Write :meth:`collapsed` to ``path``; returns the line count."""
        text = self.collapsed()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return len(self._counts)

    def stage_report(self) -> dict:
        """Per-stage self/cumulative time estimates.

        Seconds are ``samples * interval`` — the standard sampling
        estimate (wall seconds in wall mode, CPU seconds in cpu mode).
        """
        report = {}
        for name in sorted(self._stage_cum):
            cum = self._stage_cum[name]
            own = self._stage_self.get(name, 0)
            report[name] = {
                "samples_self": own,
                "samples_cum": cum,
                "self_seconds": own * self.interval,
                "cum_seconds": cum * self.interval,
            }
        return report

    def describe(self) -> dict:
        """Identification for artifacts and reports."""
        return {
            "mode": self.mode,
            "interval": self.interval,
            "samples": self._samples,
            "stacks": len(self._counts),
        }


def profiler_from_env(environ=None) -> Optional[SamplingProfiler]:
    """Build a profiler from ``REPRO_PROFILE=wall|cpu`` (None when
    unset — the default, zero-cost configuration).
    ``REPRO_PROFILE_INTERVAL`` overrides the sampling interval in
    seconds."""
    environ = os.environ if environ is None else environ
    mode = environ.get(_ENV_PROFILE, "").strip().lower()
    if not mode:
        return None
    interval_raw = environ.get(_ENV_INTERVAL, "").strip()
    interval = float(interval_raw) if interval_raw else 0.005
    return SamplingProfiler(mode=mode, interval=interval)
