"""Metric exporters: Prometheus text format and a stable JSON schema.

Both exporters read a :class:`~repro.common.metrics.MetricsRegistry`
snapshot and emit metrics in sorted-name order, so two runs of the same
experiment produce byte-identical artifacts modulo the measured values
— the property ``benchmarks/bench_pipeline.py`` relies on when it
embeds the batched pipeline's metrics in ``BENCH_pipeline.json``.

The JSON schema is versioned (:data:`METRICS_SCHEMA_VERSION`); any
field rename or semantic change must bump it so downstream consumers
(CI artifact diffing, the benchmark) can detect the break.
"""

import json
import math
import re
from typing import Optional

from repro.common.metrics import MetricsRegistry

METRICS_SCHEMA_VERSION = 1

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, namespace: Optional[str]) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    flat = _PROM_NAME.sub("_", name.replace(".", "_"))
    return f"{namespace}_{flat}" if namespace else flat


def _prom_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry,
                  namespace: Optional[str] = "repro") -> str:
    """Render the registry in the Prometheus text exposition format.

    Counters become ``<name>_total``; timers become summaries with
    ``quantile`` labels plus ``_sum``/``_count``; histograms become
    classic cumulative ``_bucket`` series with ``le`` labels.
    """
    snapshot = registry.snapshot()
    lines = []

    for name in sorted(snapshot["counters"]):
        counter = snapshot["counters"][name]
        metric = _prom_name(name, namespace) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(counter['count'])}")

    for name in sorted(snapshot["timers"]):
        timer = snapshot["timers"][name]
        metric = _prom_name(name, namespace) + "_seconds"
        lines.append(f"# TYPE {metric} summary")
        for label, key in (("0.5", "p50"), ("0.95", "p95")):
            lines.append(
                f'{metric}{{quantile="{label}"}} {_prom_value(timer[key])}'
            )
        lines.append(f"{metric}_sum {_prom_value(timer['total'])}")
        lines.append(f"{metric}_count {_prom_value(timer['n'])}")

    for name in sorted(snapshot["histograms"]):
        histogram = snapshot["histograms"][name]
        metric = _prom_name(name, namespace)
        lines.append(f"# TYPE {metric} histogram")
        for bucket in histogram["buckets"]:
            lines.append(
                f'{metric}_bucket{{le="{_prom_value(bucket["le"])}"}} '
                f'{_prom_value(bucket["count"])}'
            )
        lines.append(f"{metric}_sum {_prom_value(histogram['total'])}")
        lines.append(f"{metric}_count {_prom_value(histogram['count'])}")

    return "\n".join(lines) + "\n"


def metrics_to_json(registry: MetricsRegistry) -> dict:
    """A stable, versioned JSON document for one registry.

    Layout::

        {"schema_version": 1,
         "counters":   {name: {"count": int, "total": float}},
         "timers":     {name: {"n", "mean", "total", "p50", "p95", "max"}},
         "histograms": {name: {"count", "total", "buckets": [...]}}}

    Names are sorted; ``+inf`` bucket bounds serialize as the string
    ``"+Inf"`` (JSON has no infinity literal).
    """
    snapshot = registry.snapshot()
    counters = {
        name: {"count": c["count"], "total": c["total"]}
        for name, c in snapshot["counters"].items()
    }
    timers = {
        name: {key: t[key] for key in ("n", "mean", "total", "p50", "p95", "max")}
        for name, t in snapshot["timers"].items()
    }
    histograms = {
        name: {
            "count": h["count"],
            "total": h["total"],
            "buckets": [
                {"le": ("+Inf" if math.isinf(b["le"]) else b["le"]),
                 "count": b["count"]}
                for b in h["buckets"]
            ],
        }
        for name, h in snapshot["histograms"].items()
    }
    return {
        "schema_version": METRICS_SCHEMA_VERSION,
        "counters": counters,
        "timers": timers,
        "histograms": histograms,
    }


def write_metrics_json(registry: MetricsRegistry, path: str) -> dict:
    """Serialize :func:`metrics_to_json` to ``path``; returns the doc."""
    document = metrics_to_json(registry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document
