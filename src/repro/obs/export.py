"""Metric exporters: Prometheus text format and a stable JSON schema.

Both exporters read a :class:`~repro.common.metrics.MetricsRegistry`
snapshot and emit metrics in sorted-name order, so two runs of the same
experiment produce byte-identical artifacts modulo the measured values
— the property ``benchmarks/bench_pipeline.py`` relies on when it
embeds the batched pipeline's metrics in ``BENCH_pipeline.json``.

The JSON schema is versioned (:data:`METRICS_SCHEMA_VERSION`); any
field rename or semantic change must bump it so downstream consumers
(CI artifact diffing, the benchmark) can detect the break.  Version
history:

* 1 — counters / timers (n, mean, total, p50, p95, max) / histograms.
* 2 — a ``gauges`` section, ``p99`` on every timer, and non-finite
  values serialized as the strings ``"NaN"`` / ``"+Inf"`` / ``"-Inf"``
  (strict JSON has no literal for any of them).
"""

import json
import math
import re
from typing import Optional

from repro.common.metrics import MetricsRegistry

METRICS_SCHEMA_VERSION = 2

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")

#: Timer summary fields exported to JSON, in schema order.
_TIMER_KEYS = ("n", "mean", "total", "p50", "p95", "p99", "max")

#: ``quantile`` label → snapshot key for the Prometheus summary rows.
_SUMMARY_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def _prom_name(name: str, namespace: Optional[str]) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    flat = _PROM_NAME.sub("_", name.replace(".", "_"))
    return f"{namespace}_{flat}" if namespace else flat


def _prom_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _json_safe(value):
    """Non-finite floats as strings — strict JSON has no literal for
    them, and ``json.dumps`` would otherwise emit invalid output."""
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "NaN"
        return "+Inf" if value > 0 else "-Inf"
    return value


class _TypeLines:
    """Emit each ``# TYPE`` header at most once per exposition.

    Distinct dotted names can sanitize to the same Prometheus
    identifier (``a.b`` and ``a_b`` both become ``a_b``); their sample
    lines all render, but a repeated TYPE header for the same metric
    family is invalid exposition text.
    """

    def __init__(self, lines):
        self._lines = lines
        self._seen = set()

    def declare(self, metric: str, kind: str) -> None:
        if metric not in self._seen:
            self._seen.add(metric)
            self._lines.append(f"# TYPE {metric} {kind}")


def to_prometheus(registry: MetricsRegistry,
                  namespace: Optional[str] = "repro") -> str:
    """Render the registry in the Prometheus text exposition format.

    Counters become ``<name>_total``; gauges keep their name; timers
    become summaries with ``quantile`` labels plus ``_sum``/``_count``;
    histograms become classic cumulative ``_bucket`` series with ``le``
    labels.
    """
    snapshot = registry.snapshot()
    lines = []
    types = _TypeLines(lines)

    for name in sorted(snapshot["counters"]):
        counter = snapshot["counters"][name]
        metric = _prom_name(name, namespace) + "_total"
        types.declare(metric, "counter")
        lines.append(f"{metric} {_prom_value(counter['count'])}")

    for name in sorted(snapshot.get("gauges", {})):
        gauge = snapshot["gauges"][name]
        metric = _prom_name(name, namespace)
        types.declare(metric, "gauge")
        lines.append(f"{metric} {_prom_value(gauge['value'])}")

    for name in sorted(snapshot["timers"]):
        timer = snapshot["timers"][name]
        metric = _prom_name(name, namespace) + "_seconds"
        types.declare(metric, "summary")
        for label, key in _SUMMARY_QUANTILES:
            lines.append(
                f'{metric}{{quantile="{label}"}} {_prom_value(timer[key])}'
            )
        lines.append(f"{metric}_sum {_prom_value(timer['total'])}")
        lines.append(f"{metric}_count {_prom_value(timer['n'])}")

    for name in sorted(snapshot["histograms"]):
        histogram = snapshot["histograms"][name]
        metric = _prom_name(name, namespace)
        types.declare(metric, "histogram")
        for bucket in histogram["buckets"]:
            lines.append(
                f'{metric}_bucket{{le="{_prom_value(bucket["le"])}"}} '
                f'{_prom_value(bucket["count"])}'
            )
        lines.append(f"{metric}_sum {_prom_value(histogram['total'])}")
        lines.append(f"{metric}_count {_prom_value(histogram['count'])}")

    return "\n".join(lines) + "\n"


def metrics_to_json(registry: MetricsRegistry) -> dict:
    """A stable, versioned JSON document for one registry.

    Layout::

        {"schema_version": 2,
         "counters":   {name: {"count": int, "total": float}},
         "gauges":     {name: {"value": float}},
         "timers":     {name: {"n", "mean", "total",
                               "p50", "p95", "p99", "max"}},
         "histograms": {name: {"count", "total", "buckets": [...]}}}

    Names are sorted; ``+inf`` bucket bounds and any non-finite value
    serialize as the strings ``"+Inf"`` / ``"-Inf"`` / ``"NaN"`` (JSON
    has no literals for them).
    """
    snapshot = registry.snapshot()
    counters = {
        name: {"count": c["count"], "total": _json_safe(c["total"])}
        for name, c in snapshot["counters"].items()
    }
    gauges = {
        name: {"value": _json_safe(g["value"])}
        for name, g in snapshot.get("gauges", {}).items()
    }
    timers = {
        name: {key: _json_safe(t[key]) for key in _TIMER_KEYS}
        for name, t in snapshot["timers"].items()
    }
    histograms = {
        name: {
            "count": h["count"],
            "total": _json_safe(h["total"]),
            "buckets": [
                {"le": ("+Inf" if math.isinf(b["le"]) else b["le"]),
                 "count": b["count"]}
                for b in h["buckets"]
            ],
        }
        for name, h in snapshot["histograms"].items()
    }
    return {
        "schema_version": METRICS_SCHEMA_VERSION,
        "counters": counters,
        "gauges": gauges,
        "timers": timers,
        "histograms": histograms,
    }


def write_metrics_json(registry: MetricsRegistry, path: str) -> dict:
    """Serialize :func:`metrics_to_json` to ``path``; returns the doc."""
    document = metrics_to_json(registry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document
