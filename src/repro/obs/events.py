"""Structured JSONL event log — the pipeline's flight recorder.

Every record is one JSON object per line with a monotonically
increasing ``seq``, a ``kind``, a ``timestamp``, and kind-specific
fields.  The log doubles as a :class:`~repro.obs.tracing.Tracer` sink:
span opens/closes become ``span_open``/``span_close`` records, and
freestanding tracer events (constraint verdicts, rejections, ledger
anchors, network hops) keep their own kinds.  All records that belong
to an update carry its ``trace_id``, which also appears in the
corresponding :class:`~repro.ledger.central.CentralLedger` anchor
payload, so a grep for one trace ID yields the update's full story:
pipeline stages, the constraint verdict, and the anchored decision.
"""

import json
import itertools
from typing import Any, Dict, Iterable, List, Optional


class EventLog:
    """An in-memory, JSONL-serializable structured event log."""

    def __init__(self):
        self._events: List[dict] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._events)

    # -- recording --------------------------------------------------------

    def emit(self, kind: str, timestamp: float = 0.0, **fields) -> dict:
        """Append one record (auto-assigned ``seq``); returns it."""
        record = {"seq": next(self._seq), "kind": kind,
                  "timestamp": timestamp}
        record.update(fields)
        self._events.append(record)
        return record

    # -- tracer sink interface --------------------------------------------

    def span_open(self, span) -> None:
        """Tracer-sink hook: record a span opening."""
        self.emit(
            "span_open",
            timestamp=span.start_time,
            trace_id=span.trace_id,
            span_id=span.span_id,
            parent_id=span.parent_id,
            name=span.name,
            attributes=dict(span.attributes),
        )

    def span_close(self, span) -> None:
        """Tracer-sink hook: record a span closing, with status and
        duration."""
        self.emit(
            "span_close",
            timestamp=span.end_time,
            trace_id=span.trace_id,
            span_id=span.span_id,
            parent_id=span.parent_id,
            name=span.name,
            status=span.status,
            duration=span.duration,
            attributes=dict(span.attributes),
            events=list(span.events),
        )

    def event(self, name: str, attributes: Dict[str, Any],
              timestamp: float) -> None:
        """Tracer-sink hook: record a freestanding tracer event under
        its own kind."""
        self.emit(name, timestamp=timestamp, **attributes)

    # -- queries ----------------------------------------------------------

    def events(self, kind: Optional[str] = None) -> List[dict]:
        """All records, or only those of one ``kind``, in seq order."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e["kind"] == kind]

    def kinds(self) -> List[str]:
        """Distinct record kinds present, sorted."""
        return sorted({e["kind"] for e in self._events})

    def for_trace(self, trace_id: str) -> List[dict]:
        """Every record carrying the given ``trace_id`` — one update's
        full story across pipeline, verdict, and anchor."""
        return [e for e in self._events if e.get("trace_id") == trace_id]

    def trace_ids(self) -> List[str]:
        """Distinct trace IDs in first-appearance order."""
        seen: Dict[str, None] = {}
        for event in self._events:
            trace_id = event.get("trace_id")
            if trace_id is not None:
                seen.setdefault(trace_id, None)
        return list(seen)

    # -- (de)serialization -------------------------------------------------

    def to_jsonl(self) -> str:
        """The whole log as JSONL text (bytes values hex-encoded)."""
        return "\n".join(
            json.dumps(e, sort_keys=True, default=_jsonify)
            for e in self._events
        )

    def write(self, path: str) -> int:
        """Write one JSON object per line; returns the record count."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self._events:
                handle.write(json.dumps(event, sort_keys=True,
                                        default=_jsonify) + "\n")
        return len(self._events)

    @staticmethod
    def read_jsonl(path: str) -> List[dict]:
        """Parse a JSONL file back into a list of record dicts."""
        with open(path, "r", encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "EventLog":
        """Rebuild a log from record dicts (``seq`` is reassigned)."""
        log = cls()
        for record in records:
            fields = {k: v for k, v in record.items()
                      if k not in ("seq", "kind", "timestamp")}
            log.emit(record["kind"], timestamp=record.get("timestamp", 0.0),
                     **fields)
        return log


def _jsonify(value):
    """Fallback for payload values JSON can't encode (bytes digests)."""
    if isinstance(value, bytes):
        return value.hex()
    return repr(value)
