"""Cross-process telemetry aggregation.

:class:`~repro.parallel.executors.ParallelExecutor` workers and
:class:`~repro.parallel.shards.ShardWorker` children used to be
telemetry black holes: whatever they counted or timed died with the
call, and the coordinator's registry only ever saw coordinator-side
work.  This module closes the gap with three picklable pieces:

* :class:`TelemetryDelta` — a serializable increment of one registry's
  counters / gauges / timers / histograms plus any finished span dicts,
  cheap enough to ride back alongside results;
* :class:`DeltaTracker` — computes successive deltas against a live
  registry (and optionally a recording tracer), so long-lived workers
  ship only what happened since the last capture;
* :func:`merge_delta` — folds a delta into a coordinator registry under
  a per-worker / per-shard label prefix, surfacing worker-side spans as
  ``<label>.span.<name>`` timers so they show up in ``/metrics``.

:func:`instrumented_chunk` is the pool-side entry point: a top-level
(hence picklable) wrapper the parallel executor submits instead of the
raw chunk function when a metrics registry is bound.  It runs the chunk
against the module-level worker registry (:func:`worker_metrics`),
records chunk/item counters and a chunk timer, and returns
``(results, delta, pid)``.
"""

import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Tuple

from repro.common.metrics import MetricsRegistry


@dataclass
class TelemetryDelta:
    """One registry's increment since the previous capture.

    Everything in here is plain picklable data: counter ``(count,
    total)`` pairs, gauge values, the *new* timer samples (samples, not
    summaries, so coordinator-side percentiles stay exact after a
    merge), histogram bucket increments, and finished-span dicts.
    """

    counters: Dict[str, Tuple[int, float]] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    timers: Dict[str, List[float]] = field(default_factory=dict)
    histograms: Dict[str, dict] = field(default_factory=dict)
    spans: List[dict] = field(default_factory=list)

    def empty(self) -> bool:
        """True when nothing moved since the previous capture."""
        return not (self.counters or self.gauges or self.timers
                    or self.histograms or self.spans)


class DeltaTracker:
    """Computes successive :class:`TelemetryDelta`\\ s for a registry.

    ``origin=True`` baselines at zero, so the first capture returns
    everything the registry has ever recorded — what a long-lived shard
    wants.  ``origin=False`` baselines at the registry's current state,
    so a capture covers exactly the activity since construction — what
    a per-call chunk wrapper wants.  Either way, every capture advances
    the baseline, so repeated captures never double-count.
    """

    def __init__(self, registry: MetricsRegistry, tracer=None,
                 origin: bool = False):
        self.registry = registry
        self.tracer = tracer
        self._counters: Dict[str, Tuple[int, float]] = {}
        self._gauges: Dict[str, float] = {}
        self._timer_counts: Dict[str, int] = {}
        self._hist_counts: Dict[str, List[int]] = {}
        self._hist_totals: Dict[str, float] = {}
        self._span_count = 0
        if not origin:
            self._rebase()

    def _rebase(self) -> None:
        registry = self.registry
        self._counters = {n: (c.count, c.total)
                         for n, c in registry._counters.items()}
        self._gauges = {n: g.value for n, g in registry._gauges.items()}
        self._timer_counts = {n: len(t.samples)
                              for n, t in registry._timers.items()}
        self._hist_counts = {n: list(h._bucket_counts)
                             for n, h in registry._histograms.items()}
        self._hist_totals = {n: h.total
                             for n, h in registry._histograms.items()}
        if self.tracer is not None:
            self._span_count = len(
                getattr(self.tracer, "finished_spans", ())
            )

    def capture(self) -> TelemetryDelta:
        """The increment since the last capture (or the baseline)."""
        registry = self.registry
        delta = TelemetryDelta()
        for name, counter in registry._counters.items():
            seen_count, seen_total = self._counters.get(name, (0, 0.0))
            if counter.count != seen_count or counter.total != seen_total:
                delta.counters[name] = (counter.count - seen_count,
                                        counter.total - seen_total)
        for name, gauge in registry._gauges.items():
            if gauge.value != self._gauges.get(name, 0.0):
                delta.gauges[name] = gauge.value
        for name, timer in registry._timers.items():
            seen = self._timer_counts.get(name, 0)
            if len(timer.samples) > seen:
                delta.timers[name] = list(timer.samples[seen:])
        for name, hist in registry._histograms.items():
            seen_buckets = self._hist_counts.get(
                name, [0] * len(hist._bucket_counts)
            )
            if hist._bucket_counts != seen_buckets:
                delta.histograms[name] = {
                    "bounds": list(hist.bounds),
                    "counts": [now - then for now, then
                               in zip(hist._bucket_counts, seen_buckets)],
                    "count": sum(hist._bucket_counts) - sum(seen_buckets),
                    "total": hist.total - self._hist_totals.get(name, 0.0),
                }
        if self.tracer is not None:
            finished = getattr(self.tracer, "finished_spans", ())
            if len(finished) > self._span_count:
                delta.spans = [span.to_dict()
                               for span in finished[self._span_count:]]
        self._rebase()
        return delta


def merge_delta(registry: MetricsRegistry, delta: TelemetryDelta,
                prefix: str = "") -> None:
    """Fold one delta into ``registry`` under a label prefix.

    ``prefix`` is typically ``worker.w0`` or ``shard.accounts``; every
    merged metric lands at ``<prefix>.<name>``.  Counter counts/totals
    add, timer samples extend (percentiles stay exact), histogram
    buckets add bucket-wise, gauges take the worker's latest value, and
    spans surface as one ``<prefix>.span.<name>`` timer sample each.
    """
    label = f"{prefix}." if prefix and not prefix.endswith(".") else prefix
    for name, (count, total) in delta.counters.items():
        counter = registry.counter(label + name)
        counter.count += count
        counter.total += total
    for name, value in delta.gauges.items():
        registry.gauge(label + name).set(value)
    for name, samples in delta.timers.items():
        timer = registry.timer(label + name)
        for sample in samples:
            timer.record(sample)
    for name, hist_delta in delta.histograms.items():
        hist = registry.histogram(label + name,
                                  buckets=hist_delta["bounds"])
        for index, count in enumerate(hist_delta["counts"]):
            hist._bucket_counts[index] += count
        hist.count += hist_delta["count"]
        hist.total += hist_delta["total"]
    for span in delta.spans:
        name = span.get("name") or "span"
        duration = span.get("duration") or 0.0
        registry.timer(f"{label}span.{name}").record(duration)


# -- worker-process side ----------------------------------------------------

#: One registry per worker process: chunk wrappers (and any chunk
#: function that wants to record worker-side telemetry) write here, and
#: deltas of it ride back to the coordinator with the results.
_WORKER_METRICS = MetricsRegistry()


def worker_metrics() -> MetricsRegistry:
    """The calling process's worker-side registry (coordinator-merged
    whenever a telemetry-collecting executor ran the current chunk)."""
    return _WORKER_METRICS


def instrumented_chunk(fn, chunk) -> tuple:
    """(worker) Run ``fn(chunk)`` and capture its telemetry delta.

    Top-level so it pickles into pool workers.  Records the chunk's
    wall time plus chunk/item counters into :func:`worker_metrics`,
    then returns ``(results, delta, pid)`` — the delta covering
    exactly this call, the pid letting the coordinator assign a stable
    per-worker label.
    """
    registry = _WORKER_METRICS
    tracker = DeltaTracker(registry)
    start = perf_counter()
    out = list(fn(chunk))
    elapsed = perf_counter() - start
    registry.counter("parallel.worker.chunks").add()
    registry.counter("parallel.worker.items").add(len(chunk))
    registry.timer("parallel.worker.chunk_seconds").record(elapsed)
    return out, tracker.capture(), os.getpid()
