"""Lightweight tracing: one trace per update, nested spans per stage.

Design constraints, in order:

1. **Zero cost when off.**  Every instrumented component defaults to
   the shared :data:`NOOP_TRACER`; hot paths guard span creation with
   ``tracer.enabled`` (a class attribute, one ``LOAD_ATTR``), so the
   batched benchmark sees no measurable overhead.
2. **Deterministic identifiers.**  Trace and span IDs come from
   :func:`repro.common.ids.make_id` — counter based, no wall clock, no
   randomness — so a seeded simulation produces the same IDs every run
   and tests can assert on correlation without mocking time.
3. **Explicit timestamps.**  Callers that already read a clock for
   their own stage timers pass ``start_time``/``end_time`` through, so
   tracing never adds clock reads to an instrumented hot path; spans
   created without explicit times read the tracer's clock (wall by
   default, injectable for tests).

Spans form a tree via ``parent_id``; sinks (:class:`repro.obs.events.
EventLog` or anything with ``span_open``/``span_close``/``event``)
receive spans as they open and close, plus freestanding events.
"""

from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from repro.common.clock import WallClock
from repro.common.ids import make_id


class Span:
    """One timed operation within a trace."""

    __slots__ = (
        "tracer", "trace_id", "span_id", "parent_id", "name",
        "start_time", "end_time", "status", "attributes", "events",
    )

    def __init__(self, tracer: "Tracer", trace_id: str, span_id: str,
                 name: str, parent_id: Optional[str],
                 start_time: float,
                 attributes: Optional[Dict[str, Any]] = None):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_time = start_time
        self.end_time: Optional[float] = None
        self.status = "ok"
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.events: List[dict] = []

    # -- recording --------------------------------------------------------

    def set_attribute(self, key: str, value: Any) -> "Span":
        """Attach one key/value to the span; returns self for chaining."""
        self.attributes[key] = value
        return self

    def set_status(self, status: str) -> "Span":
        """``ok`` | ``error`` | ``skipped`` (stage not reached)."""
        self.status = status
        return self

    def add_event(self, name: str, **attributes) -> "Span":
        """Record a point-in-time event inside this span."""
        self.events.append({"name": name, "attributes": attributes})
        return self

    def end(self, end_time: Optional[float] = None) -> "Span":
        """Close the span (at ``end_time``, or the tracer clock's now)
        and hand it to the tracer's sinks; idempotent."""
        if self.end_time is None:  # idempotent: first end wins
            self.end_time = (self.tracer.clock.now()
                             if end_time is None else end_time)
            self.tracer._on_end(self)
        return self

    @property
    def duration(self) -> float:
        """Seconds between start and end; 0.0 while still open."""
        if self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    @property
    def ended(self) -> bool:
        """True once :meth:`end` has run."""
        return self.end_time is not None

    def child(self, name: str, start_time: Optional[float] = None,
              **attributes) -> "Span":
        """Open a child span nested under this one (same trace)."""
        return self.tracer.start_span(
            name, parent=self, start_time=start_time, attributes=attributes
        )

    def to_dict(self) -> dict:
        """Serializable form, as exported to JSON trace dumps."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
            "events": list(self.events),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"status={self.status})")


class Tracer:
    """Creates spans, assigns IDs, and fans finished spans out to sinks."""

    enabled = True

    def __init__(self, clock=None):
        self.clock = clock or WallClock()
        self.sinks: List[Any] = []
        self.finished_spans: List[Span] = []

    # -- sinks ------------------------------------------------------------

    def add_sink(self, sink) -> "Tracer":
        """Attach anything with ``span_open``/``span_close``/``event``
        methods (all optional); :class:`repro.obs.events.EventLog`
        implements all three."""
        self.sinks.append(sink)
        return self

    # -- span lifecycle ---------------------------------------------------

    def start_trace(self, name: str, start_time: Optional[float] = None,
                    attributes: Optional[Dict[str, Any]] = None) -> Span:
        """Open a root span under a fresh trace ID."""
        return self.start_span(name, parent=None, start_time=start_time,
                               attributes=attributes)

    def start_span(self, name: str, parent: Optional[Span] = None,
                   trace_id: Optional[str] = None,
                   start_time: Optional[float] = None,
                   attributes: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span — under ``parent`` when given, else as a root of
        a new (or the supplied) ``trace_id`` — and notify sinks."""
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = trace_id or make_id("trace")
            parent_id = None
        span = Span(
            tracer=self,
            trace_id=trace_id,
            span_id=make_id("span"),
            name=name,
            parent_id=parent_id,
            start_time=(self.clock.now() if start_time is None
                        else start_time),
            attributes=attributes,
        )
        for sink in self.sinks:
            hook = getattr(sink, "span_open", None)
            if hook is not None:
                hook(span)
        return span

    @contextmanager
    def span(self, name: str, parent: Optional[Span] = None, **attributes):
        """``with tracer.span("paillier.decrypt"):`` convenience; marks
        the span ``error`` (with the exception repr) on the way out of
        a raising block."""
        current = self.start_span(name, parent=parent, attributes=attributes)
        try:
            yield current
        except BaseException as exc:
            current.set_status("error")
            current.set_attribute("exception", repr(exc))
            raise
        finally:
            current.end()

    def event(self, name: str, timestamp: Optional[float] = None,
              **attributes) -> None:
        """A freestanding structured event (no span), fanned to sinks."""
        if timestamp is None:
            timestamp = self.clock.now()
        for sink in self.sinks:
            hook = getattr(sink, "event", None)
            if hook is not None:
                hook(name, attributes, timestamp)

    def _on_end(self, span: Span) -> None:
        self.finished_spans.append(span)
        for sink in self.sinks:
            hook = getattr(sink, "span_close", None)
            if hook is not None:
                hook(span)

    # -- queries (test/report helpers) ------------------------------------

    def traces(self) -> Dict[str, List[Span]]:
        """Finished spans grouped by trace, in end order."""
        grouped: Dict[str, List[Span]] = {}
        for span in self.finished_spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def spans_named(self, name: str) -> List[Span]:
        """Finished spans with the given name, in end order."""
        return [s for s in self.finished_spans if s.name == name]


class _NullSpan:
    """Absorbs the whole Span API; every method returns self."""

    __slots__ = ()

    trace_id = None
    span_id = None
    parent_id = None
    name = "null"
    start_time = 0.0
    end_time = 0.0
    duration = 0.0
    ended = True
    status = "ok"
    attributes: Dict[str, Any] = {}
    events: List[dict] = []

    def set_attribute(self, key, value):
        """No-op; returns self."""
        return self

    def set_status(self, status):
        """No-op; returns self."""
        return self

    def add_event(self, name, **attributes):
        """No-op; returns self."""
        return self

    def end(self, end_time=None):
        """No-op; returns self."""
        return self

    def child(self, name, start_time=None, **attributes):
        """No-op; returns self (children of a null span are itself)."""
        return self

    def to_dict(self) -> dict:
        """Always empty."""
        return {}

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: every operation is a no-op.

    Instrumented hot paths should branch on ``tracer.enabled`` and skip
    span construction entirely; the methods exist so cold paths can
    stay unconditional.
    """

    enabled = False
    sinks: List[Any] = []
    finished_spans: List[Span] = []

    def add_sink(self, sink):
        """Discard the sink (nothing will ever be emitted)."""
        return self

    def start_trace(self, name, start_time=None, attributes=None):
        """Return the shared null span."""
        return NULL_SPAN

    def start_span(self, name, parent=None, trace_id=None,
                   start_time=None, attributes=None):
        """Return the shared null span."""
        return NULL_SPAN

    def span(self, name, parent=None, **attributes):
        """Return the shared null span (itself a context manager)."""
        return NULL_SPAN

    def event(self, name, timestamp=None, **attributes):
        """Discard the event."""
        return None

    def traces(self) -> Dict[str, List[Span]]:
        """Always empty."""
        return {}

    def spans_named(self, name: str) -> List[Span]:
        """Always empty."""
        return []


NOOP_TRACER = NullTracer()
