"""Shared pieces for the consensus clusters."""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.common.errors import ProtocolError


@dataclass
class ConsensusResult:
    """Outcome of one submitted command."""

    value: Any
    sequence: int
    submitted_at: float
    decided_at: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        if self.decided_at is None:
            return None
        return self.decided_at - self.submitted_at


@dataclass
class ClusterStats:
    """Aggregates the benchmark harness reads after a run."""

    decided: int
    total: int
    sim_duration: float
    messages: int
    mean_latency: float
    p95_latency: float

    @property
    def throughput(self) -> float:
        if self.sim_duration <= 0:
            return 0.0
        return self.decided / self.sim_duration


def compute_stats(results: List[ConsensusResult], sim_duration: float,
                  messages: int) -> ClusterStats:
    latencies = sorted(
        r.latency for r in results if r.latency is not None
    )
    decided = len(latencies)
    mean = sum(latencies) / decided if decided else 0.0
    p95 = latencies[min(decided - 1, int(0.95 * decided))] if decided else 0.0
    return ClusterStats(
        decided=decided,
        total=len(results),
        sim_duration=sim_duration,
        messages=messages,
        mean_latency=mean,
        p95_latency=p95,
    )


class DecisionLog:
    """Per-node ordered log of decided values."""

    def __init__(self):
        self._decisions: Dict[int, Any] = {}

    def decide(self, sequence: int, value: Any) -> bool:
        """Record a decision; returns False on conflicting re-decision."""
        existing = self._decisions.get(sequence)
        if existing is not None and existing != value:
            raise ProtocolError(
                f"safety violation: slot {sequence} decided twice "
                f"({existing!r} vs {value!r})"
            )
        first_time = sequence not in self._decisions
        self._decisions[sequence] = value
        return first_time

    def get(self, sequence: int) -> Optional[Any]:
        return self._decisions.get(sequence)

    def committed_prefix(self) -> List[Any]:
        """Values of the gap-free prefix."""
        out = []
        index = 0
        while index in self._decisions:
            out.append(self._decisions[index])
            index += 1
        return out

    def __len__(self) -> int:
        return len(self._decisions)
