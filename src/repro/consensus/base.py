"""Shared pieces for the consensus clusters."""

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.common.errors import ProtocolError
from repro.common.metrics import nearest_rank


@dataclass
class ConsensusResult:
    """Outcome of one submitted command."""

    value: Any
    sequence: int
    submitted_at: float
    decided_at: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        if self.decided_at is None:
            return None
        return self.decided_at - self.submitted_at


@dataclass
class ClusterStats:
    """Aggregates the benchmark harness reads after a run."""

    decided: int
    total: int
    sim_duration: float
    messages: int
    mean_latency: float
    p95_latency: float
    p50_latency: float = 0.0
    p99_latency: float = 0.0

    @property
    def throughput(self) -> float:
        if self.sim_duration <= 0:
            return 0.0
        return self.decided / self.sim_duration

    def to_dict(self) -> dict:
        """Serializable form for benchmark artifacts."""
        return {
            "decided": self.decided,
            "total": self.total,
            "sim_duration": self.sim_duration,
            "messages": self.messages,
            "throughput": self.throughput,
            "mean_latency": self.mean_latency,
            "p50_latency": self.p50_latency,
            "p95_latency": self.p95_latency,
            "p99_latency": self.p99_latency,
        }


def compute_stats(results: List[ConsensusResult], sim_duration: float,
                  messages: int) -> ClusterStats:
    """Aggregate decided-command latencies with the shared nearest-rank
    percentile (:func:`repro.common.metrics.nearest_rank`), so cluster
    quantiles agree with ``Timer.percentile`` everywhere else."""
    latencies = sorted(
        r.latency for r in results if r.latency is not None
    )
    decided = len(latencies)
    mean = sum(latencies) / decided if decided else 0.0
    return ClusterStats(
        decided=decided,
        total=len(results),
        sim_duration=sim_duration,
        messages=messages,
        mean_latency=mean,
        p95_latency=nearest_rank(latencies, 95),
        p50_latency=nearest_rank(latencies, 50),
        p99_latency=nearest_rank(latencies, 99),
    )


class DecisionLog:
    """Per-node ordered log of decided values."""

    def __init__(self):
        self._decisions: Dict[int, Any] = {}

    def decide(self, sequence: int, value: Any) -> bool:
        """Record a decision for ``sequence``.

        Returns ``True`` the first time a slot is decided and ``False``
        on an idempotent re-decision of the same value.  A *conflicting*
        re-decision raises :class:`~repro.common.errors.ProtocolError`
        (fail-closed: a slot deciding two different values is a safety
        violation, never something to signal with a return code).
        """
        existing = self._decisions.get(sequence)
        if existing is not None and existing != value:
            raise ProtocolError(
                f"safety violation: slot {sequence} decided twice "
                f"({existing!r} vs {value!r})"
            )
        first_time = sequence not in self._decisions
        self._decisions[sequence] = value
        return first_time

    def get(self, sequence: int) -> Optional[Any]:
        return self._decisions.get(sequence)

    def committed_prefix(self) -> List[Any]:
        """Values of the gap-free prefix."""
        out = []
        index = 0
        while index in self._decisions:
            out.append(self._decisions[index])
            index += 1
        return out

    def __len__(self) -> int:
        return len(self._decisions)
