"""Practical Byzantine Fault Tolerance (Castro–Liskov), three phases.

n = 3f + 1 replicas tolerate f byzantine ones.  The primary of the
current view assigns sequence numbers and broadcasts PRE-PREPARE; each
replica broadcasts PREPARE; once a replica has the pre-prepare plus 2f
matching prepares it broadcasts COMMIT; with 2f + 1 matching commits it
executes.  Message complexity is O(n^2) per decree — the quadratic-vs-
linear gap against Paxos is exactly what bench E9 measures.

View change: replicas start a timer per pending request; on expiry they
broadcast VIEW-CHANGE for view v+1; the new primary collects 2f + 1 and
broadcasts NEW-VIEW, re-proposing prepared-but-unexecuted requests.

Byzantine hooks used by the tests: ``silence()`` (crash-style) and
``equivocate = True`` on a primary (sends conflicting pre-prepares to
different replicas; honest replicas' prepare phase then cannot gather a
quorum for either value, so safety holds and the view change fires).
"""

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.common.errors import ProtocolError
from repro.crypto.hashing import digest_canonical
from repro.consensus.base import (
    ClusterStats,
    ConsensusResult,
    DecisionLog,
    compute_stats,
)
from repro.net.simnet import Message, Node, SimNetwork


def _digest(value: Any) -> str:
    return digest_canonical(value)


class PBFTNode(Node):
    def __init__(self, name: str, index: int, peers: List[str], f: int,
                 view_timeout: float = 1.0):
        super().__init__(name)
        self.index = index
        self.peers = peers
        self.n = len(peers)
        self.f = f
        self.view = 0
        self.next_seq = 0
        self.view_timeout = view_timeout
        # seq -> (view, digest) for accepted pre-prepares; digests/value store
        self.pre_prepares: Dict[int, Tuple[int, str]] = {}
        self.values: Dict[str, Any] = {}
        self.prepares: Dict[Tuple[int, int, str], Set[str]] = {}
        self.commits: Dict[Tuple[int, int, str], Set[str]] = {}
        self.prepared: Set[int] = set()
        self.log = DecisionLog()
        self.on_decide = None
        self.crashed = False
        self.equivocate = False
        self.view_change_votes: Dict[int, Set[str]] = {}
        self._view_change_certs: Dict[int, Dict[int, dict]] = {}
        self._request_timers: Dict[str, int] = {}
        self._pending_requests: Dict[str, Any] = {}

    # -- helpers -------------------------------------------------------------

    @property
    def primary_name(self) -> str:
        return self.peers[self.view % self.n]

    @property
    def is_primary(self) -> bool:
        return self.primary_name == self.name

    def silence(self) -> None:
        self.crashed = True

    # -- client entry ----------------------------------------------------------

    def client_request(self, value: Any) -> None:
        digest = _digest(value)
        self._pending_requests[digest] = value
        self.values[digest] = value
        if self.is_primary and not self.crashed:
            self._assign_and_preprepare(value, digest)
        # All replicas arm a view-change timer for the request.
        timer = self.set_timer(
            self.view_timeout, lambda d=digest: self._request_expired(d)
        )
        self._request_timers[digest] = timer

    def _assign_and_preprepare(self, value: Any, digest: str) -> None:
        seq = self.next_seq
        self.next_seq += 1
        if self.equivocate:
            # Byzantine primary: conflicting values to the two halves.
            fake = {"equivocation": digest}
            fake_digest = _digest(fake)
            self.values[fake_digest] = fake
            half = self.n // 2
            for i, peer in enumerate(self.peers):
                chosen, chosen_digest = (
                    (value, digest) if i < half else (fake, fake_digest)
                )
                self.send(peer, "pre_prepare", {
                    "view": self.view, "seq": seq,
                    "digest": chosen_digest, "value": chosen,
                })
            return
        for peer in self.peers:
            self.send(peer, "pre_prepare", {
                "view": self.view, "seq": seq, "digest": digest, "value": value,
            })

    # -- message handling --------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if self.crashed:
            return
        handler = getattr(self, f"_on_{message.kind}", None)
        if handler is None:
            raise ProtocolError(f"pbft: unknown message kind {message.kind!r}")
        handler(message)

    def _on_pre_prepare(self, message: Message) -> None:
        body = message.body
        if body["view"] != self.view:
            return
        if message.src != self.primary_name:
            return  # only the primary may pre-prepare
        seq, digest = body["seq"], body["digest"]
        existing = self.pre_prepares.get(seq)
        if (
            existing is not None
            and existing[0] == self.view
            and existing != (self.view, digest)
        ):
            return  # conflicting same-view pre-prepare (equivocation defense)
        self.pre_prepares[seq] = (self.view, digest)
        self.values[digest] = body["value"]
        for peer in self.peers:
            self.send(peer, "prepare", {
                "view": self.view, "seq": seq, "digest": digest,
            })

    def _on_prepare(self, message: Message) -> None:
        body = message.body
        key = (body["view"], body["seq"], body["digest"])
        votes = self.prepares.setdefault(key, set())
        votes.add(message.src)
        self._maybe_commit(body["view"], body["seq"], body["digest"])

    def _maybe_commit(self, view: int, seq: int, digest: str) -> None:
        if view != self.view or seq in self.prepared:
            return
        if self.pre_prepares.get(seq) != (view, digest):
            return
        votes = self.prepares.get((view, seq, digest), set())
        if len(votes) >= 2 * self.f:
            self.prepared.add(seq)
            for peer in self.peers:
                self.send(peer, "commit", {
                    "view": view, "seq": seq, "digest": digest,
                })

    def _on_commit(self, message: Message) -> None:
        body = message.body
        key = (body["view"], body["seq"], body["digest"])
        votes = self.commits.setdefault(key, set())
        votes.add(message.src)
        if len(votes) >= 2 * self.f + 1 and self.log.get(body["seq"]) is None:
            value = self.values.get(body["digest"])
            if value is None:
                return  # haven't seen the payload yet; commit msgs will re-fire
            if self.log.decide(body["seq"], value) and self.on_decide:
                self.on_decide(body["seq"], value)
            self._clear_request_timer(body["digest"])

    def _clear_request_timer(self, digest: str) -> None:
        timer = self._request_timers.pop(digest, None)
        if timer is not None:
            self.cancel_timer(timer)
        self._pending_requests.pop(digest, None)

    # -- view change ----------------------------------------------------------

    def _request_expired(self, digest: str) -> None:
        if self.crashed or digest not in self._pending_requests:
            return
        new_view = self.view + 1
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.event(
                "pbft.view_change",
                timestamp=self.now(),
                node=self.name,
                view=self.view,
                new_view=new_view,
                request_digest=digest[:16],
            )
        certificates = self._prepared_certificates()
        for peer in self.peers:
            self.send(peer, "view_change", {
                "new_view": new_view, "prepared": certificates,
            })

    def _prepared_certificates(self) -> List[dict]:
        """Prepared-but-unexecuted (seq, view, digest, value) tuples —
        the new primary must re-propose these at the same sequence
        numbers (PBFT's safety rule across views)."""
        certs = []
        for seq in self.prepared:
            if self.log.get(seq) is not None:
                continue
            entry = self.pre_prepares.get(seq)
            if entry is None:
                continue
            view, digest = entry
            certs.append({
                "seq": seq, "view": view, "digest": digest,
                "value": self.values.get(digest),
            })
        return certs

    def _on_view_change(self, message: Message) -> None:
        new_view = message.body["new_view"]
        if new_view <= self.view:
            return
        votes = self.view_change_votes.setdefault(new_view, set())
        votes.add(message.src)
        certs = self._view_change_certs.setdefault(new_view, {})
        for cert in message.body.get("prepared", []):
            seq = cert["seq"]
            if seq not in certs or cert["view"] > certs[seq]["view"]:
                certs[seq] = cert
        new_primary = self.peers[new_view % self.n]
        if new_primary == self.name and len(votes) >= 2 * self.f + 1:
            for peer in self.peers:
                self.send(peer, "new_view", {"view": new_view})

    def _on_new_view(self, message: Message) -> None:
        new_view = message.body["view"]
        if message.src != self.peers[new_view % self.n] or new_view <= self.view:
            return
        self.view = new_view
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.event(
                "pbft.new_view",
                timestamp=self.now(),
                node=self.name,
                view=new_view,
                primary=self.primary_name,
            )
        self.prepared = {s for s in self.prepared if self.log.get(s) is not None}
        if self.is_primary and not self.crashed:
            certs = self._view_change_certs.get(new_view, {})
            highest = max(
                [s for s in self.pre_prepares]
                + [s for s in certs]
                + [len(self.log) - 1, self.next_seq - 1]
            )
            # Slots: re-propose prepared certificates at their original
            # sequence numbers; fill other undecided slots with pending
            # client requests, then no-ops.
            pending = [
                (digest, value)
                for digest, value in self._pending_requests.items()
                if not any(c["digest"] == digest for c in certs.values())
            ]
            self.next_seq = highest + 1
            for seq in range(0, highest + 1):
                if self.log.get(seq) is not None:
                    continue
                if seq in certs:
                    cert = certs[seq]
                    self.values[cert["digest"]] = cert["value"]
                    self._preprepare_at(seq, cert["value"], cert["digest"])
                elif pending:
                    digest, value = pending.pop(0)
                    self._preprepare_at(seq, value, digest)
                else:
                    noop = {"noop": seq, "view": new_view}
                    self._preprepare_at(seq, noop, _digest(noop))
            for digest, value in pending:
                self._assign_and_preprepare(value, digest)

    def _preprepare_at(self, seq: int, value: Any, digest: str) -> None:
        self.values[digest] = value
        for peer in self.peers:
            self.send(peer, "pre_prepare", {
                "view": self.view, "seq": seq, "digest": digest, "value": value,
            })


class PBFTCluster:
    """3f+1 replica group with submit/committed interface."""

    def __init__(self, f: int = 1, network: Optional[SimNetwork] = None,
                 name_prefix: str = "pbft", view_timeout: float = 1.0):
        if f < 1:
            raise ProtocolError("PBFT needs f >= 1 (n = 4)")
        self.f = f
        self.n = 3 * f + 1
        self.network = network or SimNetwork()
        self.names = [f"{name_prefix}-{i}" for i in range(self.n)]
        self.nodes: List[PBFTNode] = []
        for i, name in enumerate(self.names):
            node = PBFTNode(name, i, self.names, f, view_timeout=view_timeout)
            node.on_decide = self._make_recorder(i)
            self.network.add_node(node)
            self.nodes.append(node)
        self._results: List[ConsensusResult] = []
        self._by_digest: Dict[str, ConsensusResult] = {}
        self._decide_counts: Dict[int, Set[int]] = {}
        self._request_spans: Dict[str, Any] = {}

    def _make_recorder(self, node_index: int):
        def record(seq: int, value: Any) -> None:
            # A command counts as decided when f+1 replicas executed it
            # (at least one honest replica).
            voters = self._decide_counts.setdefault(seq, set())
            voters.add(node_index)
            if len(voters) == self.f + 1:
                digest = _digest(value)
                result = self._by_digest.get(digest)
                if result is not None and result.decided_at is None:
                    result.sequence = seq
                    result.decided_at = self.network.clock.now()
                span = self._request_spans.pop(digest, None)
                if span is not None:
                    span.set_attribute("seq", seq)
                    span.end(self.network.clock.now())
        return record

    def submit(self, value: Any) -> ConsensusResult:
        result = ConsensusResult(
            value=value, sequence=-1, submitted_at=self.network.clock.now()
        )
        self._results.append(result)
        digest = _digest(value)
        self._by_digest[digest] = result
        tracer = self.network.tracer
        if tracer.enabled:
            # One span per decree, open from client submission until
            # f+1 replicas executed; view changes show up as events on
            # the same simulated timeline.
            self._request_spans[digest] = tracer.start_trace(
                "pbft.request",
                start_time=self.network.clock.now(),
                attributes={"digest": digest[:16], "n": self.n, "f": self.f},
            )
        # The client broadcasts to all replicas (standard PBFT: request
        # goes to the primary, but replicas need it to detect primary
        # failure; broadcasting models that without a separate relay).
        for node in self.nodes:
            node.client_request(value)
        return result

    def run(self, until: Optional[float] = None) -> None:
        self.network.run(until=until)

    def committed(self) -> List[Any]:
        """Gap-free prefix agreed by at least f+1 replicas."""
        prefixes = [node.log.committed_prefix() for node in self.nodes]
        prefixes.sort(key=len, reverse=True)
        return prefixes[self.f]

    def stats(self) -> ClusterStats:
        return compute_stats(
            self._results,
            sim_duration=self.network.clock.now(),
            messages=self.network.message_count,
        )
