"""Multi-decree Paxos with a stable leader.

The classic optimization for state-machine replication: the leader runs
Phase 1 (prepare/promise) once for its ballot across all instances,
then each client command costs one Phase-2 round (accept/accepted) plus
a decide broadcast — 3n messages per decree, linear in cluster size,
versus PBFT's quadratic prepare/commit.  Crash faults only: a minority
of acceptors may fail-stop and progress continues; there is no defense
against byzantine nodes (that comparison is the point of bench E9).

Leader failure is handled by ballot takeover: calling
``cluster.elect(node)`` makes that node run Phase 1 with a higher
ballot; promises carry previously accepted values which the new leader
re-proposes, preserving safety.
"""

from typing import Any, Dict, List, Optional

from repro.common.errors import ProtocolError
from repro.consensus.base import (
    ClusterStats,
    ConsensusResult,
    DecisionLog,
    compute_stats,
)
from repro.net.simnet import Message, Node, SimNetwork


class PaxosNode(Node):
    """Acts as proposer (when leader), acceptor, and learner."""

    def __init__(self, name: str, peers: List[str], quorum: int):
        super().__init__(name)
        self.peers = peers
        self.quorum = quorum
        # Acceptor state.
        self.promised_ballot = -1
        self.accepted: Dict[int, tuple] = {}  # slot -> (ballot, value)
        # Proposer (leader) state.
        self.is_leader = False
        self.ballot = -1
        self.next_slot = 0
        self.promises: Dict[int, List[dict]] = {}  # ballot -> promise msgs
        self.pending: List[Any] = []  # commands awaiting leadership
        self.accept_counts: Dict[int, set] = {}  # slot -> acceptor names
        self.proposals: Dict[int, Any] = {}  # slot -> value being proposed
        # Learner state.
        self.log = DecisionLog()
        self.on_decide = None  # optional callback(slot, value)
        self.crashed = False

    # -- client entry point ------------------------------------------------

    def client_request(self, value: Any) -> None:
        if not self.is_leader:
            self.pending.append(value)
            return
        self._propose(value)

    def _propose(self, value: Any) -> None:
        slot = self.next_slot
        self.next_slot += 1
        self.proposals[slot] = value
        self.accept_counts.setdefault(slot, set())
        for peer in self.peers:
            self.send(peer, "accept", {"ballot": self.ballot, "slot": slot,
                                       "value": value})

    def retry_pending(self) -> int:
        """Re-broadcast ACCEPTs for proposed-but-undecided slots.

        Classic Paxos assumes fair-lossy links and retransmits; the
        simulator's leader fires this explicitly when a lossy network
        profile ate part of a Phase-2 round, so a stuck slot cannot gap
        the committed prefix forever.  Returns the number of slots
        re-driven.  Safe to call any time: acceptors treat a repeated
        ACCEPT for the same ballot idempotently.
        """
        if not self.is_leader:
            return 0
        retried = 0
        for slot, value in sorted(self.proposals.items()):
            if self.log.get(slot) is not None:
                continue
            retried += 1
            for peer in self.peers:
                self.send(peer, "accept", {"ballot": self.ballot,
                                           "slot": slot, "value": value})
        return retried

    # -- leadership ----------------------------------------------------------

    def start_election(self, ballot: int) -> None:
        self.ballot = ballot
        self.promises[ballot] = []
        for peer in self.peers:
            self.send(peer, "prepare", {"ballot": ballot})

    # -- message handling -----------------------------------------------------

    def on_message(self, message: Message) -> None:
        if self.crashed:
            return
        handler = getattr(self, f"_on_{message.kind}", None)
        if handler is None:
            raise ProtocolError(f"paxos: unknown message kind {message.kind!r}")
        handler(message)

    def _on_prepare(self, message: Message) -> None:
        ballot = message.body["ballot"]
        if ballot > self.promised_ballot:
            self.promised_ballot = ballot
            self.send(
                message.src,
                "promise",
                {
                    "ballot": ballot,
                    "accepted": {
                        str(slot): [b, v] for slot, (b, v) in self.accepted.items()
                    },
                },
            )

    def _on_promise(self, message: Message) -> None:
        ballot = message.body["ballot"]
        if ballot != self.ballot:
            return
        bucket = self.promises.setdefault(ballot, [])
        bucket.append(message.body)
        if len(bucket) == self.quorum:
            self._become_leader(bucket)

    def _become_leader(self, promises: List[dict]) -> None:
        self.is_leader = True
        # Adopt the highest-ballot accepted value per slot (safety rule).
        adopted: Dict[int, tuple] = {}
        for promise in promises:
            for slot_text, (ballot, value) in promise["accepted"].items():
                slot = int(slot_text)
                if slot not in adopted or ballot > adopted[slot][0]:
                    adopted[slot] = (ballot, value)
        for slot, (_, value) in sorted(adopted.items()):
            self.proposals[slot] = value
            self.accept_counts.setdefault(slot, set())
            self.next_slot = max(self.next_slot, slot + 1)
            for peer in self.peers:
                self.send(peer, "accept", {"ballot": self.ballot, "slot": slot,
                                           "value": value})
        # Drain commands queued while campaigning.
        pending, self.pending = self.pending, []
        for value in pending:
            self._propose(value)

    def _on_accept(self, message: Message) -> None:
        ballot = message.body["ballot"]
        if ballot >= self.promised_ballot:
            self.promised_ballot = ballot
            slot = message.body["slot"]
            self.accepted[slot] = (ballot, message.body["value"])
            self.send(message.src, "accepted", {"ballot": ballot, "slot": slot})

    def _on_accepted(self, message: Message) -> None:
        ballot = message.body["ballot"]
        if ballot != self.ballot or not self.is_leader:
            return
        slot = message.body["slot"]
        voters = self.accept_counts.setdefault(slot, set())
        voters.add(message.src)
        if len(voters) == self.quorum:
            value = self.proposals[slot]
            for peer in self.peers:
                self.send(peer, "decide", {"slot": slot, "value": value})
            self._learn(slot, value)

    def _on_decide(self, message: Message) -> None:
        self._learn(message.body["slot"], message.body["value"])

    def _learn(self, slot: int, value: Any) -> None:
        if self.log.decide(slot, value) and self.on_decide is not None:
            self.on_decide(slot, value)


class PaxosCluster:
    """n-node Paxos group with a submit/committed interface."""

    def __init__(self, n: int = 5, network: Optional[SimNetwork] = None,
                 name_prefix: str = "paxos"):
        if n < 3:
            raise ProtocolError("Paxos needs at least 3 nodes for one failure")
        self.network = network or SimNetwork()
        self.names = [f"{name_prefix}-{i}" for i in range(n)]
        quorum = n // 2 + 1
        self.nodes: List[PaxosNode] = []
        for name in self.names:
            node = PaxosNode(name, peers=self.names, quorum=quorum)
            node.on_decide = self._record_decide
            self.network.add_node(node)
            self.nodes.append(node)
        self._results: List[ConsensusResult] = []
        self._by_value: Dict[str, ConsensusResult] = {}
        self._request_spans: Dict[str, Any] = {}
        self.leader = self.nodes[0]
        self.leader.start_election(ballot=1)
        self.network.run()

    def _record_decide(self, slot: int, value: Any) -> None:
        key = _value_key(value)
        result = self._by_value.get(key)
        if result is not None and result.decided_at is None:
            result.sequence = slot
            result.decided_at = self.network.clock.now()
        span = self._request_spans.pop(key, None)
        if span is not None:
            span.set_attribute("slot", slot)
            span.end(self.network.clock.now())

    def submit(self, value: Any) -> ConsensusResult:
        result = ConsensusResult(
            value=value, sequence=-1, submitted_at=self.network.clock.now()
        )
        self._results.append(result)
        self._by_value[_value_key(value)] = result
        tracer = self.network.tracer
        if tracer.enabled:
            # One span per decree: client request until first decide.
            self._request_spans[_value_key(value)] = tracer.start_trace(
                "paxos.request",
                start_time=self.network.clock.now(),
                attributes={"leader": self.leader.name},
            )
        self.leader.client_request(value)
        return result

    def elect(self, index: int) -> None:
        """Fail over to another node with a higher ballot."""
        for node in self.nodes:
            node.is_leader = False
        self.leader = self.nodes[index]
        tracer = self.network.tracer
        span = None
        if tracer.enabled:
            span = tracer.start_trace(
                "paxos.election",
                start_time=self.network.clock.now(),
                attributes={"leader": self.leader.name},
            )
        self.leader.start_election(ballot=self.leader.promised_ballot + 1)
        self.network.run()
        if span is not None:
            span.set_attribute("ballot", self.leader.ballot)
            span.set_attribute("won", self.leader.is_leader)
            span.end(self.network.clock.now())

    def crash(self, index: int) -> None:
        self.nodes[index].crashed = True

    def run(self, until: Optional[float] = None) -> None:
        self.network.run(until=until)

    def retry_pending(self) -> int:
        """Re-drive Phase 2 for any stuck slots (lossy-link recovery);
        returns the number of slots re-broadcast."""
        retried = self.leader.retry_pending()
        if retried:
            self.network.run()
        return retried

    def committed(self) -> List[Any]:
        return self.leader.log.committed_prefix()

    def stats(self) -> ClusterStats:
        return compute_stats(
            self._results,
            sim_duration=self.network.clock.now(),
            messages=self.network.message_count,
        )


def _value_key(value: Any) -> str:
    return repr(value)
