"""The pluggable replication driver layer (RC4, federated setting).

The staged pipeline's commit point used to be implicit: whatever order
``submit_many`` received was the order durability, apply, and anchoring
saw.  This module makes ordering an explicit, swappable layer.  A
:class:`ReplicationDriver` turns proposed update batches into a single
**decided batch stream** — a gap-free, totally ordered sequence of
:class:`DecidedBatch` records — and everything downstream of the
driver (DurabilityStage, ApplyStage, AnchorStage) runs only on that
stream:

    submit_many ──▶ driver.propose_batch(payload)
                         │   (ordering: local / Paxos / PBFT / SharPer
                         │    over SimNetwork)
                         ▼
                    driver.committed_stream() ──▶ DecidedBatch(seq, payload)
                         │
                         ▼
                    Pipeline.run_decided_batch  (auth → verify →
                    durability → apply → anchor, per replica)

Four drivers:

* :class:`LocalDriver` — the default: decides immediately in arrival
  order, transports nothing, byte-identical to the pre-refactor path.
* :class:`PaxosDriver` — multi-decree Paxos (crash fault tolerance,
  3n messages/decree) over :class:`~repro.net.simnet.SimNetwork`.
* :class:`PbftDriver` — Castro–Liskov PBFT (byzantine fault
  tolerance, O(n²) messages/decree).
* :class:`SharperDriver` — one PBFT shard of a SharPer-style
  :class:`~repro.chain.sharper.ShardedLedger`; several pipeline shards
  can share one ledger (and one simulated network), which is the
  paper's sharded-consensus deployment.

Batch payloads are the serving tier's canonical wire docs
(:func:`~repro.serve.protocol.update_to_wire`), so producer-signed
updates survive ordering with their signatures verifying on every
replica, and PBFT digests the exact bytes the replicas replay.

Consensus values may be decided *twice* under message loss (a
retransmitted command lands in a second slot) and PBFT view changes
fill gaps with no-ops; the driver de-duplicates by proposal key and
filters protocol filler, so consumers always see each proposed batch
exactly once, in one agreed order.  Observability: every driver
records ``consensus.propose`` / ``consensus.decide`` timers, proposed
and decided counters, and a ``consensus.committed_lag`` gauge into the
registry it is bound to (exported via the PR 2 /metrics plane), and
emits a ``consensus.propose`` span per batch when a tracer is bound.
"""

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.clock import WallClock
from repro.common.errors import ProtocolError
from repro.common.ids import make_id
from repro.net.simnet import SimNetwork, network_profile

_DRIVER_KINDS = ("local", "paxos", "pbft", "sharper")


@dataclass(frozen=True)
class DecidedBatch:
    """One decided entry of the replicated log: a dense sequence
    number (0, 1, 2, ... with no gaps) and the batch payload exactly
    as proposed."""

    sequence: int
    payload: Any


@dataclass(frozen=True)
class ReplicationPlan:
    """Declarative recipe for one shard's replication setup.

    ``kind`` picks the driver; ``replicas`` is how many state-machine
    replicas replay the decided stream (see
    :class:`~repro.core.replicated.ReplicatedShard`); ``nodes`` sizes a
    Paxos cluster; ``f`` is the PBFT/SharPer fault bound (n = 3f + 1);
    ``profile`` names a :data:`~repro.net.simnet.NETWORK_PROFILES`
    entry (or is a :class:`~repro.net.simnet.NetworkProfile`).
    """

    kind: str = "local"
    replicas: int = 2
    nodes: int = 3
    f: int = 1
    profile: Any = "lan"
    view_timeout: float = 5.0
    max_attempts: int = 8

    def __post_init__(self):
        if self.kind not in _DRIVER_KINDS:
            raise ProtocolError(
                f"unknown replication kind {self.kind!r}; "
                f"known: {list(_DRIVER_KINDS)}"
            )
        if self.replicas < 1:
            raise ProtocolError("replication needs at least one replica")

    def to_dict(self) -> dict:
        """Serializable form for artifacts and runbooks."""
        profile = self.profile
        return {
            "kind": self.kind,
            "replicas": self.replicas,
            "nodes": self.nodes,
            "f": self.f,
            "profile": getattr(profile, "name", profile),
        }


def resolve_plan(value) -> ReplicationPlan:
    """``None`` / a kind string / a :class:`ReplicationPlan` → plan."""
    if value is None:
        return ReplicationPlan(kind="local")
    if isinstance(value, ReplicationPlan):
        return value
    if isinstance(value, str):
        return ReplicationPlan(kind=value)
    raise ProtocolError(
        f"consensus plan must be a kind string or ReplicationPlan, "
        f"got {type(value).__name__}"
    )


class ReplicationDriver:
    """Orders proposed batch payloads into one decided batch stream.

    The contract every implementation honors:

    * :meth:`propose_batch` blocks until the payload is decided and
      returns its dense sequence number (fail-closed: raises
      :class:`~repro.common.errors.ProtocolError` if the cluster will
      not decide it);
    * :meth:`committed_stream` yields every decided batch past the
      driver's consumption cursor, exactly once, in sequence order;
    * :meth:`catch_up` re-reads the committed prefix from
      ``from_sequence`` (for replicas resynchronizing after a crash);
    * :meth:`stats` reports ordering throughput/latency for the bench
      harness.
    """

    name = "replication"
    #: Whether payloads cross a (simulated) network — if True the
    #: pipeline wire-encodes updates and every replica decodes fresh
    #: objects; the LocalDriver passes caller objects straight through.
    transports = True

    def __init__(self):
        self._log: List[DecidedBatch] = []
        self._seq_by_key: Dict[str, int] = {}
        self._seen: set = set()
        self._raw_cursor = 0     # consumed cluster committed-prefix entries
        self._stream_cursor = 0  # consumer position in the deduped log
        self._proposed = 0
        self._origin = make_id("rep")
        self._wall = WallClock()
        self._propose_starts: Dict[int, float] = {}
        self._metrics = None
        self._tracer = None
        self._tmr_propose = None
        self._tmr_decide = None
        self._ctr_proposed = None
        self._ctr_decided = None
        self._gauge_lag = None

    # -- observability ----------------------------------------------------

    def bind_observability(self, metrics=None, tracer=None) -> None:
        """Attach the obs plane: ``consensus.*`` timers/counters/gauge
        go into ``metrics``; propose spans onto ``tracer``."""
        if metrics is not None:
            self._metrics = metrics
            self._tmr_propose = metrics.timer("consensus.propose")
            self._tmr_decide = metrics.timer("consensus.decide")
            self._ctr_proposed = metrics.counter("consensus.batches_proposed")
            self._ctr_decided = metrics.counter("consensus.batches_decided")
            self._gauge_lag = metrics.gauge("consensus.committed_lag")
        if tracer is not None and getattr(tracer, "enabled", False):
            self._tracer = tracer

    def _note_lag(self) -> None:
        if self._gauge_lag is not None:
            self._gauge_lag.set(len(self._log) - self._stream_cursor)

    # -- payload codecs ---------------------------------------------------

    def encode_batch(self, updates: Sequence) -> dict:
        """Updates → the proposed payload (canonical wire docs, so
        signatures survive ordering and replicas replay identical
        bytes)."""
        from repro.serve.protocol import update_to_wire

        return {"updates": [update_to_wire(u) for u in updates]}

    def decode_batch(self, payload: dict) -> list:
        """Decided payload → fresh :class:`~repro.model.update.Update`
        objects.  Called once per replica: the pipeline mutates update
        state, so decided batches must never share objects across
        replicas."""
        from repro.serve.protocol import update_from_wire

        return [update_from_wire(doc) for doc in payload["updates"]]

    # -- the driver API ---------------------------------------------------

    def propose_batch(self, payload) -> int:
        """Order one batch payload; returns its decided sequence."""
        key = f"{self._origin}:{self._proposed}"
        self._proposed += 1
        start = self._wall.now()
        span = None
        if self._tracer is not None:
            span = self._tracer.start_trace(
                "consensus.propose",
                attributes={"driver": self.name, "key": key},
            )
        try:
            sequence = self._order(key, payload)
        except Exception:
            if span is not None:
                span.set_status("error").end()
            raise
        elapsed = self._wall.now() - start
        self._propose_starts[sequence] = start
        if self._tmr_propose is not None:
            self._tmr_propose.record(elapsed)
            self._ctr_proposed.add()
            self._note_lag()
        if span is not None:
            span.set_attribute("sequence", sequence)
            span.end()
        return sequence

    def committed_stream(self) -> Iterator[DecidedBatch]:
        """Yield decided batches this consumer has not seen yet."""
        self._refresh()
        while self._stream_cursor < len(self._log):
            batch = self._log[self._stream_cursor]
            self._stream_cursor += 1
            if self._tmr_decide is not None:
                started = self._propose_starts.pop(batch.sequence, None)
                if started is not None:
                    self._tmr_decide.record(self._wall.now() - started)
                self._ctr_decided.add()
                self._note_lag()
            yield batch

    def catch_up(self, from_sequence: int = 0) -> List[DecidedBatch]:
        """The committed prefix from ``from_sequence`` on — the resync
        path for a replica rejoining after a crash."""
        self._refresh()
        if from_sequence < 0:
            raise ProtocolError("catch_up needs a non-negative sequence")
        return list(self._log[from_sequence:])

    @property
    def proposed_count(self) -> int:
        return self._proposed

    @property
    def decided_count(self) -> int:
        self._refresh()
        return len(self._log)

    def stats(self) -> dict:
        """Ordering statistics for the bench harness."""
        return {
            "driver": self.name,
            "proposed": self._proposed,
            "decided": len(self._log),
            "delivered": self._stream_cursor,
        }

    def close(self) -> None:
        """Release driver resources (a no-op for simulations)."""

    # -- implementation hooks ---------------------------------------------

    def _order(self, key: str, payload) -> int:
        raise NotImplementedError

    def _refresh(self) -> None:
        """Pull newly committed cluster entries into the deduped log."""


class LocalDriver(ReplicationDriver):
    """The default driver: no cluster, no network — batches decide in
    arrival order, immediately, and payloads pass through untouched
    (caller objects, not wire copies).  Byte-identical to the
    pre-driver pipeline; everything else about the decided-stream
    contract (dense sequences, ``catch_up``, stats) still holds, so a
    replicated shard over a LocalDriver exercises the same replay
    machinery the consensus drivers do."""

    name = "local"
    transports = False

    def encode_batch(self, updates: Sequence) -> dict:
        return {"updates": list(updates)}

    def decode_batch(self, payload: dict) -> list:
        return list(payload["updates"])

    def _order(self, key: str, payload) -> int:
        sequence = len(self._log)
        self._log.append(DecidedBatch(sequence, payload))
        return sequence


class _ClusterDriver(ReplicationDriver):
    """Shared machinery for drivers backed by a simulated cluster.

    Proposals are wrapped as ``{"rep": key, "payload": ...}`` so the
    committed prefix can be de-duplicated (loss-driven retransmits may
    decide a command in two slots) and protocol filler (PBFT view
    change no-ops, equivocation decoys) filtered out.  ``propose``
    retries up to ``max_attempts`` times on a lossy network, re-driving
    stuck slots via :meth:`_recover_pending` between attempts.
    """

    def __init__(self, max_attempts: int = 8):
        super().__init__()
        if max_attempts < 1:
            raise ProtocolError("max_attempts must be positive")
        self.max_attempts = max_attempts

    # subclasses provide: _submit(wrapped), _run(), _committed_values(),
    # and optionally _recover_pending().

    def _recover_pending(self) -> None:
        """Hook between retry attempts (e.g. Paxos slot re-drive)."""

    def _order(self, key: str, payload) -> int:
        wrapped = {"rep": key, "payload": payload}
        for attempt in range(self.max_attempts):
            if attempt > 0:
                self._recover_pending()
                self._refresh()
                sequence = self._seq_by_key.get(key)
                if sequence is not None:
                    return sequence
            self._submit(wrapped)
            self._run()
            self._refresh()
            sequence = self._seq_by_key.get(key)
            if sequence is not None:
                return sequence
        raise ProtocolError(
            f"{self.name}: batch {key} not decided after "
            f"{self.max_attempts} attempts"
        )

    def _extract(self, value) -> Tuple[Optional[str], Any]:
        """A committed cluster value → (proposal key, payload), or
        ``(None, None)`` for filler the stream must skip."""
        if isinstance(value, dict) and "rep" in value:
            return value["rep"], value["payload"]
        return None, None

    def _refresh(self) -> None:
        values = self._committed_values()
        while self._raw_cursor < len(values):
            value = values[self._raw_cursor]
            self._raw_cursor += 1
            key, payload = self._extract(value)
            if key is None or key in self._seen:
                continue
            self._seen.add(key)
            sequence = len(self._log)
            self._seq_by_key[key] = sequence
            self._log.append(DecidedBatch(sequence, payload))

    def _submit(self, wrapped: dict) -> None:
        raise NotImplementedError

    def _run(self) -> None:
        raise NotImplementedError

    def _committed_values(self) -> list:
        raise NotImplementedError


def _build_network(network, profile, metrics, tracer) -> SimNetwork:
    if network is not None:
        return network
    return network_profile(profile).build(metrics=metrics, tracer=tracer)


class PaxosDriver(_ClusterDriver):
    """Ordering via multi-decree Paxos (crash fault tolerance)."""

    name = "paxos"

    def __init__(self, nodes: int = 3, network: Optional[SimNetwork] = None,
                 profile="lan", metrics=None, tracer=None,
                 max_attempts: int = 8):
        super().__init__(max_attempts=max_attempts)
        from repro.consensus.paxos import PaxosCluster

        net = _build_network(network, profile, metrics, tracer)
        self.cluster = PaxosCluster(n=nodes, network=net,
                                    name_prefix=f"paxos-{self._origin}")

    def _submit(self, wrapped: dict) -> None:
        self.cluster.submit(wrapped)

    def _run(self) -> None:
        self.cluster.run()

    def _committed_values(self) -> list:
        return self.cluster.committed()

    def _recover_pending(self) -> None:
        self.cluster.retry_pending()

    def stats(self) -> dict:
        out = super().stats()
        out["cluster"] = self.cluster.stats().to_dict()
        return out


class PbftDriver(_ClusterDriver):
    """Ordering via three-phase PBFT (byzantine fault tolerance)."""

    name = "pbft"

    def __init__(self, f: int = 1, network: Optional[SimNetwork] = None,
                 profile="lan", metrics=None, tracer=None,
                 view_timeout: float = 5.0, max_attempts: int = 8):
        super().__init__(max_attempts=max_attempts)
        from repro.consensus.pbft import PBFTCluster

        net = _build_network(network, profile, metrics, tracer)
        self.cluster = PBFTCluster(f=f, network=net,
                                   name_prefix=f"pbft-{self._origin}",
                                   view_timeout=view_timeout)

    def _submit(self, wrapped: dict) -> None:
        self.cluster.submit(wrapped)

    def _run(self) -> None:
        self.cluster.run()

    def _committed_values(self) -> list:
        return self.cluster.committed()

    def stats(self) -> dict:
        out = super().stats()
        out["cluster"] = self.cluster.stats().to_dict()
        return out


class SharperDriver(_ClusterDriver):
    """Ordering via one shard of a SharPer-style sharded ledger.

    Pass a shared :class:`~repro.chain.sharper.ShardedLedger` (plus
    this driver's ``shard`` name) to co-locate several pipeline shards
    on one simulated network — disjoint shards then order in parallel,
    which is SharPer's scaling argument.  With no ledger given the
    driver builds a single-shard one of its own.
    """

    name = "sharper"

    def __init__(self, ledger=None, shard: str = "s0", f: int = 1,
                 network: Optional[SimNetwork] = None, profile="lan",
                 metrics=None, tracer=None, max_attempts: int = 8):
        super().__init__(max_attempts=max_attempts)
        from repro.chain.sharper import ShardedLedger

        if ledger is None:
            net = _build_network(network, profile, metrics, tracer)
            ledger = ShardedLedger([shard], f=f, network=net)
        self.ledger = ledger
        self.shard = shard
        self.cluster = self.ledger.shards[shard]

    def _submit(self, wrapped: dict) -> None:
        self.ledger.submit_intra(self.shard, wrapped)

    def _run(self) -> None:
        self.ledger.run()

    def _committed_values(self) -> list:
        return self.cluster.committed()

    def _extract(self, value) -> Tuple[Optional[str], Any]:
        # Intra-shard entries arrive as {"tx_id", "shard", "payload"};
        # only payloads carrying our proposal wrapper belong to the
        # decided stream (cross-shard bodies and no-ops are filler
        # from this driver's point of view).
        if isinstance(value, dict):
            inner = value.get("payload")
            if isinstance(inner, dict) and "rep" in inner:
                return inner["rep"], inner["payload"]
        return None, None

    def stats(self) -> dict:
        out = super().stats()
        out["shard"] = self.shard
        out["cluster"] = self.cluster.stats().to_dict()
        return out


def make_driver(plan: ReplicationPlan, metrics=None, tracer=None,
                network: Optional[SimNetwork] = None,
                sharper_ledger=None,
                sharper_shard: str = "s0") -> ReplicationDriver:
    """Build the driver a :class:`ReplicationPlan` describes.

    ``sharper_ledger``/``sharper_shard`` let a coordinator co-locate
    several sharper-backed shards on one shared ledger; they are
    ignored for other kinds.
    """
    plan = resolve_plan(plan)
    if plan.kind == "local":
        driver = LocalDriver()
    elif plan.kind == "paxos":
        driver = PaxosDriver(nodes=plan.nodes, network=network,
                             profile=plan.profile, metrics=metrics,
                             tracer=tracer, max_attempts=plan.max_attempts)
    elif plan.kind == "pbft":
        driver = PbftDriver(f=plan.f, network=network, profile=plan.profile,
                            metrics=metrics, tracer=tracer,
                            view_timeout=plan.view_timeout,
                            max_attempts=plan.max_attempts)
    else:
        driver = SharperDriver(ledger=sharper_ledger, shard=sharper_shard,
                               f=plan.f, network=network,
                               profile=plan.profile, metrics=metrics,
                               tracer=tracer, max_attempts=plan.max_attempts)
    driver.bind_observability(metrics, tracer)
    return driver
