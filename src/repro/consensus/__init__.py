"""Consensus protocols over the simulated network.

The paper's evaluation methodology (Section 6) asks distributed PReVer
instantiations to be compared in throughput and latency against Paxos
(crash fault tolerance) and PBFT (Byzantine fault tolerance).  Both are
implemented from scratch over :class:`repro.net.SimNetwork`:

* :mod:`repro.consensus.paxos` — multi-decree Paxos with a stable
  leader (one Phase-1 per ballot, Phase-2 per decree);
* :mod:`repro.consensus.pbft` — three-phase PBFT (pre-prepare /
  prepare / commit) with view changes and byzantine-replica hooks.

Both clusters expose the same interface (``submit``, ``committed``),
so the benchmark harness measures them identically.

:mod:`repro.consensus.driver` lifts them into the update path: a
:class:`~repro.consensus.driver.ReplicationDriver` orders canonical
batch payloads into one decided stream that the staged pipeline's
durability/apply/anchor stages consume (``LocalDriver`` is the
byte-identical default; ``PaxosDriver`` / ``PbftDriver`` /
``SharperDriver`` replicate a shard's ledger over SimNetwork).
"""

from repro.consensus.base import ConsensusResult, ClusterStats
from repro.consensus.driver import (
    DecidedBatch,
    LocalDriver,
    PaxosDriver,
    PbftDriver,
    ReplicationDriver,
    ReplicationPlan,
    SharperDriver,
    make_driver,
    resolve_plan,
)
from repro.consensus.paxos import PaxosCluster
from repro.consensus.pbft import PBFTCluster

__all__ = [
    "ConsensusResult",
    "ClusterStats",
    "PaxosCluster",
    "PBFTCluster",
    "ReplicationDriver",
    "ReplicationPlan",
    "DecidedBatch",
    "LocalDriver",
    "PaxosDriver",
    "PbftDriver",
    "SharperDriver",
    "make_driver",
    "resolve_plan",
]
