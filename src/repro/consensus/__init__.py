"""Consensus protocols over the simulated network.

The paper's evaluation methodology (Section 6) asks distributed PReVer
instantiations to be compared in throughput and latency against Paxos
(crash fault tolerance) and PBFT (Byzantine fault tolerance).  Both are
implemented from scratch over :class:`repro.net.SimNetwork`:

* :mod:`repro.consensus.paxos` — multi-decree Paxos with a stable
  leader (one Phase-1 per ballot, Phase-2 per decree);
* :mod:`repro.consensus.pbft` — three-phase PBFT (pre-prepare /
  prepare / commit) with view changes and byzantine-replica hooks.

Both clusters expose the same interface (``submit``, ``committed``),
so the benchmark harness measures them identically.
"""

from repro.consensus.base import ConsensusResult, ClusterStats
from repro.consensus.paxos import PaxosCluster
from repro.consensus.pbft import PBFTCluster

__all__ = ["ConsensusResult", "ClusterStats", "PaxosCluster", "PBFTCluster"]
