"""Benchmark workloads (Section 6 of the paper).

"Comparisons should be performed with respect to non-private solutions
using standardized database benchmarks like TPC and YCSB."

* :mod:`repro.workloads.ycsb` — YCSB core workloads A–F with Zipfian
  key selection;
* :mod:`repro.workloads.tpcc` — a simplified TPC-C (NEW-ORDER and
  PAYMENT over warehouse/district/customer/stock);
* :mod:`repro.workloads.streams` — update-arrival generators (Poisson
  and bursty) for the DP-budget and DP-Sync experiments.
"""

from repro.workloads.ycsb import YCSBWorkload, YCSBOperation, WORKLOAD_MIXES
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.streams import poisson_arrivals, bursty_arrivals

__all__ = [
    "YCSBWorkload",
    "YCSBOperation",
    "WORKLOAD_MIXES",
    "TPCCWorkload",
    "poisson_arrivals",
    "bursty_arrivals",
]
