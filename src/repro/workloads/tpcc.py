"""A simplified TPC-C for the constraint-layer comparison (bench E12).

Implements the two transactions that make up ~88% of the standard mix —
NEW-ORDER (45%) and PAYMENT (43%) — over the warehouse / district /
customer / item / stock tables, scaled down for a Python simulator.
The consistency conditions TPC-C mandates (W_YTD = sum of D_YTD;
stock never negative) are expressed as PReVer constraints so the bench
can run the same workload with and without the regulated-update layer.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.randomness import deterministic_rng
from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema

WAREHOUSE = TableSchema.build(
    "warehouse",
    [("w_id", ColumnType.INT), ("w_ytd", ColumnType.INT)],
    primary_key=["w_id"],
)
DISTRICT = TableSchema.build(
    "district",
    [
        ("d_id", ColumnType.INT),
        ("d_w_id", ColumnType.INT),
        ("d_ytd", ColumnType.INT),
        ("d_next_o_id", ColumnType.INT),
    ],
    primary_key=["d_w_id", "d_id"],
)
CUSTOMER = TableSchema.build(
    "customer",
    [
        ("c_id", ColumnType.INT),
        ("c_d_id", ColumnType.INT),
        ("c_w_id", ColumnType.INT),
        ("c_balance", ColumnType.INT),
        ("c_ytd_payment", ColumnType.INT),
    ],
    primary_key=["c_w_id", "c_d_id", "c_id"],
)
ITEM = TableSchema.build(
    "item",
    [("i_id", ColumnType.INT), ("i_price", ColumnType.INT)],
    primary_key=["i_id"],
)
STOCK = TableSchema.build(
    "stock",
    [
        ("s_i_id", ColumnType.INT),
        ("s_w_id", ColumnType.INT),
        ("s_quantity", ColumnType.INT),
    ],
    primary_key=["s_w_id", "s_i_id"],
)
ORDERS = TableSchema.build(
    "orders",
    [
        ("o_id", ColumnType.INT),
        ("o_d_id", ColumnType.INT),
        ("o_w_id", ColumnType.INT),
        ("o_c_id", ColumnType.INT),
        ("o_ol_cnt", ColumnType.INT),
        ("o_total", ColumnType.INT),
    ],
    primary_key=["o_w_id", "o_d_id", "o_id"],
)


@dataclass
class TxStats:
    new_orders: int = 0
    payments: int = 0
    rollbacks: int = 0


class TPCCWorkload:
    """Loader + transaction driver over a :class:`Database`."""

    def __init__(
        self,
        warehouses: int = 2,
        districts_per_warehouse: int = 3,
        customers_per_district: int = 20,
        items: int = 100,
        seed: int = 21,
    ):
        self.warehouses = warehouses
        self.districts = districts_per_warehouse
        self.customers = customers_per_district
        self.items = items
        self._rng = deterministic_rng(seed)
        self.stats = TxStats()

    def load(self, database: Database) -> None:
        for schema in (WAREHOUSE, DISTRICT, CUSTOMER, ITEM, STOCK, ORDERS):
            database.create_table(schema)
        for w in range(1, self.warehouses + 1):
            database.insert("warehouse", {"w_id": w, "w_ytd": 0})
            for d in range(1, self.districts + 1):
                database.insert(
                    "district",
                    {"d_id": d, "d_w_id": w, "d_ytd": 0, "d_next_o_id": 1},
                )
                for c in range(1, self.customers + 1):
                    database.insert(
                        "customer",
                        {
                            "c_id": c,
                            "c_d_id": d,
                            "c_w_id": w,
                            "c_balance": 0,
                            "c_ytd_payment": 0,
                        },
                    )
            for i in range(1, self.items + 1):
                database.insert(
                    "stock",
                    {"s_i_id": i, "s_w_id": w,
                     "s_quantity": 50 + self._rng.randbelow(50)},
                )
        for i in range(1, self.items + 1):
            database.insert("item", {"i_id": i, "i_price": 1 + self._rng.randbelow(100)})

    # -- transactions ------------------------------------------------------

    def _pick(self) -> Tuple[int, int, int]:
        w = 1 + self._rng.randbelow(self.warehouses)
        d = 1 + self._rng.randbelow(self.districts)
        c = 1 + self._rng.randbelow(self.customers)
        return w, d, c

    def new_order(self, database: Database) -> bool:
        """NEW-ORDER: allocate an order id, decrement stock for 5-15
        order lines, insert the order.  Rolls back (returns False) if
        any line would drive stock negative — the TPC-C constraint the
        regulated run expresses as a PReVer predicate."""
        w, d, c = self._pick()
        district = database.table("district").get((w, d))
        o_id = district["d_next_o_id"]
        line_count = 5 + self._rng.randbelow(11)
        demanded: Dict[int, int] = {}
        total = 0
        for _ in range(line_count):
            i_id = 1 + self._rng.randbelow(self.items)
            quantity = 1 + self._rng.randbelow(10)
            demanded[i_id] = demanded.get(i_id, 0) + quantity
            total += database.table("item").get((i_id,))["i_price"] * quantity
        for i_id, quantity in demanded.items():
            stock = database.table("stock").get((w, i_id))
            if stock["s_quantity"] < quantity:
                self.stats.rollbacks += 1
                return False
        for i_id, quantity in demanded.items():
            stock = database.table("stock").get((w, i_id))
            database.update(
                "stock", (w, i_id),
                {"s_quantity": stock["s_quantity"] - quantity},
            )
        database.update("district", (w, d), {"d_next_o_id": o_id + 1})
        database.insert(
            "orders",
            {"o_id": o_id, "o_d_id": d, "o_w_id": w, "o_c_id": c,
             "o_ol_cnt": line_count, "o_total": total},
        )
        self.stats.new_orders += 1
        return True

    def payment(self, database: Database) -> bool:
        """PAYMENT: add to warehouse/district YTD and customer balance."""
        w, d, c = self._pick()
        amount = 1 + self._rng.randbelow(5000)
        warehouse = database.table("warehouse").get((w,))
        database.update("warehouse", (w,), {"w_ytd": warehouse["w_ytd"] + amount})
        district = database.table("district").get((w, d))
        database.update("district", (w, d), {"d_ytd": district["d_ytd"] + amount})
        customer = database.table("customer").get((w, d, c))
        database.update(
            "customer", (w, d, c),
            {
                "c_balance": customer["c_balance"] - amount,
                "c_ytd_payment": customer["c_ytd_payment"] + amount,
            },
        )
        self.stats.payments += 1
        return True

    def run_mix(self, database: Database, transactions: int = 1000) -> TxStats:
        """The NEW-ORDER/PAYMENT mix (51/49 once scaled to two txs)."""
        for _ in range(transactions):
            if self._rng.randbelow(100) < 51:
                self.new_order(database)
            else:
                self.payment(database)
        return self.stats

    # -- TPC-C consistency conditions (checked by tests/benches) -------------

    @staticmethod
    def check_consistency(database: Database) -> bool:
        """W_YTD == SUM(D_YTD) per warehouse; stock non-negative."""
        for warehouse in database.table("warehouse").rows():
            w = warehouse["w_id"]
            district_sum = sum(
                d["d_ytd"]
                for d in database.table("district").rows()
                if d["d_w_id"] == w
            )
            if warehouse["w_ytd"] != district_sum:
                return False
        return all(
            s["s_quantity"] >= 0 for s in database.table("stock").rows()
        )
