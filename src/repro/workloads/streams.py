"""Update-arrival generators for the dynamic-data experiments.

The DP-budget exhaustion bench (E4) and the DP-Sync pattern-hiding
analysis need realistic arrival processes:

* :func:`poisson_arrivals` — memoryless arrivals at a given rate;
* :func:`bursty_arrivals` — an on/off process (bursts of activity
  separated by silences), the pattern DP-Sync exists to hide.
"""

import math
from typing import Iterator, List

from repro.common.randomness import deterministic_rng


def poisson_arrivals(rate: float, duration: float, seed: int = 5) -> List[float]:
    """Arrival timestamps of a Poisson process over [0, duration)."""
    if rate <= 0:
        return []
    rng = deterministic_rng(seed)
    arrivals: List[float] = []
    t = 0.0
    while True:
        u = (rng.randbelow(2**53 - 2) + 1) / 2**53
        t += -math.log(u) / rate
        if t >= duration:
            break
        arrivals.append(t)
    return arrivals


def bursty_arrivals(
    burst_rate: float,
    burst_length: float,
    silence_length: float,
    duration: float,
    seed: int = 6,
) -> List[float]:
    """On/off arrivals: Poisson at ``burst_rate`` during bursts,
    nothing during silences."""
    rng_seed = seed
    arrivals: List[float] = []
    window_start = 0.0
    while window_start < duration:
        burst_end = min(window_start + burst_length, duration)
        for t in poisson_arrivals(burst_rate, burst_end - window_start,
                                  seed=rng_seed):
            arrivals.append(window_start + t)
        rng_seed += 1
        window_start = burst_end + silence_length
    return arrivals


def interarrival_histogram(arrivals: List[float], bins: int = 10) -> List[int]:
    """Histogram of inter-arrival gaps — the timing signature an
    adversary extracts from an unprotected update stream."""
    if len(arrivals) < 2:
        return [0] * bins
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    top = max(gaps) or 1.0
    histogram = [0] * bins
    for gap in gaps:
        index = min(bins - 1, int(gap / top * bins))
        histogram[index] += 1
    return histogram
