"""YCSB core workloads A–F.

Standard mixes over a keyed record table:

====  =========================  ==========================
name  mix                        example (per YCSB paper)
====  =========================  ==========================
A     50% read / 50% update      session store
B     95% read / 5% update       photo tagging
C     100% read                  user profile cache
D     95% read / 5% insert       user status updates (latest)
E     95% scan / 5% insert       threaded conversations
F     50% read / 50% RMW         user database
====  =========================  ==========================

Key selection is Zipfian (the YCSB default) via a seeded sampler.
The generator emits abstract operations; executors in the benches run
them against a plaintext :class:`~repro.database.Database` or a
privacy-enabled PReVer pipeline so the private-vs-plaintext comparison
is apples-to-apples.
"""

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.randomness import deterministic_rng

WORKLOAD_MIXES: Dict[str, Dict[str, float]] = {
    "A": {"read": 0.5, "update": 0.5},
    "B": {"read": 0.95, "update": 0.05},
    "C": {"read": 1.0},
    "D": {"read": 0.95, "insert": 0.05},
    "E": {"scan": 0.95, "insert": 0.05},
    "F": {"read": 0.5, "rmw": 0.5},
}


class YCSBOperation(enum.Enum):
    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    SCAN = "scan"
    RMW = "rmw"


@dataclass(frozen=True)
class YCSBOp:
    op: YCSBOperation
    key: int
    value: Optional[int] = None
    scan_length: int = 0


class ZipfianSampler:
    """Zipfian(θ) over [0, n) with the standard rejection-free inverse
    method (Gray et al.), matching YCSB's generator."""

    def __init__(self, n: int, theta: float = 0.99, seed: int = 7):
        if n < 1:
            raise ValueError("need at least one item")
        self.n = n
        self.theta = theta
        self._rng = deterministic_rng(seed)
        self.zetan = sum(1.0 / (i ** theta) for i in range(1, n + 1))
        self.zeta2 = 1.0 + 2.0 ** -theta
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = (1 - (2.0 / n) ** (1 - theta)) / (1 - self.zeta2 / self.zetan)

    def sample(self) -> int:
        u = (self._rng.randbelow(2**53) + 0.5) / 2**53
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < self.zeta2:
            return 1
        return int(self.n * (self.eta * u - self.eta + 1) ** self.alpha)


class YCSBWorkload:
    """Generates an operation stream for one workload letter."""

    def __init__(
        self,
        workload: str = "A",
        record_count: int = 1000,
        operation_count: int = 10_000,
        zipf_theta: float = 0.99,
        max_scan_length: int = 20,
        seed: int = 7,
    ):
        workload = workload.upper()
        if workload not in WORKLOAD_MIXES:
            raise ValueError(f"unknown YCSB workload {workload!r}")
        self.workload = workload
        self.mix = WORKLOAD_MIXES[workload]
        self.record_count = record_count
        self.operation_count = operation_count
        self.max_scan_length = max_scan_length
        self._rng = deterministic_rng(seed)
        self._zipf = ZipfianSampler(record_count, zipf_theta, seed=seed + 1)
        self._next_insert_key = record_count

    def initial_records(self) -> Iterator[Tuple[int, int]]:
        """(key, value) pairs for the load phase."""
        for key in range(self.record_count):
            yield key, self._rng.randbelow(1_000_000)

    def operations(self) -> Iterator[YCSBOp]:
        thresholds: List[Tuple[float, str]] = []
        cumulative = 0.0
        for name, fraction in self.mix.items():
            cumulative += fraction
            thresholds.append((cumulative, name))
        for _ in range(self.operation_count):
            u = (self._rng.randbelow(10**9) + 0.5) / 10**9
            for threshold, name in thresholds:
                if u <= threshold:
                    yield self._make_op(name)
                    break

    def _make_op(self, name: str) -> YCSBOp:
        if name == "insert":
            key = self._next_insert_key
            self._next_insert_key += 1
            return YCSBOp(YCSBOperation.INSERT, key,
                          value=self._rng.randbelow(1_000_000))
        key = min(self._zipf.sample(), self.record_count - 1)
        if name == "read":
            return YCSBOp(YCSBOperation.READ, key)
        if name == "update":
            return YCSBOp(YCSBOperation.UPDATE, key,
                          value=self._rng.randbelow(1_000_000))
        if name == "scan":
            return YCSBOp(YCSBOperation.SCAN, key,
                          scan_length=1 + self._rng.randbelow(self.max_scan_length))
        if name == "rmw":
            return YCSBOp(YCSBOperation.RMW, key,
                          value=self._rng.randbelow(1_000_000))
        raise ValueError(name)
