"""Path ORAM — hiding the access pattern from the storage server.

The RC1 engines admit ACCESS_PATTERN leakage: the honest-but-curious
manager sees *which rows* each update touches, which over time reveals
group membership and activity frequencies even when every value is
encrypted.  Path ORAM (Stefanov et al.) closes this channel:

* blocks live in a binary tree of buckets (Z slots each) on the
  server; a client-side position map assigns each block a random leaf,
  with the invariant that a block is always somewhere on the path from
  the root to its leaf (or in the client stash);
* every access — read or write, any block — (1) remaps the block to a
  fresh uniform leaf, (2) reads one full root-to-leaf path into the
  stash, (3) serves the block, (4) writes the path back, greedily
  pushing stash blocks as deep as their leaf assignments allow.

The server's entire view is a sequence of uniformly random path
indices, independent of the logical access sequence — asserted by the
tests via the recorded server transcript.  Bandwidth is O(log N)
blocks per access; bench E15 measures the overhead against direct
access.
"""

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import PReVerError
from repro.common.randomness import SystemRandomSource


class ORAMError(PReVerError):
    pass


@dataclass
class _Block:
    block_id: int
    data: Any


class _ORAMServer:
    """The untrusted storage: a flat array of tree buckets.

    In a deployment each slot holds a fixed-size ciphertext; the
    simulator stores the (client-encrypted) payloads opaquely and logs
    every path index it is asked for — its complete view.
    """

    def __init__(self, levels: int, bucket_size: int):
        self.levels = levels
        self.bucket_size = bucket_size
        self._buckets: List[List[_Block]] = [
            [] for _ in range((1 << levels) - 1)
        ]
        self.access_log: List[Tuple[str, int]] = []

    def read_path(self, leaf: int) -> List[_Block]:
        self.access_log.append(("read", leaf))
        blocks: List[_Block] = []
        for bucket_index in self._path_indices(leaf):
            blocks.extend(self._buckets[bucket_index])
            self._buckets[bucket_index] = []
        return blocks

    def write_path(self, leaf: int, per_bucket: List[List[_Block]]) -> None:
        self.access_log.append(("write", leaf))
        for bucket_index, blocks in zip(self._path_indices(leaf), per_bucket):
            if len(blocks) > self.bucket_size:
                raise ORAMError("bucket overflow on write-back")
            self._buckets[bucket_index] = list(blocks)

    def _path_indices(self, leaf: int) -> List[int]:
        """Bucket indices from root (level 0) to the leaf bucket."""
        indices = []
        node = leaf + (1 << (self.levels - 1)) - 1  # leaf's tree index
        for _ in range(self.levels):
            indices.append(node)
            node = (node - 1) // 2
        return list(reversed(indices))


class PathORAM:
    """Client-side Path ORAM over an untrusted :class:`_ORAMServer`."""

    def __init__(self, capacity: int, bucket_size: int = 4, rng=None):
        if capacity < 1:
            raise ORAMError("capacity must be positive")
        self._rng = rng or SystemRandomSource()
        levels = 1
        while (1 << (levels - 1)) < capacity:
            levels += 1
        self.levels = levels
        self.leaves = 1 << (levels - 1)
        self.capacity = capacity
        self.server = _ORAMServer(levels, bucket_size)
        self.bucket_size = bucket_size
        self._position: Dict[int, int] = {}
        self._stash: Dict[int, _Block] = {}
        self.accesses = 0

    # -- public API ----------------------------------------------------

    def read(self, block_id: int) -> Optional[Any]:
        return self._access(block_id, None, is_write=False)

    def write(self, block_id: int, data: Any) -> None:
        self._access(block_id, data, is_write=True)

    @property
    def stash_size(self) -> int:
        return len(self._stash)

    # -- the Path ORAM access procedure -----------------------------------

    def _access(self, block_id: int, new_data: Any, is_write: bool):
        if not 0 <= block_id < self.capacity:
            raise ORAMError("block id out of range")
        self.accesses += 1
        old_leaf = self._position.get(block_id)
        if old_leaf is None:
            old_leaf = self._rng.randbelow(self.leaves)
        # Remap before touching the server (the fresh leaf is secret).
        new_leaf = self._rng.randbelow(self.leaves)
        self._position[block_id] = new_leaf

        # Read the old path into the stash.
        for block in self.server.read_path(old_leaf):
            self._stash[block.block_id] = block

        target = self._stash.get(block_id)
        result = target.data if target is not None else None
        if is_write:
            self._stash[block_id] = _Block(block_id, new_data)

        # Write the path back, placing stash blocks as deep as allowed.
        self._write_back(old_leaf)
        return result

    def _write_back(self, leaf: int) -> None:
        per_bucket: List[List[_Block]] = [[] for _ in range(self.levels)]
        # Deepest buckets first so blocks sink as far as possible.
        for level in reversed(range(self.levels)):
            for block_id in list(self._stash):
                if len(per_bucket[level]) >= self.bucket_size:
                    break
                block_leaf = self._position.get(block_id)
                if block_leaf is None:
                    continue
                if self._paths_intersect_at(leaf, block_leaf, level):
                    per_bucket[level].append(self._stash.pop(block_id))
        self.server.write_path(leaf, per_bucket)

    def _paths_intersect_at(self, leaf_a: int, leaf_b: int, level: int) -> bool:
        """Whether both leaves' root paths share the bucket at ``level``
        (level 0 = root, always shared)."""
        shift = (self.levels - 1) - level
        return (leaf_a >> shift) == (leaf_b >> shift)

    # -- analysis hooks -------------------------------------------------------

    def server_view(self) -> List[Tuple[str, int]]:
        return list(self.server.access_log)

    def leaf_access_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for _, leaf in self.server.access_log:
            histogram[leaf] = histogram.get(leaf, 0) + 1
        return histogram


class ObliviousKV:
    """A tiny key-value store with oblivious access — the shape a
    PReVer data manager would host for an access-pattern-sensitive
    owner.  Keys are mapped to ORAM block ids client-side."""

    def __init__(self, capacity: int = 64, rng=None):
        self._oram = PathORAM(capacity, rng=rng)
        self._key_to_block: Dict[str, int] = {}
        self._next_block = 0

    def put(self, key: str, value: Any) -> None:
        block = self._key_to_block.get(key)
        if block is None:
            if self._next_block >= self._oram.capacity:
                raise ORAMError("store is full")
            block = self._next_block
            self._next_block += 1
            self._key_to_block[key] = block
        self._oram.write(block, value)

    def get(self, key: str) -> Optional[Any]:
        block = self._key_to_block.get(key)
        if block is None:
            # Dummy access so misses are indistinguishable from hits.
            self._oram.read(self._oram.accesses % self._oram.capacity)
            return None
        return self._oram.read(block)

    def server_view(self):
        return self._oram.server_view()
