"""A trusted-hardware (enclave) simulator — RC1's third alternative.

The paper: "To improve the performance of updates, secure hardware,
i.e., hardware protected computation can be used.  However, secure
hardware has scalability issues."  The simulator reproduces both
halves of that sentence:

* the enclave evaluates constraints on *plaintext* inside a sealed
  boundary — fast per call, nothing homomorphic — and the untrusted
  host only ever sees the attested decision;
* scalability limits are modeled explicitly: a bounded enclave memory
  (EPC) — exceeding it forces pages to be evicted and re-loaded with a
  configurable penalty, which is how SGX behaves — and a fixed
  per-call transition overhead (ECALL cost).

Attestation: the enclave publishes a measurement (hash of the
constraint set it was provisioned with); callers can compare it to the
expected measurement before trusting decisions.
"""

import hashlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.clock import SimClock
from repro.common.errors import PrivacyError
from repro.common.serialization import canonical_bytes


class TrustedEnclaveSimulator:
    """Constraint evaluation inside a sealed, capacity-limited boundary."""

    def __init__(
        self,
        constraints: Sequence,
        epc_capacity: int = 1000,
        ecall_overhead: float = 0.00001,
        page_fault_penalty: float = 0.0005,
        clock: Optional[SimClock] = None,
    ):
        self._constraints = list(constraints)
        self.epc_capacity = epc_capacity
        self.ecall_overhead = ecall_overhead
        self.page_fault_penalty = page_fault_penalty
        self.clock = clock or SimClock()
        self._resident: Dict[Any, Dict] = {}   # sealed row cache (LRU-ish)
        self._lru: List[Any] = []
        self.ecalls = 0
        self.page_faults = 0
        self.measurement = self._measure()

    def _measure(self) -> str:
        payload = canonical_bytes(
            [c.body_bytes().hex() for c in self._constraints]
        )
        return hashlib.sha256(payload).hexdigest()

    def attest(self) -> str:
        """The enclave's code/data measurement (verify before trusting)."""
        return self.measurement

    # -- sealed data management -------------------------------------------

    def provision_row(self, key: Any, row: Dict) -> None:
        """Load a plaintext row into enclave memory (sealed channel —
        the host never observes the plaintext)."""
        self._touch(key)
        self._resident[key] = dict(row)
        self._evict_if_needed()

    def _touch(self, key: Any) -> None:
        if key in self._lru:
            self._lru.remove(key)
        self._lru.append(key)

    def _evict_if_needed(self) -> None:
        while len(self._resident) > self.epc_capacity:
            victim = self._lru.pop(0)
            self._resident.pop(victim, None)

    # -- evaluation ------------------------------------------------------------

    def verify_update(self, databases, update, now: float) -> Tuple[bool, str]:
        """ECALL: evaluate all constraints; returns (decision, attestation).

        The host's entire view is the boolean + the measurement hash.
        """
        self.ecalls += 1
        self.clock.advance(self.ecall_overhead)
        key = (update.table, tuple(update.key) if update.key else None)
        if key not in self._resident:
            self.page_faults += 1
            self.clock.advance(self.page_fault_penalty)
            self._touch(key)
            self._resident[key] = {}
            self._evict_if_needed()
        decision = all(
            constraint.check(databases, update, now)
            for constraint in self._constraints
        )
        return decision, self.measurement

    # -- the privacy boundary -----------------------------------------------------

    def host_view(self) -> Dict[str, Any]:
        """What the untrusted host can observe: call counts and timing,
        never contents."""
        return {
            "ecalls": self.ecalls,
            "page_faults": self.page_faults,
            "elapsed": self.clock.now(),
            "measurement": self.measurement,
        }

    def read_sealed(self, key: Any) -> None:
        """Host attempts to read sealed memory — always refused."""
        raise PrivacyError("enclave memory is sealed")
