"""Differential privacy: mechanism, budget accounting, DP index,
and DP-Sync-style update-pattern hiding.

The paper's RC1 discussion flags the core tension this module makes
measurable: "naive uses of differential privacy lead to rapidly
exhausting the limited privacy budget, especially when updates come at
a high rate" — either updates stop being supported or noise grows
uncontrolled.  :class:`PrivacyAccountant` enforces the budget
(fail-closed), :class:`DPIndex` refreshes noisy bin counts per batch,
and bench E4 sweeps the update rate to reproduce the exhaustion curve.

:class:`DPSyncScheduler` reproduces DP-Sync's goal (cited in the
introduction): hiding *when* real updates happen from the outsourced
store by flushing on a DP-noised schedule padded with dummy records.
"""

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import BudgetExhausted, PReVerError
from repro.common.randomness import deterministic_rng


class LaplaceMechanism:
    """Adds Laplace(sensitivity / epsilon) noise.

    Sampling uses inverse-CDF over a seeded deterministic source so
    experiments are reproducible.
    """

    def __init__(self, seed: int = 1234):
        self._rng = deterministic_rng(seed)

    def _uniform(self) -> float:
        # Uniform in (0, 1), never exactly 0 or 1.
        return (self._rng.randbelow(2**53 - 2) + 1) / 2**53

    def sample(self, scale: float) -> float:
        u = self._uniform() - 0.5
        return -scale * math.copysign(1.0, u) * math.log(1 - 2 * abs(u))

    def add_noise(self, value: float, sensitivity: float, epsilon: float) -> float:
        if epsilon <= 0:
            raise PReVerError("epsilon must be positive")
        return value + self.sample(sensitivity / epsilon)


class PrivacyAccountant:
    """Sequential-composition budget accounting, fail-closed."""

    def __init__(self, epsilon_total: float):
        if epsilon_total <= 0:
            raise PReVerError("total budget must be positive")
        self.epsilon_total = epsilon_total
        self.spent = 0.0
        self.charges: List[Tuple[str, float]] = []

    @property
    def remaining(self) -> float:
        return max(0.0, self.epsilon_total - self.spent)

    def charge(self, epsilon: float, label: str = "") -> None:
        if epsilon <= 0:
            raise PReVerError("charge must be positive")
        if self.spent + epsilon > self.epsilon_total + 1e-12:
            raise BudgetExhausted(self.spent, self.epsilon_total)
        self.spent += epsilon
        self.charges.append((label, epsilon))

    def can_afford(self, epsilon: float) -> bool:
        return self.spent + epsilon <= self.epsilon_total + 1e-12


class DPIndex:
    """A differentially private histogram index over a numeric column.

    The untrusted manager holds only noisy bin counts, so it can route
    range constraints ("is the aggregate plausibly under the bound?")
    without learning exact data — the "differentially private indexing,
    i.e. partial disclosures" alternative of RC1.  Each refresh spends
    ``epsilon_per_refresh`` from the accountant; once the budget is
    gone the index goes stale (refresh raises), reproducing the
    paper's exhaustion failure mode.
    """

    def __init__(
        self,
        low: float,
        high: float,
        bins: int,
        accountant: PrivacyAccountant,
        epsilon_per_refresh: float,
        mechanism: Optional[LaplaceMechanism] = None,
    ):
        if high <= low or bins < 1:
            raise PReVerError("bad index domain")
        self.low = low
        self.high = high
        self.bins = bins
        self.accountant = accountant
        self.epsilon_per_refresh = epsilon_per_refresh
        self.mechanism = mechanism or LaplaceMechanism()
        self.noisy_counts: Optional[List[float]] = None
        self.refreshes = 0

    def _bin_of(self, value: float) -> int:
        if not self.low <= value <= self.high:
            raise PReVerError(f"value {value} outside index domain")
        width = (self.high - self.low) / self.bins
        return min(self.bins - 1, int((value - self.low) / width))

    def refresh(self, values: Sequence[float]) -> None:
        """Recompute noisy counts from the current data (spends budget)."""
        self.accountant.charge(self.epsilon_per_refresh, label="dp-index-refresh")
        counts = [0.0] * self.bins
        for value in values:
            counts[self._bin_of(value)] += 1
        self.noisy_counts = [
            self.mechanism.add_noise(c, 1.0, self.epsilon_per_refresh)
            for c in counts
        ]
        self.refreshes += 1

    def estimate_range_count(self, low: float, high: float) -> float:
        """Noisy count of values in [low, high] (bin-aligned outer cover)."""
        if self.noisy_counts is None:
            raise PReVerError("index never refreshed")
        first = self._bin_of(max(low, self.low))
        last = self._bin_of(min(high, self.high))
        return max(0.0, sum(self.noisy_counts[first:last + 1]))

    def current_noise_scale(self) -> float:
        return 1.0 / self.epsilon_per_refresh


@dataclass
class FlushEvent:
    """One flush the outsourced store observes."""

    time: float
    record_count: int   # includes dummies
    real_count: int     # ground truth, never visible to the manager


class DPSyncScheduler:
    """Hide the update arrival pattern behind a DP flush schedule.

    Strategy (DP-Sync's "DP timer"): flush every ``epoch`` seconds; the
    flush size is ``max(real_pending, noisy_target)`` where
    ``noisy_target = Laplace-noised count of pending records`` — the
    store sees a flush whose timing is data-independent and whose size
    is differentially private, with dummy (pad) records making up the
    difference.  Each epoch spends ``epsilon_per_epoch``.
    """

    def __init__(
        self,
        epoch: float,
        accountant: PrivacyAccountant,
        epsilon_per_epoch: float,
        mechanism: Optional[LaplaceMechanism] = None,
    ):
        self.epoch = epoch
        self.accountant = accountant
        self.epsilon_per_epoch = epsilon_per_epoch
        self.mechanism = mechanism or LaplaceMechanism(seed=99)
        self.flushes: List[FlushEvent] = []
        self._pending = 0
        self._next_flush = epoch
        self.dummies_written = 0
        self.records_delayed = 0

    def submit(self, arrival_time: float) -> None:
        """A real update arrives (buffered until the next flush)."""
        self._advance_to(arrival_time)
        self._pending += 1

    def finish(self, time: float) -> List[FlushEvent]:
        self._advance_to(time)
        return list(self.flushes)

    def _advance_to(self, time: float) -> None:
        while self._next_flush <= time:
            self._flush(self._next_flush)
            self._next_flush += self.epoch

    def _flush(self, at: float) -> None:
        self.accountant.charge(self.epsilon_per_epoch, label="dpsync-epoch")
        noisy = self.mechanism.add_noise(
            float(self._pending), 1.0, self.epsilon_per_epoch
        )
        target = max(0, int(round(noisy)))
        emitted_real = min(self._pending, target)
        dummies = max(0, target - emitted_real)
        self.dummies_written += dummies
        self.records_delayed += self._pending - emitted_real
        self.flushes.append(
            FlushEvent(time=at, record_count=target, real_count=emitted_real)
        )
        self._pending -= emitted_real

    def observable_pattern(self) -> List[Tuple[float, int]]:
        """What the untrusted store sees: (time, size) pairs only."""
        return [(f.time, f.record_count) for f in self.flushes]
