"""A blockchain-replicated spend registry.

Section 5: Separ "relies on the permissioned blockchain system SharPer
to guarantee integrity of the global system state (i.e., the tokens
spent)".  The in-memory :class:`~repro.privacy.tokens.SpendRegistry`
detects double spends against a local set; this registry instead
derives the spent-token state *from the ordered blockchain*, which is
what makes mutually distrustful platforms agree:

* a platform submits a spend as a transaction;
* consensus (PBFT) orders all submitted spends;
* validation is deterministic over the ordered log: the **first**
  transaction carrying a serial wins, every later one aborts — so two
  platforms racing to deposit the same token resolve identically on
  every replica, with no coordinator.

``settle()`` drives consensus and returns the per-transaction
outcomes; tests race the same token from two platforms and check
exactly one wins.
"""

from typing import Dict, List, Optional, Set, Tuple

from repro.chain.blockchain import PermissionedBlockchain
from repro.crypto.rsa import RSAPublicKey
from repro.privacy.tokens import Token, TokenError


class ReplicatedSpendRegistry:
    """Spent-token state as a deterministic fold over an ordered chain."""

    def __init__(self, authority_key: RSAPublicKey,
                 chain: Optional[PermissionedBlockchain] = None,
                 block_size: int = 8):
        self.authority_key = authority_key
        self.chain = chain or PermissionedBlockchain(
            channel="token-spends", block_size=block_size
        )
        self._pending: Dict[str, Token] = {}  # tx_id -> token (local cache)
        self._validated: Dict[str, bool] = {}  # tx_id -> accepted?
        self._spent_serials: Set[str] = set()
        self._applied_height = 0
        self._applied_tx_in_block = 0

    # -- submission (any platform) ----------------------------------------

    def submit_spend(self, token: Token, platform: str) -> str:
        """Validate the signature locally, then submit for ordering.

        Signature checks are deterministic and need no shared state, so
        they happen before consensus; serial uniqueness can only be
        decided *after* ordering.  Returns the transaction id.
        """
        if not self.authority_key.verify(token.message(), token.signature):
            raise TokenError("invalid token signature")
        tx = self.chain.submit_public({
            "serial": token.serial,
            "period": token.period,
            "pseudonym": token.pseudonym,
            "platform": platform,
        })
        self._pending[tx.tx_id] = token
        return tx.tx_id

    # -- deterministic validation over the ordered log -----------------------

    def settle(self) -> Dict[str, bool]:
        """Run consensus, fold newly committed blocks into the spent
        set, and return {tx_id: accepted} for every settled spend."""
        self.chain.process()
        self.chain.flush()
        outcomes: Dict[str, bool] = {}
        while self._applied_height < self.chain.height:
            block = self.chain.block(self._applied_height)
            transactions = block.transactions[self._applied_tx_in_block:]
            for tx in transactions:
                serial = tx.payload["serial"]
                accepted = serial not in self._spent_serials
                if accepted:
                    self._spent_serials.add(serial)
                self._validated[tx.tx_id] = accepted
                outcomes[tx.tx_id] = accepted
            self._applied_height += 1
            self._applied_tx_in_block = 0
        return outcomes

    # -- queries ---------------------------------------------------------------

    def is_spent(self, serial: str) -> bool:
        return serial in self._spent_serials

    def outcome(self, tx_id: str) -> Optional[bool]:
        """None until settled; then the consensus-decided outcome."""
        return self._validated.get(tx_id)

    def total_spent(self) -> int:
        return len(self._spent_serials)

    def replay_from_chain(self) -> Set[str]:
        """Any participant can rebuild the spent set from scratch —
        the verifiability property RC4 demands.  Returns the set; the
        caller compares it to a replica's state to detect divergence."""
        spent: Set[str] = set()
        for height in range(self.chain.height):
            for tx in self.chain.block(height).transactions:
                spent.add(tx.payload["serial"])
        return spent
