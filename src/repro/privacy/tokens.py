"""The token-based regulation mechanism (RC2, centralized path; Separ).

An external authority enforces a per-participant, per-period budget by
issuing exactly ``budget`` single-use tokens per participant per
period.  Tokens are **blind-signed** (Chaum), so when a platform later
sees a token being spent it cannot link it to the issuance — and hence
cannot learn how much the worker has worked elsewhere.  Spent token
serials are recorded on a shared ledger; a serial appearing twice is a
double spend.  Upper-bound regulations hold because no participant can
obtain more than ``budget`` valid tokens per period; lower-bound
regulations (Separ supports these too) are checked at period close by
counting spends carrying a per-period pseudonym (a PRF of the worker
identity and the period, consistent within a period, unlinkable
across periods).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.common.errors import ConstraintViolation, PReVerError, PrivacyError
from repro.common.ids import make_id
from repro.common.randomness import SystemRandomSource
from repro.crypto.blind import BlindClient, BlindSigner
from repro.crypto.hashing import prf
from repro.crypto.rsa import RSAPublicKey
from repro.ledger.central import CentralLedger


class TokenError(PReVerError):
    pass


class IssuerUnavailable(TokenError):
    """The issuing authority (or one of its share signers) is offline."""


class DoubleSpendError(ConstraintViolation):
    def __init__(self, serial: str):
        super().__init__("token-double-spend", f"serial {serial[:12]}… already spent")
        self.serial = serial


@dataclass(frozen=True)
class Token:
    """A single-use token: serial + period + pseudonym + signature.

    ``pseudonym`` is PRF(worker_secret, period) — stable within the
    period (enabling lower-bound counting) but unlinkable to the
    worker identity and across periods.
    """

    serial: str
    period: int
    pseudonym: str
    signature: int

    def message(self) -> bytes:
        return token_message(self.serial, self.period, self.pseudonym)


def token_message(serial: str, period: int, pseudonym: str) -> bytes:
    return f"{serial}|{period}|{pseudonym}".encode()


class TokenAuthority:
    """The trusted third party: issues blind-signed token budgets.

    It learns *who* requested *how many* tokens per period (that is its
    job: enforcing the budget) but never the serials it signed — so it
    cannot trace spends either.
    """

    def __init__(self, budget_per_period: int, rsa_bits: int = 768):
        self.budget_per_period = budget_per_period
        self._signer = BlindSigner(bits=rsa_bits)
        self._issued: Dict[tuple, int] = {}  # (participant, period) -> count

    @property
    def public_key(self) -> RSAPublicKey:
        return self._signer.public_key

    def issued_count(self, participant: str, period: int) -> int:
        return self._issued.get((participant, period), 0)

    def issue(self, participant: str, period: int, blinded_tokens: List) -> List[int]:
        """Blind-sign up to the remaining budget; over-asking raises."""
        already = self.issued_count(participant, period)
        if already + len(blinded_tokens) > self.budget_per_period:
            raise TokenError(
                f"{participant!r} exceeded the period-{period} budget "
                f"({already} + {len(blinded_tokens)} > {self.budget_per_period})"
            )
        self._issued[(participant, period)] = already + len(blinded_tokens)
        return [self._signer.sign_blinded(t) for t in blinded_tokens]


class TokenWallet:
    """A worker's client-side token store."""

    def __init__(self, owner: str, authority_key: RSAPublicKey, rng=None):
        self.owner = owner
        self.authority_key = authority_key
        self._rng = rng or SystemRandomSource()
        self._secret = self._rng.randbits(256).to_bytes(32, "big")
        self._tokens: Dict[int, List[Token]] = {}

    def pseudonym_for(self, period: int) -> str:
        return prf(self._secret, f"period:{period}".encode()).hex()

    def request_tokens(self, authority: TokenAuthority, period: int, count: int) -> int:
        """Run the blind-issuance protocol; returns tokens obtained."""
        pseudonym = self.pseudonym_for(period)
        pending = []
        blinded = []
        for _ in range(count):
            serial = self._rng.randbits(256).to_bytes(32, "big").hex()
            message = token_message(serial, period, pseudonym)
            client = BlindClient(self.authority_key, rng=self._rng)
            blinded.append(client.blind(message))
            pending.append((serial, client))
        signatures = authority.issue(self.owner, period, blinded)
        bucket = self._tokens.setdefault(period, [])
        for (serial, client), blind_signature in zip(pending, signatures):
            signature = client.unblind(blind_signature)
            bucket.append(
                Token(
                    serial=serial,
                    period=period,
                    pseudonym=pseudonym,
                    signature=signature,
                )
            )
        return len(signatures)

    def balance(self, period: int) -> int:
        return len(self._tokens.get(period, []))

    def take(self, period: int, count: int) -> List[Token]:
        bucket = self._tokens.get(period, [])
        if len(bucket) < count:
            raise TokenError(
                f"wallet has {len(bucket)} tokens for period {period}, "
                f"needs {count}"
            )
        taken, self._tokens[period] = bucket[:count], bucket[count:]
        return taken


class SpendRegistry:
    """The shared spent-token state (on a ledger for integrity).

    Platforms verify a token's signature, then attempt to record its
    serial; a repeat raises :class:`DoubleSpendError`.  In the
    federated deployment this ledger is the replicated blockchain
    state (see ``repro.core.separ``); here it wraps a
    :class:`CentralLedger` so every spend is auditable.
    """

    def __init__(self, authority_key: RSAPublicKey,
                 ledger: Optional[CentralLedger] = None):
        self.authority_key = authority_key
        self.ledger = ledger or CentralLedger(name="token-spends")
        self._spent: Set[str] = set()
        self._spends_by_period: Dict[int, List[str]] = {}

    def spend(self, token: Token, platform: str) -> None:
        if not self.authority_key.verify(token.message(), token.signature):
            raise TokenError("invalid token signature")
        if token.serial in self._spent:
            raise DoubleSpendError(token.serial)
        self._spent.add(token.serial)
        self._spends_by_period.setdefault(token.period, []).append(token.pseudonym)
        self.ledger.append(
            {
                "serial": token.serial,
                "period": token.period,
                "pseudonym": token.pseudonym,
                "platform": platform,
            }
        )

    def spend_count(self, period: int, pseudonym: str) -> int:
        return sum(
            1 for p in self._spends_by_period.get(period, []) if p == pseudonym
        )

    def check_lower_bound(self, period: int, pseudonym: str, minimum: int) -> bool:
        """Period-close lower-bound regulation check."""
        return self.spend_count(period, pseudonym) >= minimum

    def total_spent(self, period: Optional[int] = None) -> int:
        if period is None:
            return len(self._spent)
        return len(self._spends_by_period.get(period, []))
