"""Private set intersection — toward "general distributed constraints".

Section 5 lists as Separ future work the support of "general
distributed constraints, e.g., any SQL expressed constraints, including
GROUP BY, JOIN and aggregate expressions".  The JOIN-shaped regulations
PReVer's applications need are membership joins across platforms:

    "a worker may not be registered on more than K platforms",
    "an item flagged by one enterprise may not be shipped by another".

These reduce to private set-intersection *cardinality* across the
federated databases, which this module provides with the classic
OPRF-style construction, simplified for the semi-honest setting:

* a session key ``k`` is additively contributed by every party (so no
  single party knows it — here dealt by a coordinator from per-party
  seeds);
* each party uploads ``PRF(k, element)`` for its private elements;
* equal elements collide, distinct elements look random — the
  coordinator learns the intersection *pattern* (which pseudo-elements
  are shared, and by how many parties) but no element values.

The leakage is exactly the intersection cardinality pattern, declared
in :data:`PSI_PROFILE` and asserted by the tests.
"""

import hashlib
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.common.errors import ProtocolError
from repro.crypto.hashing import prf
from repro.privacy import leakage as lk

PSI_PROFILE = lk.profile(
    "psi",
    lk.LeakageClass.DECISION_BIT,
    lk.LeakageClass.VOLUME,
    lk.LeakageClass.EQUALITY_PATTERN,
    notes="coordinator sees PRF outputs: set sizes + intersection pattern",
)


class PSIParty:
    """One platform's side of the protocol."""

    def __init__(self, name: str, elements: Iterable[str]):
        self.name = name
        self._elements: Set[str] = set(elements)
        self._key_contribution = hashlib.sha256(
            b"seed:" + name.encode()
        ).digest()

    @property
    def set_size(self) -> int:
        return len(self._elements)

    def key_contribution(self) -> bytes:
        return self._key_contribution

    def masked_elements(self, session_key: bytes) -> List[bytes]:
        """PRF-masked elements, sorted (order leaks nothing)."""
        return sorted(
            prf(session_key, element.encode()) for element in self._elements
        )


class PSICoordinator:
    """Runs one intersection-cardinality session.

    The coordinator may be any of the parties or a third party; its
    view is the PSI_PROFILE leakage only.
    """

    def __init__(self, parties: Sequence[PSIParty]):
        if len(parties) < 2:
            raise ProtocolError("PSI needs at least two parties")
        self.parties = list(parties)
        self.session_key = self._derive_session_key()
        self.transcript: List[Tuple[str, int]] = []

    def _derive_session_key(self) -> bytes:
        digest = hashlib.sha256()
        for party in self.parties:
            digest.update(party.key_contribution())
        return digest.digest()

    def membership_counts(self) -> Dict[bytes, int]:
        """How many parties hold each (masked) element."""
        counts: Dict[bytes, int] = {}
        for party in self.parties:
            masked = party.masked_elements(self.session_key)
            self.transcript.append((party.name, len(masked)))
            for item in masked:
                counts[item] = counts.get(item, 0) + 1
        return counts

    def intersection_cardinality(self) -> int:
        """|elements held by *all* parties| — the n-way JOIN count."""
        counts = self.membership_counts()
        return sum(1 for c in counts.values() if c == len(self.parties))

    def max_multiplicity(self) -> int:
        """The largest number of parties sharing any one element."""
        counts = self.membership_counts()
        return max(counts.values(), default=0)


def check_max_membership(
    parties: Sequence[PSIParty], limit: int
) -> bool:
    """The JOIN-shaped regulation: no element (worker pseudonym,
    flagged item, ...) may appear on more than ``limit`` platforms.
    Returns the verification decision; the only values revealed to the
    coordinator are PRF outputs."""
    coordinator = PSICoordinator(parties)
    return coordinator.max_multiplicity() <= limit


def check_no_overlap(parties: Sequence[PSIParty]) -> bool:
    """Exclusivity regulation: the private sets must be disjoint."""
    coordinator = PSICoordinator(parties)
    return coordinator.max_multiplicity() <= 1
