"""Dynamic searchable symmetric encryption with forward privacy.

The introduction cites dynamic SSE (refs [32], [40], [59]) as the
query-side state of the art that PReVer's *update*-side work
complements.  This module provides the standard construction so the
repository covers both halves of "privacy-preserving dynamic data":

* the server stores an encrypted inverted index: opaque labels →
  encrypted record ids;
* to search keyword w, the client derives per-position labels from
  PRF(K_w, counter) and hands the server the keyword key material for
  *past* positions only;
* **forward privacy** (the property Bost's Sophos line made standard,
  and what [59] approximates with small leakage): the label of a
  *future* addition is independent of every search token issued so
  far, so the server cannot match new documents against old queries.
  Our construction gets this the simple way — per-(keyword, counter)
  labels that previously-issued token sets simply do not cover.

Leakage, declared and tested: the server learns the total number of
entries (volume), which labels are touched by a search (access
pattern), and when the same search is repeated (search pattern) — and
nothing about keywords or record contents.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import PReVerError
from repro.crypto.hashing import prf
from repro.privacy import leakage as lk

SSE_PROFILE = lk.profile(
    "sse",
    lk.LeakageClass.VOLUME,
    lk.LeakageClass.ACCESS_PATTERN,
    lk.LeakageClass.EQUALITY_PATTERN,
    notes="server sees index size, per-search touched labels, repeats",
)


class SSEError(PReVerError):
    pass


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


class SSEServer:
    """The untrusted index holder.

    Stores ``label -> encrypted_record_id`` pairs and logs everything
    it observes for the leakage tests.
    """

    def __init__(self):
        self._index: Dict[bytes, bytes] = {}
        self.observed_adds = 0
        self.search_log: List[Tuple[bytes, ...]] = []

    def add(self, label: bytes, payload: bytes) -> None:
        if label in self._index:
            raise SSEError("label collision (PRF failure?)")
        self._index[label] = payload
        self.observed_adds += 1

    def search(self, labels: List[bytes]) -> List[bytes]:
        self.search_log.append(tuple(labels))
        return [self._index[label] for label in labels if label in self._index]

    def index_size(self) -> int:
        return len(self._index)


class SSEClient:
    """The data owner's side: keys, per-keyword counters, search."""

    def __init__(self, master_key: bytes, server: Optional[SSEServer] = None):
        if len(master_key) < 16:
            raise SSEError("master key too short")
        self._master_key = master_key
        self.server = server or SSEServer()
        self._counters: Dict[str, int] = {}

    # -- key derivation ------------------------------------------------------

    def _keyword_key(self, keyword: str) -> bytes:
        return prf(self._master_key, b"kw:" + keyword.encode())

    def _label(self, keyword: str, position: int) -> bytes:
        return prf(self._keyword_key(keyword),
                   b"label:" + position.to_bytes(8, "big"))

    def _mask(self, keyword: str, position: int) -> bytes:
        return prf(self._keyword_key(keyword),
                   b"mask:" + position.to_bytes(8, "big"))

    # -- the dynamic update path ------------------------------------------------

    def add_record(self, record_id: str, keywords: List[str]) -> None:
        """Index a new record under its keywords (the *dynamic* part)."""
        encoded = record_id.encode()
        if len(encoded) > 32:
            raise SSEError("record ids are limited to 32 bytes")
        padded = encoded + bytes(32 - len(encoded))
        for keyword in keywords:
            position = self._counters.get(keyword, 0)
            self._counters[keyword] = position + 1
            label = self._label(keyword, position)
            payload = _xor_bytes(padded, self._mask(keyword, position))
            self.server.add(label, payload)

    # -- search -----------------------------------------------------------------

    def search(self, keyword: str) -> List[str]:
        """Issue search tokens for every *current* position of the
        keyword; the server resolves labels, the client unmasks."""
        count = self._counters.get(keyword, 0)
        labels = [self._label(keyword, i) for i in range(count)]
        results = self.server.search(labels)
        record_ids = []
        for position, payload in enumerate(results):
            plain = _xor_bytes(payload, self._mask(keyword, position))
            record_ids.append(plain.rstrip(b"\0").decode())
        return record_ids

    def issued_token_view(self, keyword: str) -> List[bytes]:
        """The label set a server learned from searching ``keyword``
        now — used by the forward-privacy test to show future adds
        fall outside it."""
        count = self._counters.get(keyword, 0)
        return [self._label(keyword, i) for i in range(count)]
