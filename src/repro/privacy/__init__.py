"""Privacy mechanisms for the three private-verification challenges.

* :mod:`repro.privacy.dp` — Laplace mechanism, privacy-budget
  accounting, a differentially-private index (RC1's "partial
  disclosure" alternative), and DP-Sync-style update-pattern hiding;
* :mod:`repro.privacy.pir` — two-server XOR PIR and single-server
  Paillier cPIR, extended with private writes (RC3);
* :mod:`repro.privacy.mpc` — semi-honest MPC over additive shares with
  bitwise adders and comparison circuits (RC2, decentralized path);
* :mod:`repro.privacy.tokens` — blind-signed single-use tokens with a
  double-spend registry (RC2, centralized path; Separ's mechanism);
* :mod:`repro.privacy.enclave` — a trusted-hardware simulator (RC1's
  hardware-protected computation alternative);
* :mod:`repro.privacy.leakage` — leakage accounting: what each engine
  admits an adversary observes, asserted by the test suite.
"""

from repro.privacy.dp import (
    LaplaceMechanism,
    PrivacyAccountant,
    DPIndex,
    DPSyncScheduler,
)
from repro.privacy.pir import TwoServerXorPIR, PaillierPIR
from repro.privacy.mpc import MPCContext, SharedValue, SharedBits
from repro.privacy.tokens import TokenAuthority, TokenWallet, SpendRegistry, Token
from repro.privacy.threshold_tokens import DistributedTokenAuthority
from repro.privacy.enclave import TrustedEnclaveSimulator
from repro.privacy.leakage import LeakageClass, LeakageProfile
from repro.privacy.continual import BinaryTreeCounter, NaiveContinualCounter
from repro.privacy.oram import PathORAM, ObliviousKV
from repro.privacy.psi import PSIParty, PSICoordinator
from repro.privacy.replicated_registry import ReplicatedSpendRegistry
from repro.privacy.sse import SSEClient, SSEServer

__all__ = [
    "LaplaceMechanism",
    "PrivacyAccountant",
    "DPIndex",
    "DPSyncScheduler",
    "TwoServerXorPIR",
    "PaillierPIR",
    "MPCContext",
    "SharedValue",
    "SharedBits",
    "TokenAuthority",
    "TokenWallet",
    "SpendRegistry",
    "Token",
    "DistributedTokenAuthority",
    "TrustedEnclaveSimulator",
    "LeakageClass",
    "LeakageProfile",
    "BinaryTreeCounter",
    "NaiveContinualCounter",
    "PathORAM",
    "ObliviousKV",
    "PSIParty",
    "PSICoordinator",
    "ReplicatedSpendRegistry",
    "SSEClient",
    "SSEServer",
]
