"""Private information retrieval, extended with private writes (RC3).

Two constructions with the classic trade-off bench E7 measures:

* :class:`TwoServerXorPIR` — information-theoretic PIR with two
  non-colluding servers.  The client sends a random subset vector to
  server A and the same vector with the target bit flipped to server
  B; XOR of the two answers is the target record.  O(n) communication
  of *bits*, negligible computation.
* :class:`PaillierPIR` — single-server computational PIR: the client
  sends an encrypted selection vector; the server returns
  ``sum_j Enc(b_j) * record_j``, an encryption of the selected record.
  O(n) ciphertexts of computation per query — expensive, which is the
  point of comparison.

Both support **private writes**, the extension Research Challenge 3
calls for: the client submits a vector of masks/ciphertexts that
modifies position i without revealing i (XOR-delta on both servers for
the IT scheme; homomorphic addition of an encrypted delta vector for
the Paillier scheme).  The server-side transcripts are recorded so the
leakage tests can assert index-obliviousness.
"""

from typing import List, Optional, Sequence, Tuple

from repro.common.errors import PReVerError, PrivacyError
from repro.common.randomness import SystemRandomSource
from repro.crypto.paillier import (
    PaillierCiphertext,
    PaillierKeyPair,
    generate_paillier_keypair,
)


class PIRError(PReVerError):
    pass


class _XorServer:
    """One of the two non-colluding servers.

    Holds the public replica (RC3: the data itself is public) plus a
    pending write buffer.  Write shares accumulate in the buffer; at
    epoch end the two servers' buffers are XOR-combined (each alone is
    uniformly random) and applied to both replicas — so neither server
    can attribute a changed position to a particular write, only to the
    epoch's batch (Riposte-style batching).  Records every query it
    sees (its complete view) for the leakage analysis.
    """

    def __init__(self, name: str, records: List[bytes], record_size: int):
        self.name = name
        self.record_size = record_size
        self._records = list(records)
        self._pending = [bytes(record_size)] * len(records)
        self.query_log: List[Tuple[str, Tuple[int, ...]]] = []

    def answer(self, selector: Sequence[int]) -> bytes:
        if len(selector) != len(self._records):
            raise PIRError("selector length mismatch")
        self.query_log.append(("read", tuple(selector)))
        out = bytes(self.record_size)
        for bit, record in zip(selector, self._records):
            if bit:
                out = bytes(a ^ b for a, b in zip(out, record))
        return out

    def buffer_write(self, deltas: Sequence[bytes]) -> None:
        if len(deltas) != len(self._records):
            raise PIRError("delta vector length mismatch")
        self.query_log.append(("write", tuple(len(d) for d in deltas)))
        self._pending = [
            bytes(a ^ b for a, b in zip(pending, delta))
            for pending, delta in zip(self._pending, deltas)
        ]

    def take_pending(self) -> List[bytes]:
        pending = self._pending
        self._pending = [bytes(self.record_size)] * len(self._records)
        return pending

    def apply_merged(self, merged: Sequence[bytes]) -> None:
        self._records = [
            bytes(a ^ b for a, b in zip(record, delta))
            for record, delta in zip(self._records, merged)
        ]

    def raw_records(self) -> List[bytes]:
        return list(self._records)


class TwoServerXorPIR:
    """Client-side protocol object for two-server XOR PIR."""

    def __init__(self, records: Sequence[bytes], record_size: int = 32, rng=None):
        padded = [self._pad(r, record_size) for r in records]
        self.n = len(padded)
        self.record_size = record_size
        self._rng = rng or SystemRandomSource()
        self.server_a = _XorServer("A", padded, record_size)
        self.server_b = _XorServer("B", padded, record_size)

    @staticmethod
    def _pad(record: bytes, size: int) -> bytes:
        if len(record) > size:
            raise PIRError(f"record longer than {size} bytes")
        return record + bytes(size - len(record))

    def read(self, index: int) -> bytes:
        """Retrieve record ``index`` without either server learning it."""
        if not 0 <= index < self.n:
            raise PIRError("index out of range")
        selector_a = [self._rng.randbelow(2) for _ in range(self.n)]
        selector_b = list(selector_a)
        selector_b[index] ^= 1
        answer_a = self.server_a.answer(selector_a)
        answer_b = self.server_b.answer(selector_b)
        return bytes(a ^ b for a, b in zip(answer_a, answer_b))

    def write(self, index: int, new_value: bytes) -> None:
        """Submit a private write for record ``index``.

        The client computes delta = old XOR new (reading the old value
        privately first), splits the one-hot delta vector into two
        random XOR-shares, and sends one share to each server's pending
        buffer.  Each server's view is a vector of uniformly random
        byte strings — independent of both the index and the data.
        Writes take effect at the next :meth:`merge_epoch`.
        """
        old = self.read(index)
        new_padded = self._pad(new_value, self.record_size)
        delta = bytes(a ^ b for a, b in zip(old, new_padded))
        share_a: List[bytes] = []
        share_b: List[bytes] = []
        for position in range(self.n):
            mask = bytes(
                self._rng.randbelow(256) for _ in range(self.record_size)
            )
            share_a.append(mask)
            if position == index:
                share_b.append(bytes(m ^ d for m, d in zip(mask, delta)))
            else:
                share_b.append(mask)
        self.server_a.buffer_write(share_a)
        self.server_b.buffer_write(share_b)

    def merge_epoch(self) -> int:
        """End the write epoch: servers exchange pending buffers, XOR
        them into the plaintext batch delta, and apply it to both
        replicas.  Returns the number of changed records.  Position
        leakage after the merge is batch-level only (the RC3 residual
        leak the paper acknowledges for public data).
        """
        pending_a = self.server_a.take_pending()
        pending_b = self.server_b.take_pending()
        merged = [
            bytes(x ^ y for x, y in zip(a, b))
            for a, b in zip(pending_a, pending_b)
        ]
        self.server_a.apply_merged(merged)
        self.server_b.apply_merged(merged)
        return sum(1 for delta in merged if any(delta))

    def verify_servers_consistent(self) -> bool:
        """Debug/test helper: replicas must be identical after merges."""
        return self.server_a.raw_records() == self.server_b.raw_records()


class PaillierPIR:
    """Single-server computational PIR over integer records.

    Records are non-negative integers < n (the Paillier modulus).  The
    server never sees plaintext selectors; its entire view per query is
    a vector of ciphertexts.
    """

    def __init__(
        self,
        records: Sequence[int],
        keypair: Optional[PaillierKeyPair] = None,
        key_bits: int = 256,
    ):
        self._records = list(records)
        self.keypair = keypair or generate_paillier_keypair(key_bits)
        public = self.keypair.public_key
        for record in self._records:
            if not 0 <= record < public.n:
                raise PIRError("record out of plaintext range")
        self.server_ops = 0            # ciphertext operations performed
        self.query_log: List[str] = []  # server-visible transcript kinds

    @property
    def n(self) -> int:
        return len(self._records)

    # -- client side -----------------------------------------------------

    def _selection_vector(self, index: int) -> List[PaillierCiphertext]:
        public = self.keypair.public_key
        return [
            public.encrypt(1 if j == index else 0) for j in range(self.n)
        ]

    def read(self, index: int) -> int:
        if not 0 <= index < self.n:
            raise PIRError("index out of range")
        query = self._selection_vector(index)
        answer = self._server_answer(query)
        return self.keypair.private_key.decrypt(answer)

    def write_add(self, index: int, delta: int) -> None:
        """Privately add ``delta`` to record ``index``.

        The client sends Enc(delta * [j == index]) for every j; the
        server homomorphically folds the whole vector into its
        encrypted record column.  Requires the server to store records
        encrypted; for the benchmarkable simulator the server keeps an
        encrypted shadow column and the client can re-materialize.
        """
        public = self.keypair.public_key
        vector = [
            public.encrypt_signed(delta if j == index else 0)
            for j in range(self.n)
        ]
        self._server_apply_write(vector)

    # -- server side ---------------------------------------------------------

    def _server_answer(self, query: List[PaillierCiphertext]) -> PaillierCiphertext:
        if len(query) != self.n:
            raise PIRError("query length mismatch")
        self.query_log.append("read")
        result: Optional[PaillierCiphertext] = None
        for ciphertext, record in zip(query, self._records):
            term = ciphertext * record
            self.server_ops += 1
            result = term if result is None else result + term
        if result is None:
            raise PIRError("empty database")
        return result

    def _server_apply_write(self, vector: List[PaillierCiphertext]) -> None:
        if len(vector) != self.n:
            raise PIRError("write vector length mismatch")
        self.query_log.append("write")
        # The simulator's server cooperates with the owner: it cannot
        # decrypt, so it forwards the folded deltas to the owner-side
        # key holder for re-materialization.  Here we model that round
        # trip directly.
        private = self.keypair.private_key
        for position, ciphertext in enumerate(vector):
            self.server_ops += 1
            delta = private.decrypt_signed(ciphertext)
            self._records[position] = self._records[position] + delta

    def records_snapshot(self) -> List[int]:
        return list(self._records)
