"""Semi-honest secure multi-party computation over additive shares.

RC2's decentralized path: federated platforms jointly verify a
regulation (e.g. total hours <= 40) without revealing their private
per-platform values.  The protocol stack:

* values live as additive shares over a prime field
  (:class:`SharedValue`); addition and public-scalar operations are
  local, multiplication consumes one Beaver triple and one opening
  round;
* private inputs enter bit-decomposed (:class:`SharedBits` — the owner
  knows its plaintext, so it shares each bit directly);
* shared bitwise ripple-carry adders sum the parties' inputs;
* a bitwise comparison circuit against a public bound produces a
  single shared decision bit, and *only that bit is opened* — the
  accept/reject decision is the protocol's entire output, matching
  PReVer's allowed leakage.

Cost accounting: every opening is a broadcast round (n*(n-1)
messages); the context counts rounds, messages, and triples so bench
E6 can reproduce the paper's "MPC does not scale" shape.
"""

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.errors import PrivacyError, ProtocolError
from repro.common.metrics import MetricsRegistry
from repro.crypto.sharing import (
    DEFAULT_FIELD_PRIME,
    BeaverTripleDealer,
    additive_reconstruct,
    additive_share,
)


@dataclass(frozen=True)
class SharedValue:
    """One field element, additively shared among all parties."""

    shares: tuple  # one share per party

    @property
    def parties(self) -> int:
        return len(self.shares)


@dataclass(frozen=True)
class SharedBits:
    """A non-negative integer as little-endian shared bits."""

    bits: tuple  # tuple of SharedValue, LSB first

    @property
    def width(self) -> int:
        return len(self.bits)


class MPCContext:
    """Protocol orchestrator for one party group.

    The simulator executes all parties in one process but routes every
    value through the sharing discipline: nothing is ever reconstructed
    except through :meth:`open`, and the metrics registry records each
    communication round — so both the privacy contract and the cost
    model are faithful to a real deployment.
    """

    def __init__(
        self,
        parties: int,
        prime: int = DEFAULT_FIELD_PRIME,
        dealer: Optional[BeaverTripleDealer] = None,
        metrics: Optional[MetricsRegistry] = None,
        rng=None,
    ):
        if parties < 2:
            raise ProtocolError("MPC needs at least 2 parties")
        self.parties = parties
        self.prime = prime
        self.dealer = dealer or BeaverTripleDealer(parties, prime, rng=rng)
        self.metrics = metrics or MetricsRegistry()
        self._rng = rng
        self.opened_values: List[int] = []  # the protocol's public output

    # -- input/output -----------------------------------------------------

    def share(self, value: int) -> SharedValue:
        """An input owner shares a private value (no communication
        round counted beyond the share distribution)."""
        self.metrics.counter("mpc.messages").add(self.parties - 1)
        return SharedValue(
            tuple(additive_share(value % self.prime, self.parties,
                                 self.prime, self._rng))
        )

    def share_public(self, value: int) -> SharedValue:
        """A public constant as a degenerate sharing (party 0 holds it)."""
        shares = [0] * self.parties
        shares[0] = value % self.prime
        return SharedValue(tuple(shares))

    def share_bits(self, value: int, width: int) -> SharedBits:
        if value < 0 or value >= (1 << width):
            raise ProtocolError(f"value does not fit in {width} bits")
        return SharedBits(
            tuple(self.share((value >> i) & 1) for i in range(width))
        )

    def open(self, value: SharedValue) -> int:
        """Reconstruct publicly — one broadcast round."""
        self.metrics.counter("mpc.rounds").add()
        self.metrics.counter("mpc.messages").add(self.parties * (self.parties - 1))
        result = additive_reconstruct(value.shares, self.prime)
        self.opened_values.append(result)
        return result

    # -- linear operations (local, free) --------------------------------------

    def add(self, a: SharedValue, b: SharedValue) -> SharedValue:
        return SharedValue(
            tuple((x + y) % self.prime for x, y in zip(a.shares, b.shares))
        )

    def sub(self, a: SharedValue, b: SharedValue) -> SharedValue:
        return SharedValue(
            tuple((x - y) % self.prime for x, y in zip(a.shares, b.shares))
        )

    def add_const(self, a: SharedValue, constant: int) -> SharedValue:
        shares = list(a.shares)
        shares[0] = (shares[0] + constant) % self.prime
        return SharedValue(tuple(shares))

    def mul_const(self, a: SharedValue, constant: int) -> SharedValue:
        return SharedValue(
            tuple(x * constant % self.prime for x in a.shares)
        )

    # -- multiplication (one triple + one opening round) ------------------------

    def mul(self, a: SharedValue, b: SharedValue) -> SharedValue:
        triples = self.dealer.deal()
        self.metrics.counter("mpc.triples").add()
        a_shares = [t.a for t in triples]
        b_shares = [t.b for t in triples]
        c_shares = [t.c for t in triples]
        # Open d = a - ta and e = b - tb (one combined round in practice).
        d = self._open_internal(
            [(x - y) % self.prime for x, y in zip(a.shares, a_shares)]
        )
        e = self._open_internal(
            [(x - y) % self.prime for x, y in zip(b.shares, b_shares)]
        )
        out = []
        for i in range(self.parties):
            term = (
                c_shares[i]
                + d * b_shares[i]
                + e * a_shares[i]
            ) % self.prime
            if i == 0:
                term = (term + d * e) % self.prime
            out.append(term)
        return SharedValue(tuple(out))

    def _open_internal(self, shares: Sequence[int]) -> int:
        """Opening of a *masked* value inside a protocol — public by
        design of the protocol (reveals nothing about inputs)."""
        self.metrics.counter("mpc.rounds").add()
        self.metrics.counter("mpc.messages").add(self.parties * (self.parties - 1))
        return additive_reconstruct(shares, self.prime)

    # -- boolean algebra over shared bits (arithmetic encoding) ------------------

    def bit_and(self, a: SharedValue, b: SharedValue) -> SharedValue:
        return self.mul(a, b)

    def bit_xor(self, a: SharedValue, b: SharedValue) -> SharedValue:
        # a + b - 2ab
        product = self.mul(a, b)
        return self.sub(self.add(a, b), self.mul_const(product, 2))

    def bit_or(self, a: SharedValue, b: SharedValue) -> SharedValue:
        product = self.mul(a, b)
        return self.sub(self.add(a, b), product)

    def bit_not(self, a: SharedValue) -> SharedValue:
        return self.sub(self.share_public(1), a)

    # -- adder and comparison circuits --------------------------------------------

    def add_bits(self, a: SharedBits, b: SharedBits) -> SharedBits:
        """Ripple-carry addition of two bit-shared numbers.

        Output has one extra bit.  Per bit position: sum = a ^ b ^ c,
        carry = ab | c(a ^ b) — three multiplications.
        """
        if a.width != b.width:
            raise ProtocolError("adder operands must have equal width")
        carry = self.share_public(0)
        out_bits = []
        for bit_a, bit_b in zip(a.bits, b.bits):
            axb = self.bit_xor(bit_a, bit_b)
            out_bits.append(self.bit_xor(axb, carry))
            and_ab = self.bit_and(bit_a, bit_b)
            and_axb_c = self.bit_and(axb, carry)
            carry = self.bit_or(and_ab, and_axb_c)
        out_bits.append(carry)
        return SharedBits(tuple(out_bits))

    def sum_bits(self, values: Sequence[SharedBits]) -> SharedBits:
        """Sum several bit-shared numbers (widths are equalized)."""
        if not values:
            raise ProtocolError("nothing to sum")
        acc = values[0]
        for value in values[1:]:
            width = max(acc.width, value.width)
            acc = self.add_bits(self._extend(acc, width), self._extend(value, width))
        return acc

    def _extend(self, value: SharedBits, width: int) -> SharedBits:
        if value.width >= width:
            return value
        zeros = tuple(
            self.share_public(0) for _ in range(width - value.width)
        )
        return SharedBits(value.bits + zeros)

    def greater_than_public(self, value: SharedBits, bound: int) -> SharedValue:
        """Shared indicator bit of (value > bound), bound public.

        MSB-to-LSB scan: gt = OR_i (prefix-equal_{>i} AND v_i AND
        NOT b_i).  Because the bound's bits are public, equality and
        the v_i AND NOT b_i terms are linear; only the prefix products
        and the final accumulation need multiplications.
        """
        width = value.width
        if bound >= (1 << width):
            return self.share_public(0)
        if bound < 0:
            return self.share_public(1)
        gt = self.share_public(0)
        prefix_equal = self.share_public(1)
        for i in reversed(range(width)):
            v_i = value.bits[i]
            b_i = (bound >> i) & 1
            if b_i == 1:
                eq_i = v_i                       # equal iff v_i == 1
                win_i = self.share_public(0)      # v_i > b_i impossible
            else:
                eq_i = self.bit_not(v_i)          # equal iff v_i == 0
                win_i = v_i                       # v_i = 1 wins
            term = self.bit_and(prefix_equal, win_i)
            gt = self.bit_or(gt, term)
            prefix_equal = self.bit_and(prefix_equal, eq_i)
        return gt

    def leq_public(self, value: SharedBits, bound: int) -> SharedValue:
        return self.bit_not(self.greater_than_public(value, bound))

    # -- the RC2 verification protocol ---------------------------------------------

    def verify_sum_upper_bound(
        self, private_inputs: Sequence[int], bound: int, width: int
    ) -> bool:
        """The end-to-end federated regulation check.

        Each entry of ``private_inputs`` belongs to a different party.
        The parties jointly compute sum(inputs) <= bound revealing only
        the boolean outcome.  ``width`` bounds each individual input.
        """
        if len(private_inputs) != self.parties:
            raise ProtocolError("one input per party expected")
        shared = [self.share_bits(v, width) for v in private_inputs]
        total = self.sum_bits(shared)
        decision = self.leq_public(total, bound)
        return bool(self.open(decision))

    # -- privacy introspection ----------------------------------------------------

    def public_transcript(self) -> List[int]:
        """Every value that was publicly opened — the complete public
        view of the protocol.  Tests assert this contains only the
        decision bit (plus uniformly-masked Beaver openings, which are
        recorded separately and are independent of the inputs)."""
        return list(self.opened_values)
