"""Differential privacy under continual observation (paper ref [33]).

The naive dynamic-data approach — re-noise the running count on every
update — spends epsilon per release and dies at high update rates
(experiment E4).  Dwork, Naor, Pitassi and Rothblum's *binary tree
(hybrid) mechanism* releases a running counter at **every** time step
under a single fixed epsilon, with only polylogarithmic error:

* arrange the stream positions as leaves of a binary tree;
* each tree node holds the (noised once) sum of its leaf range, with
  per-node noise Laplace(log T / epsilon);
* the count at time t is the sum of the O(log t) node values covering
  the prefix [1, t] — so each release touches log t noisy values and
  every stream element affects only log T nodes.

This is the principled fix for RC1's budget-exhaustion failure mode:
the accountant is charged once at construction, never per release.
Bench E4c compares error-vs-updates against the naive scheme.
"""

import math
from typing import Dict, List, Optional

from repro.common.errors import PReVerError
from repro.privacy.dp import LaplaceMechanism, PrivacyAccountant


class BinaryTreeCounter:
    """A continually-releasable private counter for a bounded stream.

    ``horizon`` is T, the maximum number of stream steps; values added
    per step must have magnitude <= ``sensitivity``.
    """

    def __init__(
        self,
        horizon: int,
        epsilon: float,
        accountant: Optional[PrivacyAccountant] = None,
        sensitivity: float = 1.0,
        mechanism: Optional[LaplaceMechanism] = None,
    ):
        if horizon < 1:
            raise PReVerError("horizon must be positive")
        if epsilon <= 0:
            raise PReVerError("epsilon must be positive")
        self.horizon = horizon
        self.epsilon = epsilon
        self.sensitivity = sensitivity
        self.mechanism = mechanism or LaplaceMechanism(seed=77)
        # One charge for the whole stream — the entire point.
        if accountant is not None:
            accountant.charge(epsilon, label="binary-tree-counter")
        self.levels = max(1, math.ceil(math.log2(horizon + 1)) + 1)
        self._per_node_scale = self.levels * sensitivity / epsilon
        # node values: level -> index -> (true_sum, noise)
        self._nodes: Dict[tuple, List[float]] = {}
        self._t = 0

    @property
    def steps_consumed(self) -> int:
        return self._t

    def add(self, value: float = 1.0) -> None:
        """Consume one stream step with increment ``value``."""
        if abs(value) > self.sensitivity + 1e-12:
            raise PReVerError("value exceeds the declared sensitivity")
        if self._t >= self.horizon:
            raise PReVerError("stream horizon exhausted")
        position = self._t  # 0-based leaf index
        self._t += 1
        # The element lands in one node per level.
        for level in range(self.levels):
            index = position >> level
            key = (level, index)
            if key not in self._nodes:
                noise = self.mechanism.sample(self._per_node_scale)
                self._nodes[key] = [0.0, noise]
            self._nodes[key][0] += value

    def release(self) -> float:
        """The private running count after ``steps_consumed`` steps.

        Decomposes the prefix [0, t) into O(log t) complete dyadic
        blocks and sums their noisy node values.
        """
        total = 0.0
        t = self._t
        position = 0
        for level in reversed(range(self.levels)):
            block = 1 << level
            if position + block <= t:
                key = (level, position >> level)
                node = self._nodes.get(key, [0.0, 0.0])
                total += node[0] + node[1]
                position += block
        return total

    def true_count(self) -> float:
        """Ground truth (test/benchmark oracle; never released)."""
        total = 0.0
        for (level, _), (value, _) in self._nodes.items():
            if level == 0:
                total += value
        return total

    def error_bound(self, confidence: float = 0.95) -> float:
        """A high-probability bound on |release - true| (sum of
        log T Laplace terms)."""
        terms = self.levels
        # Union bound over the terms at the given confidence.
        per_term = -math.log(1 - confidence ** (1 / terms))
        return terms * self._per_node_scale * per_term


class NaiveContinualCounter:
    """The strawman E4 measures: re-noise the whole count per release,
    splitting the budget across an expected number of releases."""

    def __init__(self, epsilon: float, expected_releases: int,
                 accountant: Optional[PrivacyAccountant] = None,
                 mechanism: Optional[LaplaceMechanism] = None):
        self.epsilon_per_release = epsilon / max(1, expected_releases)
        self.accountant = accountant
        self.mechanism = mechanism or LaplaceMechanism(seed=78)
        self._count = 0.0

    def add(self, value: float = 1.0) -> None:
        self._count += value

    def release(self) -> float:
        if self.accountant is not None:
            self.accountant.charge(self.epsilon_per_release, label="naive")
        return self._count + self.mechanism.sample(
            1.0 / self.epsilon_per_release
        )

    def true_count(self) -> float:
        return self._count
