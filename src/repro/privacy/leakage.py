"""Leakage accounting.

The paper calls for "a better understanding of information leakage when
updates are verified with respect to constraints".  This module makes
leakage a first-class, testable artifact:

* every verification engine declares a :class:`LeakageProfile` — the
  set of :class:`LeakageClass` items an adversary in its threat model
  observes;
* :func:`transcript_distinguishability` gives an empirical check: run
  the same engine on two different secret inputs and compare the
  manager-visible transcripts; profiles claiming input-independence
  must produce transcripts identical up to the declared classes.
"""

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Sequence, Tuple


class LeakageClass(enum.Enum):
    """Categories of what an adversary may learn."""

    DECISION_BIT = "decision_bit"          # accept/reject outcome
    TIMING = "timing"                      # when updates happen
    VOLUME = "volume"                      # how many / how large
    EQUALITY_PATTERN = "equality_pattern"  # which items are equal (DET)
    ACCESS_PATTERN = "access_pattern"      # which rows are touched
    AGGREGATE_NOISY = "aggregate_noisy"    # DP-noised statistics
    TOKEN_SERIALS = "token_serials"        # unlinkable serials + counts
    PLAINTEXT = "plaintext"                # full contents (public data)


@dataclass(frozen=True)
class LeakageProfile:
    """What one engine admits leaking to the data manager."""

    engine: str
    classes: FrozenSet[LeakageClass]
    notes: str = ""

    def leaks(self, cls: LeakageClass) -> bool:
        return cls in self.classes

    def leaks_plaintext(self) -> bool:
        return LeakageClass.PLAINTEXT in self.classes

    def is_subset_of(self, other: "LeakageProfile") -> bool:
        return self.classes <= other.classes


def profile(engine: str, *classes: LeakageClass, notes: str = "") -> LeakageProfile:
    return LeakageProfile(engine=engine, classes=frozenset(classes), notes=notes)


# Reference profiles for the engines in repro.core.verifiers; the test
# suite checks each engine's recorded transcript against its profile.

PLAINTEXT_PROFILE = profile(
    "plaintext",
    LeakageClass.PLAINTEXT,
    LeakageClass.DECISION_BIT,
    LeakageClass.TIMING,
    notes="non-private baseline",
)

PAILLIER_PROFILE = profile(
    "paillier",
    LeakageClass.DECISION_BIT,
    LeakageClass.TIMING,
    LeakageClass.VOLUME,
    LeakageClass.ACCESS_PATTERN,
    notes="manager sees ciphertexts and which rows are touched",
)

MPC_PROFILE = profile(
    "mpc",
    LeakageClass.DECISION_BIT,
    LeakageClass.TIMING,
    LeakageClass.VOLUME,
    notes="each platform sees shares plus the joint decision",
)

TOKEN_PROFILE = profile(
    "token",
    LeakageClass.DECISION_BIT,
    LeakageClass.TIMING,
    LeakageClass.TOKEN_SERIALS,
    LeakageClass.VOLUME,
    notes="platforms see unlinkable serials and per-pseudonym counts",
)

ENCLAVE_PROFILE = profile(
    "enclave",
    LeakageClass.DECISION_BIT,
    LeakageClass.TIMING,
    LeakageClass.ACCESS_PATTERN,
    notes="host sees ecall timing and paging, never contents",
)

DP_INDEX_PROFILE = profile(
    "dp-index",
    LeakageClass.DECISION_BIT,
    LeakageClass.TIMING,
    LeakageClass.AGGREGATE_NOISY,
    notes="manager holds noisy histograms (epsilon-bounded)",
)


def transcript_shape(transcript: Sequence[Any]) -> List[Tuple[str, int]]:
    """Reduce a manager-visible transcript to (type-name, size) pairs —
    the shape an adversary could compare across runs."""
    shape = []
    for item in transcript:
        if isinstance(item, (bytes, str)):
            shape.append((type(item).__name__, len(item)))
        elif isinstance(item, int):
            shape.append(("int", item.bit_length()))
        elif isinstance(item, dict):
            shape.append(("dict", len(item)))
        elif isinstance(item, (list, tuple)):
            shape.append((type(item).__name__, len(item)))
        else:
            shape.append((type(item).__name__, 0))
    return shape


def transcript_distinguishability(
    transcript_a: Sequence[Any], transcript_b: Sequence[Any]
) -> bool:
    """True if the two transcripts differ in *shape* — i.e. an adversary
    could distinguish the secret inputs from structure alone.

    Engines whose profile excludes PLAINTEXT must produce
    shape-indistinguishable transcripts for same-length workloads; the
    leakage tests enforce this.
    """
    return transcript_shape(transcript_a) != transcript_shape(transcript_b)
