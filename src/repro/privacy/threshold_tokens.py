"""Distributed token issuance — Separ's future work, implemented.

Section 5: "Separ requires a centralized trusted third party authority
to issue tokens.  This is a serious shortcoming, as a general
distributed approach should be used."  This module removes the single
trusted issuer with an n-of-n *multiplicatively shared* RSA signing
key:

* a one-time dealer generates the RSA key and splits the private
  exponent additively, ``d = d_1 + ... + d_n  (mod phi(N))``, then
  destroys it;
* each share-signer independently enforces the per-participant budget
  and, if satisfied, returns the partial signature ``m^{d_i} mod N``;
* the client multiplies the partials: since the exponents sum to d
  modulo phi(N), the product is exactly the ordinary RSA signature
  ``m^d`` — verifiable under the unchanged public key, so wallets,
  registries and verifiers need no changes.

Security gain over the centralized authority: a coalition of up to
n-1 compromised signers can neither forge tokens (the missing share's
exponent is information-theoretically hidden) nor over-issue (every
honest signer checks the budget before contributing its partial).
Liveness is the flip side — all n signers must be online — which is
the n-of-n/k-of-n trade-off the benches quantify; a k-of-n variant
(Shoup threshold RSA) is the natural next step and is documented as
out of scope in DESIGN.md.
"""

import math
from typing import Dict, List, Optional

from repro.common.errors import PReVerError
from repro.common.randomness import SystemRandomSource
from repro.crypto.blind import BlindedToken
from repro.crypto.numbers import generate_prime, modinv
from repro.crypto.rsa import PUBLIC_EXPONENT, RSAPublicKey
from repro.privacy.tokens import IssuerUnavailable, TokenError


class ShareSigner:
    """One member of the distributed authority.

    Holds a share of the signing exponent plus its own copy of the
    issuance ledger; refuses partials beyond the budget.
    """

    def __init__(self, index: int, n: int, d_share: int,
                 budget_per_period: int):
        self.index = index
        self._n = n
        self._d_share = d_share
        self.budget_per_period = budget_per_period
        self._issued: Dict[tuple, int] = {}
        self.online = True
        self.partials_issued = 0

    def issued_count(self, participant: str, period: int) -> int:
        return self._issued.get((participant, period), 0)

    def partial_sign(self, participant: str, period: int,
                     blinded: BlindedToken) -> int:
        if not self.online:
            raise IssuerUnavailable(f"share signer {self.index} is offline")
        already = self.issued_count(participant, period)
        if already + 1 > self.budget_per_period:
            raise TokenError(
                f"signer {self.index}: {participant!r} exceeded the "
                f"period-{period} budget"
            )
        self._issued[(participant, period)] = already + 1
        self.partials_issued += 1
        return pow(blinded.blinded, self._d_share, self._n)


class DistributedTokenAuthority:
    """Drop-in replacement for :class:`~repro.privacy.tokens.TokenAuthority`
    with no single trusted signer.

    Exposes the same ``public_key`` / ``issue`` / ``issued_count``
    surface, so :class:`~repro.privacy.tokens.TokenWallet` works
    unchanged.
    """

    def __init__(self, signers: int, budget_per_period: int,
                 rsa_bits: int = 512, rng=None):
        if signers < 2:
            raise PReVerError("a distributed authority needs >= 2 signers")
        self.budget_per_period = budget_per_period
        rng = rng or SystemRandomSource()
        n, phi, d = self._generate_key(rsa_bits, rng)
        self.public_key = RSAPublicKey(n=n, e=PUBLIC_EXPONENT)
        shares = [rng.randbelow(phi) for _ in range(signers - 1)]
        shares.append((d - sum(shares)) % phi)
        # The dealer's view (phi, d) is discarded here; only shares
        # survive in the signer objects.
        self.signers = [
            ShareSigner(i, n, share, budget_per_period)
            for i, share in enumerate(shares)
        ]

    @staticmethod
    def _generate_key(bits: int, rng):
        half = bits // 2
        while True:
            p = generate_prime(half, rng=rng)
            q = generate_prime(half, rng=rng)
            if p == q:
                continue
            phi = (p - 1) * (q - 1)
            if math.gcd(PUBLIC_EXPONENT, phi) != 1:
                continue
            return p * q, phi, modinv(PUBLIC_EXPONENT, phi)

    def issued_count(self, participant: str, period: int) -> int:
        """The consensus issuance count (max over signers — honest
        signers agree; a lagging count means a signer refused)."""
        return max(
            signer.issued_count(participant, period) for signer in self.signers
        )

    def issue(self, participant: str, period: int,
              blinded_tokens: List[BlindedToken]) -> List[int]:
        """Collect partials from every signer and combine.

        Any signer refusing (budget or offline) aborts the whole
        issuance — a partial signature set is useless by construction.
        The batch is screened upfront so a mid-batch refusal cannot
        strand already-issued tokens.
        """
        already = self.issued_count(participant, period)
        if already + len(blinded_tokens) > self.budget_per_period:
            raise TokenError(
                f"{participant!r} exceeded the period-{period} budget "
                f"({already} + {len(blinded_tokens)} > "
                f"{self.budget_per_period})"
            )
        signatures = []
        for token in blinded_tokens:
            partials = [
                signer.partial_sign(participant, period, token)
                for signer in self.signers
            ]
            combined = 1
            for partial in partials:
                combined = combined * partial % self.public_key.n
            signatures.append(combined)
        return signatures

    def take_offline(self, index: int) -> None:
        self.signers[index].online = False

    def compromise_view(self, indices: List[int]) -> dict:
        """What a coalition of compromised signers knows: their shares
        and their issuance ledgers — never the full exponent."""
        return {
            "shares_held": len(indices),
            "shares_needed": len(self.signers),
            "issuance_ledgers": [
                dict(self.signers[i]._issued) for i in indices
            ],
        }
