"""Exception hierarchy for the PReVer framework.

Every error raised by the library derives from :class:`PReVerError` so
that callers can catch library failures without masking programming
errors (``TypeError``, ``KeyError``, ...).
"""


class PReVerError(Exception):
    """Base class for all errors raised by the repro library."""


class ConstraintViolation(PReVerError):
    """An update failed verification against a constraint or regulation.

    Carries the identifier of the violated constraint so applications
    can report *which* policy rejected the update without leaking the
    constraint body in contexts where constraints are private.
    """

    def __init__(self, constraint_id: str, message: str = ""):
        self.constraint_id = constraint_id
        super().__init__(message or f"constraint {constraint_id} violated")


class IntegrityError(PReVerError):
    """Stored data, a proof, or a ledger digest failed verification."""


class PrivacyError(PReVerError):
    """An operation would reveal information it must not reveal.

    Raised, for example, when a plaintext value is handed to a component
    that is only allowed to observe ciphertexts or secret shares.
    """


class ProtocolError(PReVerError):
    """A distributed protocol (consensus, MPC, PIR) was misused or
    received a message that violates its state machine."""


class BudgetExhausted(PReVerError):
    """A differential-privacy budget (or token budget) ran out."""

    def __init__(self, spent: float, limit: float, message: str = ""):
        self.spent = spent
        self.limit = limit
        super().__init__(
            message or f"privacy budget exhausted: spent {spent} of {limit}"
        )


class SerializationError(PReVerError):
    """A value could not be canonically serialized or deserialized."""


class DurabilityError(PReVerError):
    """The durability layer (WAL, snapshots, recovery) was misused or
    hit an unrecoverable persistence failure."""


class WalCorruptionError(DurabilityError):
    """The write-ahead log is damaged in a way recovery must refuse to
    repair silently.

    A *torn tail* (an interrupted final write) is expected after a
    crash and is truncated automatically; this error means something
    worse: a CRC-corrupt record with valid records after it, a
    missing/out-of-order LSN, or a damaged non-final segment — all
    signs of bit rot or tampering rather than a clean crash."""
