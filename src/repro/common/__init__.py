"""Shared infrastructure used by every PReVer subsystem.

This package deliberately contains only dependency-free building blocks:
error types, identifier generation, canonical serialization (needed so
that hashes and signatures are stable), a simulated clock for
discrete-event components, a metrics registry used by the benchmark
harness, and seeded randomness helpers so every experiment is
reproducible.
"""

from repro.common.errors import (
    PReVerError,
    ConstraintViolation,
    IntegrityError,
    PrivacyError,
    ProtocolError,
    BudgetExhausted,
    SerializationError,
)
from repro.common.ids import make_id, short_hash
from repro.common.encoding import RawJson, encode_canonical, encode_canonical_bytes
from repro.common.serialization import canonical_bytes, canonical_json
from repro.common.clock import SimClock, WallClock
from repro.common.metrics import MetricsRegistry, Counter, Timer
from repro.common.randomness import deterministic_rng, SystemRandomSource

__all__ = [
    "PReVerError",
    "ConstraintViolation",
    "IntegrityError",
    "PrivacyError",
    "ProtocolError",
    "BudgetExhausted",
    "SerializationError",
    "make_id",
    "short_hash",
    "canonical_bytes",
    "canonical_json",
    "RawJson",
    "encode_canonical",
    "encode_canonical_bytes",
    "SimClock",
    "WallClock",
    "MetricsRegistry",
    "Counter",
    "Timer",
    "deterministic_rng",
    "SystemRandomSource",
]
