"""A small metrics registry.

Benchmarks and protocol simulations record counters (messages sent,
bytes on the wire, constraint checks), timers, and histograms.  The
registry is explicit — components receive one rather than writing to a
global — so parallel experiments never interfere.

Snapshots are emitted with sorted keys so JSON artifacts written from
two runs of the same experiment diff cleanly (see
:mod:`repro.obs.export` for the Prometheus/JSON exporters).
"""

import math
import statistics
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence

from repro.common.clock import WallClock


def nearest_rank(samples: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile over ``samples``: the smallest sample
    such that at least ``pct`` percent of samples are <= it (so p50 of
    ``[1, 2, 3, 4]`` is 2, not 3), and 0.0 for an empty sequence.

    This is the one percentile definition the codebase uses —
    :meth:`Timer.percentile`, the consensus cluster stats, and the
    benchmark reports all delegate here, so latency quantiles are
    comparable across every artifact.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = math.ceil(pct / 100.0 * len(ordered))
    return ordered[min(len(ordered) - 1, max(0, rank - 1))]


class Counter:
    """A monotonically increasing count with an optional value sum."""

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0

    def add(self, value: float = 1.0) -> None:
        self.count += 1
        self.total += value

    def to_dict(self) -> dict:
        return {"name": self.name, "count": self.count, "total": self.total}


class Gauge:
    """A point-in-time value that can move both ways (queue depths,
    committer lag, pool sizes) — unlike :class:`Counter`, ``set`` is
    the primary write and the latest value is the whole story."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def add(self, delta: float = 1.0) -> None:
        """Move the current value by ``delta`` (may be negative)."""
        self.value += delta

    def to_dict(self) -> dict:
        return {"name": self.name, "value": self.value}


class Timer:
    """Collects durations; reports mean / p50 / p95 / p99 / max."""

    def __init__(self, name: str):
        self.name = name
        self.samples: List[float] = []
        self.total = 0.0

    def record(self, seconds: float) -> None:
        self.samples.append(seconds)
        self.total += seconds

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples) if self.samples else 0.0

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile: the smallest sample such that at
        least ``pct`` percent of samples are <= it (so p50 of
        ``[1, 2, 3, 4]`` is 2, not 3)."""
        return nearest_rank(self.samples, pct)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "n": len(self.samples),
            "mean": self.mean,
            "total": self.total,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": max(self.samples) if self.samples else 0.0,
        }

    def summary(self) -> dict:
        """Alias for :meth:`to_dict` — the reporting-side name."""
        return self.to_dict()


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    Each bucket counts observations ``<= upper_bound``; an implicit
    ``+inf`` bucket catches the rest, so ``counts[-1] == count``.
    Default buckets suit sub-second latencies in seconds.
    """

    DEFAULT_BUCKETS = (
        0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
        0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    )

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None):
        self.name = name
        bounds = tuple(sorted(buckets if buckets is not None
                              else self.DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        # One slot per finite bound plus the +inf overflow slot.
        self._bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self._bucket_counts[i] += 1
                return
        self._bucket_counts[-1] += 1

    def cumulative_buckets(self) -> List[tuple]:
        """``[(upper_bound, cumulative_count), ...]`` ending at +inf."""
        out = []
        running = 0
        for bound, n in zip(self.bounds, self._bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "buckets": [
                {"le": bound, "count": n}
                for bound, n in self.cumulative_buckets()
            ],
        }


class MetricsRegistry:
    """Holds named counters, gauges, timers, and histograms for one run."""

    def __init__(self, clock=None):
        self._clock = clock or WallClock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def timer(self, name: str) -> Timer:
        if name not in self._timers:
            self._timers[name] = Timer(name)
        return self._timers[name]

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, buckets)
        return self._histograms[name]

    def counter_value(self, name: str) -> int:
        """Current count for ``name`` without creating the counter —
        the read-side accessor for reporting code, so reads never
        pollute snapshots with zero-valued entries."""
        counter = self._counters.get(name)
        return counter.count if counter is not None else 0

    def counter_total(self, name: str) -> float:
        """Summed value for ``name`` (0.0 when it never fired) — the
        read-side accessor for value-carrying counters like byte
        counts, where ``count`` is just the number of ``add`` calls."""
        counter = self._counters.get(name)
        return counter.total if counter is not None else 0.0

    def gauge_value(self, name: str) -> float:
        """Current value for gauge ``name`` without creating it (0.0
        when it was never set) — the read-side accessor."""
        gauge = self._gauges.get(name)
        return gauge.value if gauge is not None else 0.0

    def timer_total(self, name: str) -> float:
        """Total recorded seconds for ``name`` without creating the
        timer (0.0 when it never fired) — the read-side accessor."""
        timer = self._timers.get(name)
        return timer.total if timer is not None else 0.0

    @contextmanager
    def timed(self, name: str):
        """Context manager recording wall time into ``timer(name)``."""
        start = self._clock.now()
        try:
            yield
        finally:
            self.timer(name).record(self._clock.now() - start)

    def snapshot(self) -> dict:
        # Sorted keys: snapshots feed JSON artifacts that should diff
        # cleanly run-to-run regardless of registration order.
        return {
            "counters": {n: self._counters[n].to_dict()
                         for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].to_dict()
                       for n in sorted(self._gauges)},
            "timers": {n: self._timers[n].to_dict()
                       for n in sorted(self._timers)},
            "histograms": {n: self._histograms[n].to_dict()
                           for n in sorted(self._histograms)},
        }

    def throughput_report(
        self,
        updates_counter: str = "pipeline.updates",
        stage_prefix: str = "pipeline.stage.",
    ) -> dict:
        """Summarize the instrumented pipeline: per-stage totals plus
        end-to-end updates/sec, for batched-vs-sequential comparisons.

        Each stage's ``per_sec`` is computed from that stage's own
        recorded wall time (``n / total``), *not* from the summed
        elapsed across stages: under the parallel executor stages
        overlap batch-prepared work, so dividing by the sum would
        understate every stage's true rate.  ``updates_per_sec``
        remains the conservative end-to-end figure over summed stage
        time (an overlap-free lower bound).
        """
        updates = self._counters.get(updates_counter)
        count = updates.count if updates is not None else 0
        stages = {}
        total_seconds = 0.0
        for name in sorted(self._timers):
            timer = self._timers[name]
            if not name.startswith(stage_prefix):
                continue
            stage = name[len(stage_prefix):]
            n = len(timer.samples)
            stages[stage] = {
                "n": n,
                "mean": timer.mean,
                "total": timer.total,
                "p50": timer.percentile(50),
                "p95": timer.percentile(95),
                "p99": timer.percentile(99),
                "per_sec": (n / timer.total) if timer.total else 0.0,
            }
            total_seconds += timer.total
        report = {
            "updates": count,
            "stages": stages,
            "total_seconds": total_seconds,
            "updates_per_sec": (count / total_seconds) if total_seconds else 0.0,
        }
        # Pipelined (verify↔anchor overlap) runs record their committer
        # telemetry under pipeline.*; surface it so overlap wins are
        # measured, not inferred.  The section appears only once a
        # PipelinedScheduler has been created, keeping the report shape
        # stable for plain submit/submit_many runs.
        if "pipeline.deferred_commits" in self._counters:
            report["pipelined"] = {
                "deferred_commits":
                    self.counter_value("pipeline.deferred_commits"),
                "overlapped_commits":
                    self.counter_value("pipeline.overlapped_commits"),
                "committer_wait_seconds":
                    self.timer_total("pipeline.committer_wait"),
                "committer_lag_seconds":
                    self.timer_total("pipeline.committer_lag"),
                "committer_queue_depth":
                    self.gauge_value("pipeline.committer_queue_depth"),
            }
        return report
