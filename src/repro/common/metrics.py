"""A small metrics registry.

Benchmarks and protocol simulations record counters (messages sent,
bytes on the wire, constraint checks) and timers.  The registry is
explicit — components receive one rather than writing to a global — so
parallel experiments never interfere.
"""

import statistics
from contextlib import contextmanager
from typing import Dict, List

from repro.common.clock import WallClock


class Counter:
    """A monotonically increasing count with an optional value sum."""

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0

    def add(self, value: float = 1.0) -> None:
        self.count += 1
        self.total += value

    def to_dict(self) -> dict:
        return {"name": self.name, "count": self.count, "total": self.total}


class Timer:
    """Collects durations; reports mean / p50 / p95 / max."""

    def __init__(self, name: str):
        self.name = name
        self.samples: List[float] = []
        self.total = 0.0

    def record(self, seconds: float) -> None:
        self.samples.append(seconds)
        self.total += seconds

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples) if self.samples else 0.0

    def percentile(self, pct: float) -> float:
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(pct / 100.0 * len(ordered)))
        return ordered[index]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "n": len(self.samples),
            "mean": self.mean,
            "total": self.total,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": max(self.samples) if self.samples else 0.0,
        }


class MetricsRegistry:
    """Holds named counters and timers for one experiment run."""

    def __init__(self, clock=None):
        self._clock = clock or WallClock()
        self._counters: Dict[str, Counter] = {}
        self._timers: Dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def timer(self, name: str) -> Timer:
        if name not in self._timers:
            self._timers[name] = Timer(name)
        return self._timers[name]

    @contextmanager
    def timed(self, name: str):
        """Context manager recording wall time into ``timer(name)``."""
        start = self._clock.now()
        try:
            yield
        finally:
            self.timer(name).record(self._clock.now() - start)

    def snapshot(self) -> dict:
        return {
            "counters": {n: c.to_dict() for n, c in self._counters.items()},
            "timers": {n: t.to_dict() for n, t in self._timers.items()},
        }

    def throughput_report(
        self,
        updates_counter: str = "pipeline.updates",
        stage_prefix: str = "pipeline.stage.",
    ) -> dict:
        """Summarize the instrumented pipeline: per-stage totals plus
        end-to-end updates/sec, for batched-vs-sequential comparisons.
        """
        updates = self._counters.get(updates_counter)
        count = updates.count if updates is not None else 0
        stages = {}
        total_seconds = 0.0
        for name, timer in self._timers.items():
            if not name.startswith(stage_prefix):
                continue
            stage = name[len(stage_prefix):]
            stages[stage] = {
                "n": len(timer.samples),
                "mean": timer.mean,
                "total": timer.total,
                "p95": timer.percentile(95),
            }
            total_seconds += timer.total
        return {
            "updates": count,
            "stages": stages,
            "total_seconds": total_seconds,
            "updates_per_sec": (count / total_seconds) if total_seconds else 0.0,
        }
