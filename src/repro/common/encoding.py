"""The encode-once layer: a fast canonical encoder and pre-encoded
JSON fragments.

Profiling the batched Figure-2 pipeline after the fast-math backend
landed showed the plaintext path encode/hash-bound: the same frozen
update record was canonically JSON-encoded three independent times per
submit — once for the signing payload, once for the Merkle leaf, once
for the WAL frame.  This module attacks both halves of that cost:

* :func:`encode_canonical` — a specialized canonical encoder with flat,
  loop-based fast paths for the str/int/dict shapes that dominate
  update payloads.  It validates dict keys *while* encoding (the old
  path paid a separate pre-walk), and anything outside the fast shapes
  (type subclasses, exotic objects) falls back to the legacy
  ``json.JSONEncoder`` path for that subtree, so the emitted bytes are
  identical to the original encoder on every input — the canonical
  goldens in ``tests/test_encoding.py`` pin this byte-for-byte.

* :class:`RawJson` — a wrapper marking a string as *already* canonical
  JSON.  The encoder splices it verbatim, which is what lets the anchor
  stage encode each decision payload exactly once and reuse the bytes
  for the ledger's Merkle leaf, the WAL's anchor frame, and the
  ``/trace`` re-verification (see ``repro.ledger.central`` and
  ``repro.core.pipeline``).  Canonical JSON is deterministic, so
  splicing a canonical fragment into a larger canonical document
  yields the same bytes as encoding the whole value from scratch.

Per-object byte caches live on the frozen hot-path records themselves
(``LedgerEntry.leaf_bytes``, ``LogRecord.payload_bytes``) — frozen
dataclasses make the memo sound, and the mutation-hazard tests prove
it.  Mutable objects (notably :class:`repro.model.update.Update`, whose
tamper-detection semantics *require* re-encoding after mutation) are
never identity-cached.
"""

import json
from json.encoder import encode_basestring_ascii as _escape
from typing import Any

from repro.common.errors import SerializationError

_BYTES_TAG = "__bytes_hex__"

_INF = float("inf")


class RawJson:
    """A canonical-JSON fragment to splice verbatim into an encoding.

    The constructor trusts its input: ``text`` must be the exact output
    of :func:`encode_canonical` for some value, or the surrounding
    document stops being canonical.  Only encode-once call sites that
    just produced the fragment should build these.
    """

    __slots__ = ("text",)

    def __init__(self, text: str):
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RawJson({self.text!r})"


def _assert_string_keys(value: Any) -> None:
    """Reject non-string dict keys anywhere in the value (the legacy
    pre-walk, still used ahead of legacy-encoder subtree fallbacks —
    ``json.dumps`` would silently coerce such keys, changing the
    canonical bytes)."""
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError(f"non-string dict key: {key!r}")
            if isinstance(item, (dict, list, tuple)):
                _assert_string_keys(item)
    elif isinstance(value, (list, tuple)):
        for item in value:
            if isinstance(item, (dict, list, tuple)):
                _assert_string_keys(item)


def _json_default(value: Any) -> Any:
    """Legacy-encoder hook for the non-JSON types we support."""
    if isinstance(value, bytes):
        return {_BYTES_TAG: value.hex()}
    to_dict = getattr(value, "to_dict", None)
    if to_dict is not None:
        return to_dict()
    raise SerializationError(f"cannot canonically serialize {type(value)!r}")


# The original encoder (one shared instance: json.dumps() with
# non-default arguments builds a fresh JSONEncoder per call).  It now
# serves two roles: the byte-identity reference for the goldens, and
# the subtree fallback for values outside the fast paths.
LEGACY_ENCODER = json.JSONEncoder(
    sort_keys=True, separators=(",", ":"), default=_json_default
)


def legacy_canonical_json(value: Any) -> str:
    """The pre-encode-once path, kept verbatim as the byte-identity
    oracle (``tests/test_encoding.py`` compares every corpus shape
    against it) and as the exotic-value fallback."""
    _assert_string_keys(value)
    return LEGACY_ENCODER.encode(value)


def _encode_fallback(value: Any, put) -> None:
    """Encode one node outside the fast shapes.

    bytes and ``to_dict`` objects convert and re-enter the fast
    encoder; anything else (str/int/float/dict/list *subclasses*,
    whose repr or iteration may differ from the base type) goes
    through the legacy encoder for the whole subtree, keeping the
    emitted bytes identical to the original path.
    """
    if isinstance(value, bytes):
        put('{"%s":"%s"}' % (_BYTES_TAG, value.hex()))
        return
    to_dict = getattr(value, "to_dict", None)
    if to_dict is not None:
        _encode(to_dict(), put)
        return
    if isinstance(value, (str, int, float, dict, list, tuple)):
        put(legacy_canonical_json(value))
        return
    raise SerializationError(f"cannot canonically serialize {type(value)!r}")


def _encode(value: Any, put) -> None:
    """Append the canonical encoding of ``value`` via ``put``.

    Exact-type checks keep the fast paths honest: a subclass (IntEnum,
    a str subtype, an OrderedDict) drops to :func:`_encode_fallback`
    so its bytes come from the same machinery as before.  Flat dicts
    and lists — the dominant update-payload shape — encode in a single
    loop with no recursion.
    """
    t = type(value)
    if t is str:
        put(_escape(value))
    elif t is int:
        put(repr(value))
    elif t is dict:
        if not value:
            put("{}")
            return
        try:
            keys = sorted(value)
        except TypeError:
            # Mixed key types cannot sort; a non-string key is the only
            # way that happens on valid inputs — surface it with the
            # canonical error.  (All-string keys always sort.)
            for key in value:
                if not isinstance(key, str):
                    raise SerializationError(
                        f"non-string dict key: {key!r}"
                    ) from None
            raise
        put("{")
        first = True
        for key in keys:
            if first:
                first = False
            else:
                put(",")
            if type(key) is not str and not isinstance(key, str):
                raise SerializationError(f"non-string dict key: {key!r}")
            put(_escape(key))
            put(":")
            _encode(value[key], put)
        put("}")
    elif t is list or t is tuple:
        if not value:
            put("[]")
            return
        put("[")
        first = True
        for item in value:
            if first:
                first = False
            else:
                put(",")
            _encode(item, put)
        put("]")
    elif value is None:
        put("null")
    elif t is bool:
        put("true" if value else "false")
    elif t is float:
        if -_INF < value < _INF:
            put(repr(value))
        elif value != value:
            put("NaN")
        else:
            put("Infinity" if value > 0 else "-Infinity")
    elif t is RawJson:
        put(value.text)
    else:
        _encode_fallback(value, put)


def encode_canonical(value: Any) -> str:
    """Serialize ``value`` to a canonical JSON string.

    Byte-identical to :func:`legacy_canonical_json` for every value
    the legacy path accepts, plus :class:`RawJson` fragments, which it
    splices verbatim.
    """
    parts = []
    _encode(value, parts.append)
    return "".join(parts)


def encode_canonical_bytes(value: Any) -> bytes:
    """Canonical UTF-8 bytes of ``value`` (hash/sign input).

    Canonical JSON is ASCII (``ensure_ascii`` escaping), so the final
    UTF-8 encode is a fast, allocation-only pass.
    """
    return encode_canonical(value).encode("utf-8")
