"""Clocks.

Protocol-level experiments (consensus, MPC rounds) run on a simulated
clock so results are deterministic and independent of host load; crypto
micro-benchmarks use the wall clock.  Both expose the same ``now()``
interface so components can be written once.
"""

import time


class SimClock:
    """A manually-advanced clock measured in seconds of simulated time."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move simulated time forward; negative advances are rejected."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute timestamp (monotonically)."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock from {self._now} back to {timestamp}"
            )
        self._now = timestamp
        return self._now


class WallClock:
    """Real time, for measuring actual crypto computation cost."""

    def now(self) -> float:
        return time.perf_counter()
