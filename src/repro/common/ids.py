"""Identifier helpers.

PReVer components (updates, blocks, tokens, participants) need stable,
collision-resistant identifiers.  Identifiers are derived from a counter
plus entropy rather than wall-clock time so that simulations remain
deterministic when seeded.
"""

import hashlib
import itertools
import threading

_COUNTER = itertools.count()
_LOCK = threading.Lock()


def make_id(prefix: str, entropy: bytes = b"") -> str:
    """Return a unique identifier of the form ``prefix-NNNNNN[-hash]``.

    The counter guarantees process-level uniqueness; optional entropy
    (e.g. a serialized payload) is mixed in as a short digest suffix so
    identifiers are also meaningful across processes.
    """
    with _LOCK:
        n = next(_COUNTER)
    if entropy:
        return f"{prefix}-{n:06d}-{short_hash(entropy)}"
    return f"{prefix}-{n:06d}"


def short_hash(data: bytes, length: int = 8) -> str:
    """A short hex digest used for human-readable identifiers."""
    return hashlib.sha256(data).hexdigest()[:length]
