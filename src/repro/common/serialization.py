"""Canonical serialization.

Hashes, signatures and Merkle leaves must be computed over a canonical
byte representation; two semantically equal values must serialize to the
same bytes on every platform.  We use JSON with sorted keys and no
insignificant whitespace, with a small extension for ``bytes`` (hex
tagged) and big integers (JSON handles arbitrary ints natively).
"""

import json
from typing import Any

from repro.common.errors import SerializationError

_BYTES_TAG = "__bytes_hex__"


def _encode(value: Any) -> Any:
    """Recursively convert a value into JSON-representable primitives."""
    if isinstance(value, bytes):
        return {_BYTES_TAG: value.hex()}
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError(f"non-string dict key: {key!r}")
            out[key] = _encode(item)
        return out
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "to_dict"):
        return _encode(value.to_dict())
    raise SerializationError(f"cannot canonically serialize {type(value)!r}")


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value.keys()) == {_BYTES_TAG}:
            return bytes.fromhex(value[_BYTES_TAG])
        return {key: _decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value


def canonical_json(value: Any) -> str:
    """Serialize ``value`` to a canonical JSON string."""
    return json.dumps(_encode(value), sort_keys=True, separators=(",", ":"))


def canonical_bytes(value: Any) -> bytes:
    """Serialize ``value`` to canonical UTF-8 bytes (hash/sign input)."""
    return canonical_json(value).encode("utf-8")


def from_canonical_json(text: str) -> Any:
    """Inverse of :func:`canonical_json` (restores tagged bytes)."""
    try:
        return _decode(json.loads(text))
    except (ValueError, TypeError) as exc:
        raise SerializationError(str(exc)) from exc
