"""Canonical serialization.

Hashes, signatures and Merkle leaves must be computed over a canonical
byte representation; two semantically equal values must serialize to the
same bytes on every platform.  We use JSON with sorted keys and no
insignificant whitespace, with a small extension for ``bytes`` (hex
tagged) and big integers (JSON handles arbitrary ints natively).
"""

import json
from typing import Any

from repro.common.errors import SerializationError

_BYTES_TAG = "__bytes_hex__"


def _assert_string_keys(value: Any) -> None:
    """Reject non-string dict keys anywhere in the value.

    ``json.dumps`` would silently coerce them (changing the canonical
    bytes), so they must be caught before encoding.  This walk builds
    no intermediate objects — the actual encoding happens in one pass
    inside the C serializer.
    """
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError(f"non-string dict key: {key!r}")
            if isinstance(item, (dict, list, tuple)):
                _assert_string_keys(item)
    elif isinstance(value, (list, tuple)):
        for item in value:
            if isinstance(item, (dict, list, tuple)):
                _assert_string_keys(item)


def _json_default(value: Any) -> Any:
    """Encoder hook for the non-JSON types we support."""
    if isinstance(value, bytes):
        return {_BYTES_TAG: value.hex()}
    to_dict = getattr(value, "to_dict", None)
    if to_dict is not None:
        return to_dict()
    raise SerializationError(f"cannot canonically serialize {type(value)!r}")


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value.keys()) == {_BYTES_TAG}:
            return bytes.fromhex(value[_BYTES_TAG])
        return {key: _decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value


# One encoder instance for every call: json.dumps() with non-default
# arguments builds a fresh JSONEncoder per invocation, which is
# measurable on the ledger-anchoring hot path.
_ENCODER = json.JSONEncoder(
    sort_keys=True, separators=(",", ":"), default=_json_default
)


def canonical_json(value: Any) -> str:
    """Serialize ``value`` to a canonical JSON string."""
    _assert_string_keys(value)
    return _ENCODER.encode(value)


def canonical_bytes(value: Any) -> bytes:
    """Serialize ``value`` to canonical UTF-8 bytes (hash/sign input)."""
    return canonical_json(value).encode("utf-8")


def from_canonical_json(text: str) -> Any:
    """Inverse of :func:`canonical_json` (restores tagged bytes)."""
    try:
        return _decode(json.loads(text))
    except (ValueError, TypeError) as exc:
        raise SerializationError(str(exc)) from exc
