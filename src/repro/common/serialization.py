"""Canonical serialization.

Hashes, signatures and Merkle leaves must be computed over a canonical
byte representation; two semantically equal values must serialize to the
same bytes on every platform.  We use JSON with sorted keys and no
insignificant whitespace, with a small extension for ``bytes`` (hex
tagged) and big integers (JSON handles arbitrary ints natively).

Encoding is delegated to :mod:`repro.common.encoding` — the encode-once
layer with flat fast paths for the str/int/dict shapes that dominate
update payloads and verbatim splicing of pre-encoded
:class:`~repro.common.encoding.RawJson` fragments.  Its output is
byte-identical to the original ``json.JSONEncoder`` path (kept there as
``legacy_canonical_json``, the oracle the encoding goldens compare
against), so every root, signature payload, and WAL frame is unchanged.
"""

import json
from typing import Any

from repro.common.encoding import (
    _BYTES_TAG,
    encode_canonical,
    encode_canonical_bytes,
)
from repro.common.errors import SerializationError


def canonical_json(value: Any) -> str:
    """Serialize ``value`` to a canonical JSON string."""
    return encode_canonical(value)


def canonical_bytes(value: Any) -> bytes:
    """Serialize ``value`` to canonical UTF-8 bytes (hash/sign input)."""
    return encode_canonical_bytes(value)


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value.keys()) == {_BYTES_TAG}:
            return bytes.fromhex(value[_BYTES_TAG])
        return {key: _decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value


def from_canonical_json(text: str) -> Any:
    """Inverse of :func:`canonical_json` (restores tagged bytes)."""
    try:
        return _decode(json.loads(text))
    except (ValueError, TypeError) as exc:
        raise SerializationError(str(exc)) from exc
