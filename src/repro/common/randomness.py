"""Randomness sources.

Cryptographic components need integers sampled from large ranges.  For
production use the source is the OS CSPRNG; for tests and reproducible
experiments a seeded deterministic source is provided.  Both expose the
same three methods, so key generation code is source-agnostic.
"""

import random
import secrets


class SystemRandomSource:
    """Cryptographically secure randomness backed by ``secrets``."""

    def randbits(self, bits: int) -> int:
        return secrets.randbits(bits)

    def randbelow(self, bound: int) -> int:
        if bound <= 0:
            raise ValueError("bound must be positive")
        return secrets.randbelow(bound)

    def randrange(self, low: int, high: int) -> int:
        """Uniform integer in [low, high)."""
        if high <= low:
            raise ValueError("empty range")
        return low + self.randbelow(high - low)


class DeterministicRandomSource:
    """Seeded randomness for reproducible tests and simulations.

    Not cryptographically secure; suitable only for experiments where
    determinism matters more than unpredictability.
    """

    def __init__(self, seed: int):
        self._rng = random.Random(seed)

    def randbits(self, bits: int) -> int:
        return self._rng.getrandbits(bits)

    def randbelow(self, bound: int) -> int:
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self._rng.randrange(bound)

    def randrange(self, low: int, high: int) -> int:
        if high <= low:
            raise ValueError("empty range")
        return self._rng.randrange(low, high)


def deterministic_rng(seed: int) -> DeterministicRandomSource:
    """Convenience constructor used throughout tests and benchmarks."""
    return DeterministicRandomSource(seed)
