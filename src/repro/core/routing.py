"""Constraint routing and batch-scoped aggregate caching.

Two pieces of the batched fast path live here:

* :class:`ConstraintRouter` — a table → applicable-constraints index.
  The sequential pipeline scans every registered constraint per update;
  with many table-scoped constraints that linear scan dominates.  The
  router materializes, per table, the ordered sublist of constraints
  that can possibly apply (constraints with no ``tables`` scope apply
  everywhere), so verification touches only relevant ones.

* :class:`BatchAggregateCache` — incremental aggregate state for one
  batch.  The reference semantics of an aggregate constraint re-scan
  the table on every check (``AggregateSpec.evaluate_over``), which
  makes a k-update batch cost O(k·rows).  Within a single batch no
  writer other than the pipeline itself touches the databases, so the
  cache evaluates each (constraint, table, group) once and then folds
  in the contributions of the updates the pipeline itself applies —
  O(rows + k) total, with *identical* decisions.

The cache is deliberately conservative: it only handles non-windowed
aggregates (a sliding window can silently expire rows between checks
under a wall clock), and any MODIFY/DELETE apply clears it, because
those can change or remove rows that earlier cached totals counted.
Everything else falls back to ``Constraint.check``.
"""

from typing import Dict, List, Optional, Sequence, Tuple

from repro.database.expr import Env
from repro.model.constraints import Constraint
from repro.model.update import UpdateOperation


class ConstraintRouter:
    """Ordered table → applicable-constraints index.

    ``route(table)`` returns constraints in registration order: the
    batch path must reject on the same (first-failing) constraint as
    the sequential scan.  Per-table sublists are built lazily and
    memoized; :meth:`rebuild` invalidates everything.
    """

    def __init__(self, constraints: Sequence[Constraint] = ()):
        self._constraints: List[Constraint] = list(constraints)
        self._by_table: Dict[str, List[Constraint]] = {}
        self._fingerprint: tuple = self.fingerprint(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    @staticmethod
    def fingerprint(constraints: Sequence[Constraint]) -> tuple:
        """Cheap content fingerprint of a constraint list, covering
        everything routing depends on: list length and order, entry
        identity (so replacing a constraint in place is detected, not
        just appends), and each entry's ``tables`` scope (so widening
        or narrowing a scope is detected).  Mutating a constraint's
        *check* — bound, predicate, window — deliberately does not
        change the fingerprint: the router holds object references and
        re-reads those fields on every check, so no rebuild is needed.
        """
        return tuple((id(c), c.tables) for c in constraints)

    def in_sync_with(self, constraints: Sequence[Constraint]) -> bool:
        """Whether the index still matches ``constraints`` (by
        :meth:`fingerprint`); when False the caller must
        :meth:`rebuild` before routing."""
        return self._fingerprint == self.fingerprint(constraints)

    def rebuild(self, constraints: Sequence[Constraint]) -> None:
        """Re-index from ``constraints``, dropping every memoized
        per-table sublist."""
        self._constraints = list(constraints)
        self._by_table.clear()
        self._fingerprint = self.fingerprint(self._constraints)

    def route(self, table: str) -> List[Constraint]:
        """Return, in registration order, the constraints that can
        apply to ``table`` (unscoped constraints apply everywhere)."""
        routed = self._by_table.get(table)
        if routed is None:
            routed = [
                c for c in self._constraints
                if not c.tables or table in c.tables
            ]
            self._by_table[table] = routed
        return routed


class BatchAggregateCache:
    """Per-batch incremental aggregate totals.

    ``current(constraint, update, now)`` returns what
    ``constraint.aggregate.evaluate_over(...)`` would return, scanning
    the databases only on the first check of each
    (constraint, table, group); afterwards :meth:`note_applied` keeps
    the totals in step with the rows the batch itself inserts.
    """

    def __init__(self, databases: Sequence):
        self._databases = list(databases)
        # (constraint_id, table, group) -> running aggregate total
        self._totals: Dict[Tuple[str, str, tuple], float] = {}
        # constraint_id -> constraint, for fold-in on apply
        self._constraints: Dict[str, Constraint] = {}

    @staticmethod
    def eligible(constraint: Constraint) -> bool:
        """Cacheable: aggregate, no sliding window."""
        return constraint.is_aggregate and constraint.aggregate.window is None

    @staticmethod
    def _group_of(constraint: Constraint, payload: dict) -> tuple:
        return tuple(
            payload.get(col) for col in constraint.aggregate.match_columns
        )

    def current(self, constraint: Constraint, update, now: float) -> float:
        """Running aggregate total for the update's group, scanning
        the databases only on the first check of that group."""
        group = self._group_of(constraint, update.payload)
        key = (constraint.constraint_id, update.table, group)
        total = self._totals.get(key)
        if total is None:
            total = constraint.aggregate.evaluate_over(
                self._databases, update.table, update.payload, now
            )
            self._totals[key] = total
            self._constraints[constraint.constraint_id] = constraint
        return total

    def note_applied(self, update) -> None:
        """Fold an applied update's row into the cached totals."""
        if update.operation is not UpdateOperation.INSERT:
            # A MODIFY/DELETE may alter rows already counted; drop all
            # cached state rather than track deltas for arbitrary rows.
            self._totals.clear()
            return
        row = update.payload
        for constraint in self._constraints.values():
            aggregate = constraint.aggregate
            group = self._group_of(constraint, row)
            key = (constraint.constraint_id, update.table, group)
            if key not in self._totals:
                continue
            if aggregate.filter is not None and not bool(
                aggregate.filter.evaluate(Env(row=row))
            ):
                continue
            if aggregate.func.upper() == "COUNT":
                self._totals[key] += 1.0
            else:
                value = row.get(aggregate.column)
                if value is not None:
                    self._totals[key] += float(value)

    def clear(self) -> None:
        """Drop every cached total and constraint reference."""
        self._totals.clear()
        self._constraints.clear()


def check_constraint(
    constraint: Constraint,
    databases: Sequence,
    update,
    now: float,
    cache: Optional[BatchAggregateCache] = None,
) -> bool:
    """``Constraint.check`` with an optional batch-cache fast path.

    Decision-equivalent to the reference semantics: the cached path
    computes the same ``current + contribution <comparison> bound``
    test, only sourcing ``current`` incrementally.
    """
    if cache is not None and BatchAggregateCache.eligible(constraint):
        current = cache.current(constraint, update, now)
        proposed = current + constraint.aggregate.contribution_of(update.payload)
        return constraint.comparison.apply(proposed, float(constraint.bound))
    return constraint.check(databases, update, now)
