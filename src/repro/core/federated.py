"""Federated verification engines (Research Challenge 2).

Two mechanisms, matching the paper's centralized/decentralized split:

* :class:`TokenVerifier` — centralized token-based enforcement: a
  trusted authority issues blind-signed per-period budgets; platforms
  verify and spend tokens against a shared double-spend registry.
  Supports upper- and lower-bound regulations on COUNT/SUM with integer
  units; "token-based mechanisms can only address simple
  COUNT-aggregate queries" (the paper) is enforced fail-closed.
* :class:`MPCVerifier` — decentralized secure multi-party computation:
  the platforms jointly evaluate the regulation over bit-shared local
  aggregates, revealing only the decision bit.
"""

from typing import Callable, Dict, List, Optional, Sequence

from repro.common.errors import PReVerError
from repro.common.metrics import MetricsRegistry
from repro.core.outcome import VerificationOutcome
from repro.core.verifiers import BaseVerifier, EngineError
from repro.model.constraints import Comparison, Constraint
from repro.model.update import Update
from repro.privacy import leakage as lk
from repro.privacy.mpc import MPCContext
from repro.privacy.tokens import (
    DoubleSpendError,
    SpendRegistry,
    TokenAuthority,
    TokenError,
    TokenWallet,
)


class TokenVerifier(BaseVerifier):
    """Centralized token-based regulation enforcement (Separ's core)."""

    name = "token"
    profile = lk.TOKEN_PROFILE

    def __init__(
        self,
        constraint: Constraint,
        authority: Optional[TokenAuthority] = None,
        registry: Optional[SpendRegistry] = None,
        period_of: Optional[Callable[[float], int]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        super().__init__([constraint], metrics)
        if not constraint.is_aggregate:
            raise EngineError("token mechanism needs an aggregate constraint")
        if constraint.aggregate.func.upper() not in ("COUNT", "SUM"):
            raise EngineError(
                "token-based mechanisms only address COUNT/SUM budgets "
                "(the generalization gap the paper highlights)"
            )
        if constraint.comparison is not Comparison.LE:
            raise EngineError(
                "token spending enforces upper bounds; use "
                "check_lower_bounds() for GE regulations at period close"
            )
        self.constraint = constraint
        self.authority = authority or TokenAuthority(
            budget_per_period=int(constraint.bound), rsa_bits=512
        )
        self.registry = registry or SpendRegistry(self.authority.public_key)
        window = constraint.aggregate.window
        default_period = window.length if window else 7 * 24 * 3600.0
        self.period_of = period_of or (lambda now: int(now // default_period))
        self._wallets: Dict[str, TokenWallet] = {}

    def wallet_for(self, producer: str) -> TokenWallet:
        if producer not in self._wallets:
            self._wallets[producer] = TokenWallet(producer, self.authority.public_key)
        return self._wallets[producer]

    def units_of(self, update: Update) -> int:
        contribution = self.constraint.aggregate.contribution_of(update.payload)
        units = int(round(contribution))
        if abs(units - contribution) > 1e-9:
            raise EngineError("token units must be integers")
        if units < 0:
            raise EngineError("token units must be non-negative")
        return units

    def verify(self, update: Update, now: float) -> VerificationOutcome:
        """Spend ``units`` tokens for the update's producer.

        The wallet lazily tops up from the authority (up to the budget);
        running out of budget *is* the regulation rejection.
        """
        period = self.period_of(now)
        producer = update.producers[0] if update.producers else "anonymous"
        wallet = self.wallet_for(producer)
        units = self.units_of(update)
        with self.metrics.timed("token.check"):
            if wallet.balance(period) < units:
                needed = units - wallet.balance(period)
                try:
                    wallet.request_tokens(self.authority, period, needed)
                except TokenError:
                    return self._outcome(
                        False, failed=self.constraint.constraint_id
                    )
            try:
                tokens = wallet.take(period, units)
            except TokenError:
                return self._outcome(False, failed=self.constraint.constraint_id)
            platform = update.managers[0] if update.managers else "platform"
            spent = []
            try:
                for token in tokens:
                    self.registry.spend(token, platform)
                    spent.append(token.serial)
                    self._observe(("serial", token.serial))
            except DoubleSpendError:
                return self._outcome(False, failed="token-double-spend")
        self.metrics.counter("token.spent").add(units)
        return self._outcome(True, serials=spent, period=period)

    def check_lower_bound(self, producer: str, period: int, minimum: int) -> bool:
        """Period-close GE regulation via per-pseudonym spend counts."""
        wallet = self.wallet_for(producer)
        return self.registry.check_lower_bound(
            period, wallet.pseudonym_for(period), minimum
        )


class MPCVerifier(BaseVerifier):
    """Decentralized secure multi-party verification.

    Each platform holds a local database; the regulation aggregates
    across all of them.  Per verification, each platform computes its
    *local* aggregate in the clear (its own data), then the platforms
    run the bitwise MPC protocol to test
    ``sum(local aggregates) + contribution <= bound``, revealing only
    the decision.
    """

    name = "mpc"
    profile = lk.MPC_PROFILE

    def __init__(
        self,
        databases: Sequence,            # one per platform
        constraint: Constraint,
        width: int = 12,
        metrics: Optional[MetricsRegistry] = None,
    ):
        super().__init__([constraint], metrics)
        if not (constraint.is_aggregate and constraint.is_linear()):
            raise EngineError("MPCVerifier needs a linear aggregate constraint")
        if constraint.comparison not in (Comparison.LE, Comparison.GE):
            raise EngineError("MPCVerifier supports LE/GE bounds")
        if len(databases) < 2:
            raise EngineError("federated MPC needs at least 2 platforms")
        self.databases = list(databases)
        self.constraint = constraint
        self.width = width
        self.mpc_runs = 0

    def verify(self, update: Update, now: float) -> VerificationOutcome:
        constraint = self.constraint
        submitting = 0  # index of the platform receiving the update
        if update.managers:
            for i, database in enumerate(self.databases):
                if database.name == update.managers[0]:
                    submitting = i
                    break
        local_values: List[int] = []
        for i, database in enumerate(self.databases):
            local = constraint.aggregate.evaluate_over(
                [database], update.table, update.payload, now
            )
            if i == submitting:
                local += constraint.aggregate.contribution_of(update.payload)
            value = int(round(local))
            if value < 0:
                raise EngineError("MPC bitwise protocol needs non-negative values")
            local_values.append(value)
        context = MPCContext(parties=len(self.databases), metrics=self.metrics)
        with self.metrics.timed("mpc.check"):
            within = context.verify_sum_upper_bound(
                local_values, int(constraint.bound), self.width
            )
        self.mpc_runs += 1
        if constraint.comparison is Comparison.GE:
            # GE: sum >= bound  <=>  not (sum <= bound - 1)
            context_ge = MPCContext(parties=len(self.databases), metrics=self.metrics)
            within = not context_ge.verify_sum_upper_bound(
                local_values, int(constraint.bound) - 1, self.width
            )
        self._observe(("decision", within))
        if not within:
            return self._outcome(False, failed=constraint.constraint_id)
        return self._outcome(True, parties=len(self.databases))
