"""Consensus-backed shard: N replica frameworks over one decided stream.

A :class:`ReplicatedShard` is the state-machine-replication view of
one PReVer shard.  A :class:`~repro.consensus.driver.ReplicationDriver`
orders proposed update batches; every *live* replica — a full
:class:`~repro.core.framework.PReVer` with its own ledger, durability
policy, and WAL directory — deterministically replays each decided
batch, and the shard asserts per-batch root equality across replicas
(fail-closed: divergence is an :class:`IntegrityError`, not a warning).
The replay path is the ordinary staged pipeline
(:meth:`Pipeline.run_decided_batch` via ``submit_many``), so a
replica's decision/digest/WAL stream is byte-identical to a standalone
framework fed the same decided order — which is exactly what the
driver-equivalence tests pin.

Crash/recovery: :meth:`crash_replica` drops one replica;
:meth:`restart_replica` rebuilds it from its builder, replays its own
WAL (when durable), derives how many decided batches that recovered
prefix covers, then resynchronizes the rest via ``driver.catch_up``
against the committed prefix and re-asserts root convergence.  A
non-durable replica recovers from the committed prefix alone — the
decided stream *is* the authoritative history.

The shard exposes the same handle surface as the sharded front-end's
serial/process handles (submit, submit_many_async, digest, recover,
telemetry, ...), so :class:`~repro.core.sharded.ShardedPReVer` can
drop it in per shard via its ``consensus=`` plan knobs.
"""

from typing import Callable, List, Optional, Sequence

from repro.common.errors import IntegrityError, PReVerError, ProtocolError
from repro.common.metrics import MetricsRegistry
from repro.consensus.driver import LocalDriver, ReplicationDriver
from repro.core.framework import PReVer
from repro.core.outcome import UpdateResult
from repro.model.update import Update
from repro.obs.tracing import NOOP_TRACER


class _Immediate:
    """Future-alike over an already computed value (the async-dispatch
    shim the sharded front-end's scatter/gather expects)."""

    def __init__(self, value):
        self._value = value

    def result(self):
        """The wrapped value."""
        return self._value


class ReplicatedShard:
    """One shard's pipeline replicated across N frameworks.

    ``build`` is a zero-argument builder returning a fresh
    :class:`~repro.core.framework.PReVer`; it runs once per replica at
    construction and again on :meth:`restart_replica`.  Builders that
    enable durability must key the WAL directory on the replica index:
    declare a ``replica`` keyword (``def build(replica): ...``) and the
    shard passes ``build(replica=index)``; builders without one are
    called with no arguments.
    """

    def __init__(
        self,
        build: Callable[..., PReVer],
        replicas: int = 2,
        driver: Optional[ReplicationDriver] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
        name: str = "replicated",
    ):
        if replicas < 1:
            raise PReVerError("ReplicatedShard needs at least one replica")
        self.name = name
        self._build = build
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer or NOOP_TRACER
        self.driver = driver or LocalDriver()
        self.driver.bind_observability(self.metrics, self.tracer)
        self.replicas: List[Optional[PReVer]] = [
            self._build_replica(i) for i in range(replicas)
        ]
        #: Decided batches applied per replica (dense prefix counts).
        self._applied = [0] * replicas
        #: Updates per decided batch, in decided order — the map from
        #: a recovered ledger size back to a batch offset.
        self._batch_sizes: List[int] = []
        self._tmr_replay = self.metrics.timer("consensus.replay")
        self._ctr_batches = self.metrics.counter("consensus.replayed_batches")
        self._closed = False

    def _build_replica(self, index: int) -> PReVer:
        try:
            framework = self._build(replica=index)
        except TypeError:
            framework = self._build()
        if framework.replication is not None:
            raise PReVerError(
                "replica builders must not attach their own replication "
                "driver — the shard owns the decided stream"
            )
        return framework

    # -- the decided-stream replay ----------------------------------------

    @property
    def primary(self) -> PReVer:
        """The first live replica (reads, reports, and results come
        from here; all live replicas are byte-equal by construction)."""
        for replica in self.replicas:
            if replica is not None:
                return replica
        raise IntegrityError(f"shard {self.name!r} has no live replicas")

    @property
    def primary_index(self) -> int:
        """Index of the first live replica."""
        for index, replica in enumerate(self.replicas):
            if replica is not None:
                return index
        raise IntegrityError(f"shard {self.name!r} has no live replicas")

    def submit(self, update: Update) -> UpdateResult:
        """Order and replay a single update (a one-element batch)."""
        return self.submit_many([update])[0]

    def submit_many(self, updates: Sequence[Update]) -> List[UpdateResult]:
        """Propose a batch, then replay every newly decided batch into
        all live replicas; returns this batch's results (from the
        primary replica)."""
        updates = list(updates)
        if not updates:
            return []
        payload = self.driver.encode_batch(updates)
        sequence = self.driver.propose_batch(payload)
        results = None
        for decided in self.driver.committed_stream():
            out = self._apply_decided(decided)
            if decided.sequence == sequence:
                results = out
        if results is None:
            raise ProtocolError(
                f"shard {self.name!r}: proposed batch {sequence} missing "
                "from the committed stream"
            )
        return results

    def submit_many_async(self, updates: Sequence[Update]):
        """Inline execution behind the async-dispatch interface."""
        return _Immediate(self.submit_many(updates))

    def _apply_decided(self, decided) -> List[UpdateResult]:
        """Replay one decided batch into every live replica, asserting
        the stream is gap-free and the replicas stay root-equal."""
        if decided.sequence != len(self._batch_sizes):
            raise IntegrityError(
                f"shard {self.name!r}: decided batch {decided.sequence} "
                f"out of order (expected {len(self._batch_sizes)})"
            )
        self._batch_sizes.append(len(decided.payload["updates"]))
        start = self.metrics._clock.now()
        results = None
        roots = {}
        for index, replica in enumerate(self.replicas):
            if replica is None:
                continue
            if self._applied[index] != decided.sequence:
                raise IntegrityError(
                    f"shard {self.name!r}: replica {index} at batch "
                    f"{self._applied[index]}, cannot replay "
                    f"{decided.sequence} (catch_up required)"
                )
            # Fresh update objects per replica: the pipeline mutates
            # update state, so replicas never share them.
            batch = self.driver.decode_batch(decided.payload)
            out = replica.submit_many(batch)
            self._applied[index] = decided.sequence + 1
            roots[index] = replica.ledger.digest().root
            if results is None:
                results = out
        self._tmr_replay.record(self.metrics._clock.now() - start)
        self._ctr_batches.add()
        self._check_roots(roots, at=decided.sequence)
        return results

    def _check_roots(self, roots: dict, at: int) -> None:
        if len(set(roots.values())) > 1:
            detail = ", ".join(
                f"replica {i}: {root.hex()[:16]}"
                for i, root in sorted(roots.items())
            )
            raise IntegrityError(
                f"shard {self.name!r} diverged at decided batch {at}: "
                f"{detail}"
            )

    def assert_converged(self) -> bytes:
        """Every live replica (at the same applied offset) holds the
        same ledger root; returns that root."""
        roots = {}
        offsets = set()
        for index, replica in enumerate(self.replicas):
            if replica is None:
                continue
            offsets.add(self._applied[index])
            roots[index] = replica.ledger.digest().root
        if len(offsets) > 1:
            raise IntegrityError(
                f"shard {self.name!r}: replicas at different offsets "
                f"{sorted(offsets)}; catch_up lagging replicas first"
            )
        self._check_roots(roots, at=len(self._batch_sizes) - 1)
        return next(iter(roots.values()))

    # -- crash / recovery --------------------------------------------------

    def crash_replica(self, index: int) -> None:
        """Take one replica down (flush + drop).  The shard keeps
        serving from the remaining replicas; the decided stream keeps
        the crashed replica's seat in ``_applied``."""
        replica = self.replicas[index]
        if replica is None:
            return
        replica.close()
        self.replicas[index] = None

    def restart_replica(self, index: int) -> PReVer:
        """Rebuild a crashed replica and resynchronize it.

        With durability on, the replica first replays its own WAL
        (:meth:`PReVer.recover`), and the recovered ledger size is
        mapped back to a decided-batch offset — fail-closed if it does
        not land on a batch boundary, because a replica that durably
        holds half a batch violates the atomic-batch commit this
        module assumes.  Then :meth:`catch_up` replays the rest of the
        committed prefix and re-asserts convergence.
        """
        if self.replicas[index] is not None:
            raise PReVerError(f"replica {index} is still live")
        framework = self._build_replica(index)
        applied = 0
        if framework.durability.enabled:
            framework.recover()
            size = len(framework.ledger)
            covered = 0
            while applied < len(self._batch_sizes) and covered < size:
                covered += self._batch_sizes[applied]
                applied += 1
            if covered != size:
                raise IntegrityError(
                    f"shard {self.name!r}: replica {index} recovered "
                    f"{size} ledger entries, which is not a decided-batch "
                    f"boundary"
                )
        self.replicas[index] = framework
        self._applied[index] = applied
        self.catch_up(index)
        return framework

    def catch_up(self, index: int) -> int:
        """Replay the committed prefix beyond what replica ``index``
        has applied; returns the number of batches replayed."""
        replica = self.replicas[index]
        if replica is None:
            raise PReVerError(f"replica {index} is not live")
        replayed = 0
        for decided in self.driver.catch_up(self._applied[index]):
            if decided.sequence < self._applied[index]:
                continue
            if decided.sequence != self._applied[index]:
                raise IntegrityError(
                    f"shard {self.name!r}: committed prefix has a gap at "
                    f"{self._applied[index]}"
                )
            batch = self.driver.decode_batch(decided.payload)
            replica.submit_many(batch)
            self._applied[index] = decided.sequence + 1
            replayed += 1
        self.assert_converged()
        return replayed

    # -- the shard-handle surface (see repro.core.sharded) -----------------

    def digest(self):
        """The shard ledger's digest — from the primary replica, after
        asserting every live replica agrees on the root."""
        self.assert_converged()
        return self.primary.ledger.digest()

    def recover(self):
        """Front-end recovery: re-run recovery on the primary replica
        (non-durable primaries report through recovery's no-op path)."""
        return self.primary.recover()

    def throughput_report(self) -> dict:
        """The primary replica's per-stage throughput report."""
        return self.primary.throughput_report()

    def metrics_snapshot(self) -> dict:
        """Primary replica metrics, plus this shard's ``consensus.*``
        ordering metrics under ``"replication"``."""
        snapshot = self.primary.metrics.snapshot()
        snapshot["replication"] = self.metrics.snapshot()
        return snapshot

    def telemetry_delta(self):
        """Incremental telemetry from the primary replica (full
        history on first call), for cross-shard aggregation."""
        from repro.obs.aggregate import DeltaTracker

        primary = self.primary
        tracker = getattr(primary, "_replicated_tracker", None)
        if tracker is None:
            tracker = DeltaTracker(primary.metrics, tracer=primary.tracer,
                                   origin=True)
            primary._replicated_tracker = tracker
        return tracker.capture()

    def alive(self) -> bool:
        """Liveness: at least one replica is live and healthy."""
        try:
            return self.primary.health_report()["ok"]
        except IntegrityError:
            return False

    def readiness_report(self) -> dict:
        """Primary readiness plus replica-convergence checks."""
        report = self.primary.readiness_report()
        live = sum(1 for r in self.replicas if r is not None)
        try:
            self.assert_converged()
            check = {"ok": True, "replicas": live,
                     "of": len(self.replicas)}
        except IntegrityError as exc:
            check = {"ok": False, "error": repr(exc)}
        report["checks"]["replicas_converged"] = check
        report["ok"] = report["ok"] and check["ok"]
        return report

    def verification_trail(self, trace_id: str):
        """The primary replica's trail for ``trace_id``."""
        return self.primary.verification_trail(trace_id)

    def counters(self) -> dict:
        """Submitted/applied/ledger-size counters (primary replica)."""
        primary = self.primary
        return {
            "submitted": primary._submitted_count,
            "applied": primary._applied_count,
            "ledger_size": len(primary.ledger),
        }

    def stats(self) -> dict:
        """Driver ordering stats plus replica/batch bookkeeping."""
        out = self.driver.stats()
        out["replicas"] = len(self.replicas)
        out["live_replicas"] = sum(
            1 for r in self.replicas if r is not None
        )
        out["decided_batches"] = len(self._batch_sizes)
        return out

    def close(self) -> None:
        """Flush every live replica and release the driver."""
        if self._closed:
            return
        self._closed = True
        for replica in self.replicas:
            if replica is not None:
                replica.close()
        self.driver.close()
