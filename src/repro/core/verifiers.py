"""Single-database verification engines (Research Challenge 1).

Every engine implements ``verify(update, now) -> VerificationOutcome``
and declares a leakage profile.  Engines hold their own view of the
data (ciphertexts, commitments, sealed rows, noisy histograms) and a
``manager_transcript`` list recording exactly what the untrusted
manager observed, which the leakage tests compare against the profile.

Engines and their paper anchors:

* :class:`PlaintextVerifier` — the non-private baseline Section 6 says
  to compare against;
* :class:`PaillierVerifier` — homomorphic-encryption path: the manager
  aggregates ciphertexts; the data owner (key holder) makes the final
  comparison and returns only the decision bit;
* :class:`ZKPVerifier` — the verifiable-computation path: the producer
  commits to values and proves bound satisfaction in zero knowledge;
  the manager verifies proofs and never sees values;
* :class:`EnclaveVerifier` — hardware-protected computation;
* :class:`DPIndexVerifier` — differentially-private partial
  disclosure: approximate verification from noisy histograms,
  trading accuracy for budget.
"""

from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import PReVerError, PrivacyError
from repro.common.metrics import MetricsRegistry
from repro.core.outcome import VerificationOutcome
from repro.core.routing import (
    BatchAggregateCache,
    ConstraintRouter,
    check_constraint,
)
from repro.crypto.commitments import PedersenCommitter
from repro.crypto.paillier import (
    PaillierKeyPair,
    encrypt_batch,
    generate_paillier_keypair,
)
from repro.crypto import zkp
from repro.parallel.executors import SERIAL_EXECUTOR
from repro.model.constraints import Comparison, Constraint
from repro.model.update import Update
from repro.obs.tracing import NOOP_TRACER
from repro.privacy import leakage as lk
from repro.privacy.dp import DPIndex
from repro.privacy.enclave import TrustedEnclaveSimulator


class EngineError(PReVerError):
    """A verification engine failed or was misconfigured."""


class BaseVerifier:
    """Common plumbing: constraint list, routing, metrics, transcript."""

    name = "base"
    profile = lk.PLAINTEXT_PROFILE

    def __init__(self, constraints: Sequence[Constraint],
                 metrics: Optional[MetricsRegistry] = None):
        self.constraints = list(constraints)
        self.metrics = metrics or MetricsRegistry()
        self.manager_transcript: List = []
        self._router = ConstraintRouter(self.constraints)
        self._constraint_ids = [c.constraint_id for c in self.constraints]
        self._verifications = self.metrics.counter(f"{self.name}.verifications")
        # Tracing hooks: the framework binds its tracer once and, per
        # traced update, the "verify" span so engine crypto spans nest
        # under it.  With the default no-op tracer both are free.
        self.tracer = NOOP_TRACER
        self._parent_span = None
        # Execution layer: serial unless the framework (or a test)
        # binds a parallel executor; engines use it for order-free
        # crypto work only (e.g. contribution encryption), never for
        # the order-dependent aggregate state machine.
        self.executor = SERIAL_EXECUTOR

    def bind_tracer(self, tracer) -> None:
        self.tracer = tracer

    def bind_executor(self, executor) -> None:
        self.executor = executor

    def bind_span(self, span) -> None:
        """Parent span for crypto sub-spans of the current update."""
        self._parent_span = span

    def _observe(self, item) -> None:
        """Record something the untrusted manager gets to see."""
        self.manager_transcript.append(item)

    def constraints_for(self, update: Update) -> List[Constraint]:
        """Constraints applicable to the update's table, in
        registration order (table-scoped ones route; unscoped ones
        apply everywhere)."""
        return self._router.route(update.table)

    def verify(self, update: Update, now: float) -> VerificationOutcome:
        raise NotImplementedError

    def verify_many(self, updates: Sequence[Update], now: float
                    ) -> List[VerificationOutcome]:
        """Verify a batch in order (engines are stateful; order matters)."""
        return [self.verify(update, now) for update in updates]

    # -- batch lifecycle hooks (no-ops by default) -----------------------
    #
    # ``PReVer.submit_many`` brackets a batch with begin/end and calls
    # ``note_applied`` after each successful database apply, so engines
    # that read the shared databases can keep incremental state.

    def begin_batch(self, expected: int = 0) -> None:
        pass

    def end_batch(self) -> None:
        pass

    def note_applied(self, update: Update, now: float) -> None:
        pass

    # -- durability hooks (see repro.durability) --------------------------
    #
    # Engines whose verification state is *not* derivable from the
    # shared databases (e.g. Paillier's ciphertext aggregates) override
    # these three so snapshots capture the state and WAL replay rebuilds
    # it.  The defaults declare "nothing beyond the databases".

    def durable_state(self) -> Optional[dict]:
        """Engine state a snapshot must persist (None = nothing —
        everything this engine needs lives in the shared databases)."""
        return None

    def restore_durable_state(self, state: Optional[dict]) -> None:
        """Load :meth:`durable_state` output during recovery."""
        if state is not None:
            raise EngineError(
                f"engine {self.name!r} cannot restore durable state"
            )

    def replay_applied(self, update: Update, now: float) -> None:
        """Re-apply one anchored-as-applied update's effect on engine
        state during WAL replay (the decision is already made; no
        verification or transcript observation happens here)."""

    def _outcome(self, accepted: bool, failed: Optional[str] = None,
                 **evidence) -> VerificationOutcome:
        self._verifications.add()
        return VerificationOutcome(
            accepted=accepted,
            engine=self.name,
            constraint_ids=list(self._constraint_ids),
            failed_constraint=failed,
            evidence=evidence,
        )


class PlaintextVerifier(BaseVerifier):
    """Reference semantics: direct evaluation on plaintext databases."""

    name = "plaintext"
    profile = lk.PLAINTEXT_PROFILE

    def __init__(self, databases: Sequence, constraints: Sequence[Constraint],
                 metrics: Optional[MetricsRegistry] = None):
        super().__init__(constraints, metrics)
        self.databases = list(databases)
        self._batch_cache: Optional[BatchAggregateCache] = None

    def begin_batch(self, expected: int = 0) -> None:
        self._batch_cache = BatchAggregateCache(self.databases)

    def end_batch(self) -> None:
        self._batch_cache = None

    def note_applied(self, update: Update, now: float) -> None:
        if self._batch_cache is not None:
            self._batch_cache.note_applied(update)

    def verify(self, update: Update, now: float) -> VerificationOutcome:
        self._observe(dict(update.payload))  # the baseline leaks everything
        timer = self.metrics.timer("plaintext.check")
        clock = perf_counter  # direct timing; timed() costs ~2us per check
        for constraint in self.constraints_for(update):
            start = clock()
            ok = check_constraint(constraint, self.databases, update, now,
                                  cache=self._batch_cache)
            timer.record(clock() - start)
            if not ok:
                return self._outcome(False, failed=constraint.constraint_id)
        return self._outcome(True)


class PaillierVerifier(BaseVerifier):
    """RC1 via additively homomorphic encryption.

    The manager stores per-group encrypted running aggregates.  On each
    update it homomorphically adds the encrypted contribution and sends
    the resulting ciphertext to the data owner, who decrypts, compares
    against the (public or owner-known) bound, and returns the decision
    bit.  The manager's transcript contains only ciphertext values and
    group keys (access pattern) — asserted by the leakage tests.

    Only linear aggregate constraints are supported; a non-linear
    constraint raises at construction (fail-closed), which reproduces
    the expressiveness gap the paper attributes to partially
    homomorphic schemes.
    """

    name = "paillier"
    profile = lk.PAILLIER_PROFILE

    def __init__(
        self,
        constraints: Sequence[Constraint],
        keypair: Optional[PaillierKeyPair] = None,
        key_bits: int = 256,
        scale: int = 1,
        metrics: Optional[MetricsRegistry] = None,
    ):
        super().__init__(constraints, metrics)
        for constraint in self.constraints:
            if not (constraint.is_aggregate and constraint.is_linear()):
                raise EngineError(
                    f"PaillierVerifier supports linear aggregate "
                    f"constraints only; {constraint.name!r} is not"
                )
            if constraint.comparison not in (Comparison.LE, Comparison.GE,
                                             Comparison.LT, Comparison.GT):
                raise EngineError("unsupported comparison for Paillier engine")
        self.keypair = keypair or generate_paillier_keypair(key_bits)
        self.scale = scale  # fixed-point scale for float contributions
        # manager-side state: constraint_id -> group key -> ciphertext
        self._cipher_aggregates: Dict[str, Dict[tuple, object]] = {
            c.constraint_id: {} for c in self.constraints
        }
        # Batch-prepared contribution ciphertexts, keyed by
        # (constraint_id, update_id); filled by :meth:`prepare_batch`
        # under a parallel executor, drained by :meth:`_check_one`.
        self._prepared: Dict[tuple, object] = {}

    def _group_key(self, constraint: Constraint, update: Update) -> tuple:
        return tuple(
            update.payload.get(col) for col in constraint.aggregate.match_columns
        )

    def _encrypt_contribution(self, constraint: Constraint, update: Update):
        contribution = constraint.aggregate.contribution_of(update.payload)
        fixed = int(round(contribution * self.scale))
        return self.keypair.public_key.encrypt_signed(fixed), fixed

    def precompute(self, updates_expected: int, rng=None,
                   executor=None) -> int:
        """Offline phase: bank ``r^n mod n²`` obfuscators for the next
        ``updates_expected`` updates (one encryption per constraint
        each).  Returns the resulting pool size.  The exponentiations
        chunk across the engine's executor workers by default; the
        resulting pool stays in this process."""
        executor = executor if executor is not None else self.executor
        return self.keypair.public_key.precompute_randomness(
            updates_expected * max(1, len(self.constraints)), rng=rng,
            executor=executor,
        )

    # -- batch hooks ------------------------------------------------------

    def begin_batch(self, expected: int = 0) -> None:
        self._prepared = {}

    def end_batch(self) -> None:
        self._prepared = {}

    def prepare_batch(self, updates: Sequence[Update],
                      executor=None) -> None:
        """Encrypt every update's per-constraint contribution up front,
        chunked across executor workers.

        Contribution encryption is the order-independent half of the
        Paillier check (the decrypt-and-compare half walks the running
        aggregate and stays serial), so fanning it out preserves
        decision equivalence exactly: ciphertext *randomness* differs,
        but decisions depend only on decrypted sums.  Contributions out
        of signed range are left unprepared so the serial path raises
        at the same point it always did.
        """
        executor = executor if executor is not None else self.executor
        if not getattr(executor, "parallel", False):
            return  # inline encryption is already optimal serially
        keys, values = [], []
        half = self.keypair.public_key.n // 2
        for update in updates:
            for constraint in self.constraints_for(update):
                contribution = constraint.aggregate.contribution_of(
                    update.payload
                )
                fixed = int(round(contribution * self.scale))
                if abs(fixed) >= half:
                    continue
                keys.append((constraint.constraint_id, update.update_id))
                values.append(fixed)
        if not keys:
            return
        ciphertexts = encrypt_batch(
            self.keypair.public_key, values, signed=True, executor=executor
        )
        self.metrics.counter("paillier.prepared_contributions").add(len(keys))
        self._prepared.update(zip(keys, ciphertexts))

    def verify(self, update: Update, now: float) -> VerificationOutcome:
        for constraint in self.constraints_for(update):
            with self.metrics.timed("paillier.check"):
                ok = self._check_one(constraint, update)
            if not ok:
                return self._outcome(False, failed=constraint.constraint_id)
        return self._outcome(True)

    def _check_one(self, constraint: Constraint, update: Update) -> bool:
        group = self._group_key(constraint, update)
        tracing = self.tracer.enabled
        prepared = self._prepared.pop(
            (constraint.constraint_id, update.update_id), None
        ) if self._prepared else None
        if prepared is not None:
            ciphertext = prepared
        elif tracing:
            with self.tracer.span("paillier.encrypt",
                                  parent=self._parent_span,
                                  constraint=constraint.constraint_id):
                ciphertext, _ = self._encrypt_contribution(constraint, update)
        else:
            ciphertext, _ = self._encrypt_contribution(constraint, update)
        # Manager side: homomorphic aggregation over ciphertexts.
        aggregates = self._cipher_aggregates[constraint.constraint_id]
        current = aggregates.get(group)
        proposed = ciphertext if current is None else current + ciphertext
        self._observe(("group", group))
        self._observe(("ciphertext", proposed.value))
        self.metrics.counter("paillier.homomorphic_ops").add()
        # Owner side: decrypt the proposed aggregate, compare, answer.
        if tracing:
            with self.tracer.span("paillier.decrypt",
                                  parent=self._parent_span,
                                  constraint=constraint.constraint_id):
                plaintext = self.keypair.private_key.decrypt_signed(proposed)
        else:
            plaintext = self.keypair.private_key.decrypt_signed(proposed)
        accepted = constraint.comparison.apply(
            plaintext / self.scale, float(constraint.bound)
        )
        if accepted:
            aggregates[group] = proposed
        return accepted

    def apply_to_store(self, update: Update) -> None:
        """Hook for contexts that also maintain an encrypted table."""

    # -- durability hooks --------------------------------------------------

    def durable_state(self) -> dict:
        """Ciphertext aggregates, as integers — never decrypted totals.

        The snapshot holds only what the untrusted manager already
        sees (ciphertext values and group keys), so persisting it adds
        no leakage.  The keypair is deliberately absent: the operator
        re-supplies the same key material when rebuilding the engine,
        and ``n`` is stored to fail closed on a mismatch.
        """
        return {
            "n": self.keypair.public_key.n,
            "scale": self.scale,
            "aggregates": {
                constraint_id: [
                    [list(group), ciphertext.value]
                    for group, ciphertext in sorted(
                        groups.items(), key=lambda item: repr(item[0])
                    )
                ]
                for constraint_id, groups in self._cipher_aggregates.items()
            },
        }

    def restore_durable_state(self, state: Optional[dict]) -> None:
        """Rebuild ciphertext aggregates from :meth:`durable_state`."""
        from repro.crypto.paillier import PaillierCiphertext

        if state is None:
            return
        if state["n"] != self.keypair.public_key.n:
            raise EngineError(
                "snapshot was taken under a different Paillier keypair"
            )
        if state["scale"] != self.scale:
            raise EngineError("snapshot fixed-point scale mismatch")
        public_key = self.keypair.public_key
        for constraint_id, pairs in state["aggregates"].items():
            if constraint_id not in self._cipher_aggregates:
                raise EngineError(
                    f"snapshot aggregates name unknown constraint "
                    f"{constraint_id!r}"
                )
            aggregates = self._cipher_aggregates[constraint_id]
            for group, value in pairs:
                aggregates[tuple(group)] = PaillierCiphertext(public_key, value)

    def replay_applied(self, update: Update, now: float) -> None:
        """Fold a replayed update into the running aggregates.

        Re-encrypts the contribution and adds it homomorphically — no
        decryption: the accept decision was already made and anchored,
        and decisions depend only on decrypted *sums*, so the fresh
        ciphertext randomness changes nothing observable.
        """
        for constraint in self.constraints_for(update):
            group = self._group_key(constraint, update)
            ciphertext, _ = self._encrypt_contribution(constraint, update)
            aggregates = self._cipher_aggregates[constraint.constraint_id]
            current = aggregates.get(group)
            aggregates[group] = (
                ciphertext if current is None else current + ciphertext
            )


class ZKPVerifier(BaseVerifier):
    """RC1 via producer-side zero-knowledge proofs.

    The manager keeps, per group, the homomorphic product of Pedersen
    commitments to all accepted contributions.  A producer submitting
    an update must supply a :class:`~repro.crypto.zkp.BoundProof` that
    the *new* cumulative total stays within the bound.  The manager
    verifies the proof against the combined commitment — it never sees
    any value.  The producer must know the current total (it does: the
    totals are its own submissions; the framework echoes the running
    commitment randomness back over a secure owner channel).
    """

    name = "zkp"
    profile = lk.profile(
        "zkp",
        lk.LeakageClass.DECISION_BIT,
        lk.LeakageClass.TIMING,
        lk.LeakageClass.VOLUME,
        lk.LeakageClass.ACCESS_PATTERN,
        notes="manager sees commitments and proofs only",
    )

    def __init__(
        self,
        constraints: Sequence[Constraint],
        bits: int = 16,
        committer: Optional[PedersenCommitter] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        super().__init__(constraints, metrics)
        for constraint in self.constraints:
            if not constraint.is_aggregate or constraint.comparison not in (
                Comparison.LE, Comparison.GE,
            ):
                raise EngineError(
                    "ZKPVerifier supports upper/lower-bound aggregate "
                    "constraints"
                )
        # Proof width must cover both the running total and the slack to
        # the bound, so widen it to the largest registered bound.
        max_bound_bits = max(
            (int(c.bound).bit_length() for c in self.constraints), default=0
        )
        self.bits = max(bits, max_bound_bits)
        self.committer = committer or PedersenCommitter()
        # manager side: constraint -> group -> combined commitment value
        self._commitments: Dict[str, Dict[tuple, object]] = {
            c.constraint_id: {} for c in self.constraints
        }
        # producer/owner side: running totals + randomness (secret)
        self._secret_state: Dict[str, Dict[tuple, Tuple[int, int]]] = {
            c.constraint_id: {} for c in self.constraints
        }

    def verify(self, update: Update, now: float) -> VerificationOutcome:
        for constraint in self.constraints_for(update):
            with self.metrics.timed("zkp.check"):
                ok = self._check_one(constraint, update)
            if not ok:
                return self._outcome(False, failed=constraint.constraint_id)
        return self._outcome(True)

    def _check_one(self, constraint: Constraint, update: Update) -> bool:
        group = tuple(
            update.payload.get(col) for col in constraint.aggregate.match_columns
        )
        contribution = int(constraint.aggregate.contribution_of(update.payload))
        if contribution < 0:
            raise EngineError("range proofs need non-negative contributions")
        secrets = self._secret_state[constraint.constraint_id]
        total, _ = secrets.get(group, (0, 0))
        new_total = total + contribution
        bound = int(constraint.bound)
        satisfied = (
            new_total <= bound
            if constraint.comparison is Comparison.LE
            else new_total >= bound
        )
        if not satisfied:
            # The producer cannot construct a valid proof; an honest
            # client refuses, a cheating client's proof won't verify.
            self.metrics.counter("zkp.refused").add()
            return False
        # Producer: commit to the new total and prove the bound.
        # GE totals grow without bound, so widen the proof as needed.
        bits = max(self.bits, int(new_total).bit_length() + 1)
        if constraint.comparison is Comparison.LE:
            commitment, randomness, proof = zkp.prove_upper_bound(
                self.committer, new_total, bound, bits
            )
            verify = zkp.verify_upper_bound
        else:
            commitment, randomness, proof = zkp.prove_lower_bound(
                self.committer, new_total, bound, bits
            )
            verify = zkp.verify_lower_bound
        # Manager: verify; its view is (group, commitment, proof).
        self._observe(("group", group))
        self._observe(("commitment", commitment.value))
        accepted = verify(self.committer, commitment, proof)
        self.metrics.counter("zkp.proofs_verified").add()
        if accepted:
            self._commitments[constraint.constraint_id][group] = commitment
            secrets[group] = (new_total, randomness)
        return accepted


class EnclaveVerifier(BaseVerifier):
    """RC1 via hardware-protected computation (simulated enclave)."""

    name = "enclave"
    profile = lk.ENCLAVE_PROFILE

    def __init__(
        self,
        databases: Sequence,
        constraints: Sequence[Constraint],
        epc_capacity: int = 1000,
        metrics: Optional[MetricsRegistry] = None,
    ):
        super().__init__(constraints, metrics)
        self.databases = list(databases)
        self.enclave = TrustedEnclaveSimulator(
            constraints=self.constraints, epc_capacity=epc_capacity
        )
        self.expected_measurement = self.enclave.attest()

    def verify(self, update: Update, now: float) -> VerificationOutcome:
        with self.metrics.timed("enclave.check"):
            decision, measurement = self.enclave.verify_update(
                self.databases, update, now
            )
        if measurement != self.expected_measurement:
            raise PrivacyError("enclave attestation mismatch")
        self._observe(("decision", decision))
        if not decision:
            return self._outcome(False, failed=self.constraints[0].constraint_id)
        return self._outcome(True, attestation=measurement)


class DPIndexVerifier(BaseVerifier):
    """RC1 via differentially private partial disclosure.

    The manager holds a DP histogram of the per-group aggregate values
    and verifies against it — *approximately*.  False accepts/rejects
    happen with probability governed by the noise scale; the accuracy
    experiment (bench E3/E4) quantifies them and the budget accountant
    eventually halts refreshes, reproducing the paper's exhaustion
    concern.
    """

    name = "dp-index"
    profile = lk.DP_INDEX_PROFILE

    def __init__(
        self,
        databases: Sequence,
        constraints: Sequence[Constraint],
        index: DPIndex,
        refresh_every: int = 10,
        metrics: Optional[MetricsRegistry] = None,
    ):
        super().__init__(constraints, metrics)
        if len(self.constraints) != 1 or not self.constraints[0].is_aggregate:
            raise EngineError("DPIndexVerifier handles a single aggregate constraint")
        self.databases = list(databases)
        self.index = index
        self.refresh_every = refresh_every
        self._since_refresh = 0
        self._noisy_totals: Dict[tuple, float] = {}

    def verify(self, update: Update, now: float) -> VerificationOutcome:
        constraint = self.constraints[0]
        group = tuple(
            update.payload.get(col) for col in constraint.aggregate.match_columns
        )
        contribution = constraint.aggregate.contribution_of(update.payload)
        self._since_refresh += 1
        if self._since_refresh >= self.refresh_every or group not in self._noisy_totals:
            self._refresh_group(constraint, update, group, now)
        noisy_total = self._noisy_totals.get(group, 0.0)
        proposed = noisy_total + contribution
        accepted = constraint.comparison.apply(proposed, float(constraint.bound))
        self._observe(("noisy_total", round(noisy_total, 3)))
        if accepted:
            self._noisy_totals[group] = proposed
        if not accepted:
            return self._outcome(False, failed=constraint.constraint_id)
        return self._outcome(True)

    def _refresh_group(self, constraint: Constraint, update: Update,
                       group: tuple, now: float) -> None:
        true_total = constraint.aggregate.evaluate_over(
            self.databases, update.table, update.payload, now
        )
        self.index.accountant.charge(
            self.index.epsilon_per_refresh, label="dp-verify-refresh"
        )
        noisy = self.index.mechanism.add_noise(
            true_total, 1.0, self.index.epsilon_per_refresh
        )
        self._noisy_totals[group] = max(0.0, noisy)
        self._since_refresh = 0
