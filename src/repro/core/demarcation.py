"""The demarcation protocol (paper ref [19]) — the classic
*non-private* technique for maintaining linear arithmetic constraints
across distributed databases, and therefore the natural baseline for
Research Challenge 2.

Barbará & Garcia-Molina's idea: split a global budget ``B`` into local
allocations ``a_1 + ... + a_n = B``.  A platform may accept updates
against its own allocation **without any communication**; only when a
platform's allocation runs dry does it request slack transfers from
peers, via a safe two-step limit-change protocol (the donor lowers its
limit *before* the recipient raises its own, so the global invariant
holds at every interleaving).

What the comparison with PReVer's mechanisms (bench E5) shows:

* cost — demarcation is nearly free for local traffic (zero messages)
  and cheap on transfers, far below tokens and MPC;
* privacy — the price: every platform's allocation and every transfer
  is visible to the peers, so the federation learns each platform's
  per-group consumption trajectory.  The recorded ``peer_visible_log``
  makes that leakage explicit, which is exactly why the paper needs
  the private mechanisms at all.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import PReVerError
from repro.common.metrics import MetricsRegistry


class DemarcationError(PReVerError):
    pass


@dataclass
class _GroupState:
    """One platform's allocation and consumption for one budget group."""

    allocation: float = 0.0
    consumed: float = 0.0

    @property
    def slack(self) -> float:
        return self.allocation - self.consumed


class DemarcationPlatform:
    """One participant in the protocol."""

    def __init__(self, name: str, metrics: MetricsRegistry):
        self.name = name
        self._groups: Dict[object, _GroupState] = {}
        self._metrics = metrics

    def _group(self, group) -> _GroupState:
        if group not in self._groups:
            self._groups[group] = _GroupState()
        return self._groups[group]

    def try_consume(self, group, amount: float) -> bool:
        """A purely local decision — the protocol's selling point."""
        state = self._group(group)
        if state.consumed + amount <= state.allocation + 1e-12:
            state.consumed += amount
            return True
        return False

    def grant(self, group, amount: float) -> float:
        """Donate up to ``amount`` of slack; lowers the local limit
        FIRST (the demarcation safety rule)."""
        state = self._group(group)
        donation = min(amount, max(0.0, state.slack))
        state.allocation -= donation
        return donation

    def receive(self, group, amount: float) -> None:
        self._group(group).allocation += amount

    def slack(self, group) -> float:
        return self._group(group).slack

    def consumed(self, group) -> float:
        return self._group(group).consumed


class DemarcationFederation:
    """The federation: platforms enforcing SUM(group) <= bound jointly.

    The initial bound is split evenly; ``consume`` tries locally first
    and falls back to slack transfers.  Every transfer is logged in
    ``peer_visible_log`` — the protocol's inherent leakage surface.
    """

    def __init__(self, platform_names: Sequence[str], bound: float,
                 metrics: Optional[MetricsRegistry] = None):
        if len(platform_names) < 2:
            raise DemarcationError("a federation needs >= 2 platforms")
        if bound < 0:
            raise DemarcationError("bound must be non-negative")
        self.bound = bound
        self.metrics = metrics or MetricsRegistry()
        self.platforms: Dict[str, DemarcationPlatform] = {
            name: DemarcationPlatform(name, self.metrics)
            for name in platform_names
        }
        self.peer_visible_log: List[dict] = []
        self._initialized_groups: set = set()

    def _ensure_group(self, group) -> None:
        if group in self._initialized_groups:
            return
        share = self.bound / len(self.platforms)
        for platform in self.platforms.values():
            platform.receive(group, share)
        self._initialized_groups.add(group)

    def consume(self, platform_name: str, group, amount: float) -> bool:
        """One regulated update: ``amount`` units for ``group`` at the
        given platform.  Returns the accept/reject decision."""
        if amount < 0:
            raise DemarcationError("amounts must be non-negative")
        self._ensure_group(group)
        platform = self.platforms[platform_name]
        self.metrics.counter("demarcation.attempts").add()
        if platform.try_consume(group, amount):
            self.metrics.counter("demarcation.local_accepts").add()
            return True
        # Local allocation exhausted: request transfers from peers.
        needed = amount - max(0.0, platform.slack(group))
        for peer_name, peer in self.platforms.items():
            if peer_name == platform_name or needed <= 1e-12:
                continue
            # One request + one response per contacted peer.
            self.metrics.counter("demarcation.messages").add(2)
            donated = peer.grant(group, needed)
            if donated > 0:
                platform.receive(group, donated)
                needed -= donated
                self.peer_visible_log.append({
                    "group": group, "from": peer_name,
                    "to": platform_name, "amount": donated,
                })
        if platform.try_consume(group, amount):
            self.metrics.counter("demarcation.transfer_accepts").add()
            return True
        self.metrics.counter("demarcation.rejects").add()
        return False

    # -- invariants and reporting ------------------------------------------

    def total_consumed(self, group) -> float:
        return sum(p.consumed(group) for p in self.platforms.values())

    def total_allocation(self, group) -> float:
        return sum(p.allocation for p in
                   (platform._group(group) for platform in
                    self.platforms.values()))

    def invariant_holds(self, group) -> bool:
        """The global constraint, checkable at any moment."""
        if group not in self._initialized_groups:
            return True
        return (
            self.total_consumed(group) <= self.bound + 1e-9
            and self.total_allocation(group) <= self.bound + 1e-9
        )

    def leakage_summary(self) -> dict:
        """What every platform learns about the others: the full
        transfer history (amounts, directions, groups)."""
        return {
            "transfers": len(self.peer_visible_log),
            "groups_exposed": len({t["group"] for t in self.peer_visible_log}),
        }
