"""The public-database engine (Research Challenge 3).

Data is public (e.g. the in-person attendee list); updates and possibly
constraints are private.  The producer verifies its own eligibility by
privately reading the relevant public records via PIR — the manager
never learns *which* records the producer consulted — and then applies
its update through the private-write path, so the link between the
producer's identity/credential and the written record position stays
hidden up to the epoch batch.

Constraint privacy: when the constraint is private (e.g. an admission
rule the venue does not publish), the constraint is evaluated entirely
client-side against PIR-fetched data, so the manager learns neither
the rule nor the accessed indices; the manager-side acceptance is the
possession of a credential signature from the authority (who knows the
rule), which is all it needs.
"""

from typing import Callable, Dict, List, Optional, Sequence

from repro.common.metrics import MetricsRegistry
from repro.core.outcome import VerificationOutcome
from repro.core.verifiers import BaseVerifier, EngineError
from repro.crypto.signatures import SchnorrSigner, SchnorrVerifier
from repro.model.constraints import Constraint
from repro.model.update import Update
from repro.privacy import leakage as lk
from repro.privacy.pir import TwoServerXorPIR


class PIRVerifier(BaseVerifier):
    """RC3: private verification against public data via PIR.

    ``record_index_of(update)`` maps an update to the public record it
    must be checked against (e.g. the producer's registration slot);
    ``predicate(record_bytes, update)`` is the client-side constraint
    body.  The authority countersigns accepted updates so the public
    store can gate writes on a credential instead of the (private)
    constraint inputs.
    """

    name = "pir"
    profile = lk.profile(
        "pir",
        lk.LeakageClass.DECISION_BIT,
        lk.LeakageClass.TIMING,
        lk.LeakageClass.VOLUME,
        notes="servers see uniformly random query vectors only",
    )

    def __init__(
        self,
        pir: TwoServerXorPIR,
        constraint: Constraint,
        record_index_of: Callable[[Update], int],
        predicate: Callable[[bytes, Update], bool],
        authority_signer: Optional[SchnorrSigner] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        super().__init__([constraint], metrics)
        self.pir = pir
        self.record_index_of = record_index_of
        self.predicate = predicate
        self.authority_signer = authority_signer or SchnorrSigner()
        self.authority_verifier: SchnorrVerifier = self.authority_signer.verifier()

    def verify(self, update: Update, now: float) -> VerificationOutcome:
        index = self.record_index_of(update)
        with self.metrics.timed("pir.check"):
            record = self.pir.read(index)
            # Both servers' views of this read: the random selectors.
            self._observe(("selector", self.pir.server_a.query_log[-1][1]))
            ok = self.predicate(record, update)
        if not ok:
            return self._outcome(False, failed=self.constraints[0].constraint_id)
        credential = self.authority_signer.sign(update.body_bytes())
        return self._outcome(True, credential=credential)

    def apply_private_write(self, index: int, new_value: bytes) -> None:
        """Write through the PIR private-write path."""
        with self.metrics.timed("pir.write"):
            self.pir.write(index, new_value)

    def end_epoch(self) -> int:
        return self.pir.merge_epoch()

    def check_credential(self, update: Update, credential) -> bool:
        """Anyone can check that an accepted update was authorized."""
        return self.authority_verifier.verify(update.body_bytes(), credential)
