"""The Figure-2 update path as explicit, composable stages.

The paper's pipeline — authenticate → verify → apply → anchor — used
to live inline in :class:`~repro.core.framework.PReVer`'s ``submit`` /
``submit_many`` bodies, which duplicated and interleaved auth, verify,
apply, anchor, durability, and tracing logic.  This module decomposes
it into six stage objects with a uniform ``run_one`` / ``run_batch``
interface:

``AuthStage``
    provenance (Schnorr signature) checks; ``run_batch`` is the
    random-linear-combination batch verification.
``RouteStage``
    constraint routing through the table index (plaintext engine only
    — plugged-in engines route internally).
``VerifyStage``
    constraint/regulation verification; ``run_batch`` drives the
    engine's ``begin_batch`` / ``prepare_batch`` hooks and the
    framework-level :class:`BatchAggregateCache`.
``DurabilityStage``
    log-before-apply WAL records per update, and the batch's anchor
    marker + group-commit fsync (``commit``).
``ApplyStage``
    incorporation into the target database; apply failures become
    anchored rejections.
``AnchorStage``
    decision payloads onto the append-only ledger — one Merkle append
    per update (``run_one``) or one extension per batch (``run_batch``).

:class:`Pipeline` owns the stage sequence and the two drivers the
framework delegates to.  The decomposition is deliberately invisible:
decisions, ledger digests, inclusion proofs, WAL bytes, timer names,
and span shapes are identical to the pre-refactor monolith (pinned by
``tests/test_pipeline_stages.py``), and the batch path preserves the
per-update verify→log→apply interleaving that stateful aggregate
caches depend on — only auth and anchoring are batch-amortized.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.encoding import RawJson, encode_canonical
from repro.core.outcome import UpdateResult, VerificationOutcome
from repro.core.routing import BatchAggregateCache, check_constraint
from repro.crypto.group import SchnorrGroup
from repro.crypto.signatures import cached_verifier, verify_batch
from repro.database.schema import SchemaError
from repro.database.table import TableError
from repro.model.constraints import Constraint
from repro.model.update import Update
from repro.obs.tracing import Span

# Sentinel distinguishing "provenance not yet checked" from a
# precomputed verdict of None (= authenticated).
_UNCHECKED = object()


@dataclass
class UpdateContext:
    """Mutable per-update state threaded through the stage sequence.

    ``mark`` is the chained wall reading: each stage's closing
    timestamp both ends that stage's timer window and starts the
    next one, so tracing and timing add no extra clock reads to the
    hot path.  ``halted`` short-circuits the remaining pre-anchor
    stages (every decision, including rejections, is still anchored).
    """

    update: Update
    now: float = 0.0
    trace: Optional[Span] = None
    timings: Dict[str, float] = field(default_factory=dict)
    auth_failure: object = _UNCHECKED
    outcome: Optional[VerificationOutcome] = None
    applied: bool = False
    halted: bool = False
    routed: Optional[List[Constraint]] = None
    batch_cache: Optional[BatchAggregateCache] = None
    mark: float = 0.0
    sequence: Optional[int] = None


def skip_spans(trace: Span, names, at: float) -> None:
    """Record unreached stages so every trace shows the full
    validate → verify → apply → anchor shape."""
    for name in names:
        trace.child(name, start_time=at).set_status("skipped").end(at)


class Stage:
    """One pipeline stage.

    ``run_one`` advances a single :class:`UpdateContext`;
    ``run_batch`` is the batch-amortized variant and defaults to a
    pass (stages without a batch precomputation do their work per
    update inside the driver's walk).  Stages hold no per-update
    state — everything flows through the context — so one stage
    sequence serves both submission paths.
    """

    name = "stage"

    def __init__(self, framework):
        self.framework = framework

    def run_one(self, ctx: UpdateContext) -> None:
        """Advance one update's context through this stage."""
        raise NotImplementedError

    def run_batch(self, ctxs: Sequence[UpdateContext], executor) -> None:
        """Batch precomputation hook; the default has none."""

    def finish_batch(self, ctxs: Sequence[UpdateContext]) -> None:
        """Batch finalizer hook, run even when the walk raised."""


class AuthStage(Stage):
    """Step (1): provenance — the signature check on incoming updates."""

    name = "authenticate"

    def run_one(self, ctx: UpdateContext) -> None:
        """Check (or consume the precomputed) provenance verdict; a
        failure rejects the update before verification."""
        fw = self.framework
        update = ctx.update
        failure = ctx.auth_failure
        if failure is _UNCHECKED:
            failure = None
            if fw.require_signed_updates:
                if update.signature is None or update.signer_public_key is None:
                    failure = "unsigned update"
                else:
                    verifier = cached_verifier(
                        SchnorrGroup.default(), update.signer_public_key
                    )
                    if not verifier.verify(update.body_bytes(),
                                           update.signature):
                        failure = "bad signature"
        t_auth = fw._wall.now()
        ctx.timings["authenticate"] = t_auth - ctx.mark
        if ctx.trace is not None:
            vspan = ctx.trace.child("validate", start_time=ctx.mark)
            if failure is not None:
                vspan.set_status("error").set_attribute("reason", failure)
            vspan.end(t_auth)
        ctx.mark = t_auth
        if failure is not None:
            if ctx.trace is not None:
                skip_spans(ctx.trace, ("verify", "apply"), at=t_auth)
            update.mark_rejected(failure)
            ctx.outcome = VerificationOutcome(
                accepted=False, engine="framework-auth",
                failed_constraint=failure,
            )
            ctx.halted = True

    def run_batch(self, ctxs: Sequence[UpdateContext], executor) -> None:
        """Batched provenance: verify all signatures up front with the
        random-linear-combination batch check (workers pinpoint bad
        signatures on failure).  Stores one verdict per context;
        failure reasons match the per-update path exactly."""
        fw = self.framework
        if not (fw.require_signed_updates and len(ctxs) > 1):
            return
        with fw.metrics.timed("pipeline.auth_batch"):
            failures: List[Optional[str]] = [None] * len(ctxs)
            items, positions = [], []
            for index, ctx in enumerate(ctxs):
                update = ctx.update
                if update.signature is None or update.signer_public_key is None:
                    failures[index] = "unsigned update"
                else:
                    items.append((update.signer_public_key,
                                  update.body_bytes(), update.signature))
                    positions.append(index)
            if items:
                verdicts = verify_batch(items, group=SchnorrGroup.default(),
                                        executor=executor)
                for position, ok in zip(positions, verdicts):
                    if not ok:
                        failures[position] = "bad signature"
        for ctx, failure in zip(ctxs, failures):
            ctx.auth_failure = failure


class RouteStage(Stage):
    """Constraint routing: the lazily built table → constraints index.

    Only the framework's plaintext check consumes the routed list;
    plugged-in engines hold their own (already routed) constraint
    sets, so this stage is a no-op for them.
    """

    name = "route"

    def run_one(self, ctx: UpdateContext) -> None:
        """Resolve the constraints applicable to the update's table."""
        fw = self.framework
        if fw.engine is None:
            ctx.routed = fw._routed_constraints(ctx.update.table)


class VerifyStage(Stage):
    """Step (2): verification against constraints and regulations."""

    name = "verify"

    def run_one(self, ctx: UpdateContext) -> None:
        """Verify one update via the engine (or the plaintext check
        over the routed constraints); rejections halt the walk."""
        fw = self.framework
        update = ctx.update
        trace = ctx.trace
        verify_span = None
        if trace is not None:
            verify_span = trace.child("verify", start_time=ctx.mark)
            if fw.engine is not None and hasattr(fw.engine, "bind_span"):
                # Engine crypto spans (Paillier encrypt/decrypt) nest here.
                fw.engine.bind_span(verify_span)
        if fw.engine is not None:
            outcome = fw.engine.verify(update, ctx.now)
        else:
            outcome = self._check_routed(ctx)
        t_verify = fw._wall.now()
        ctx.timings["verify"] = t_verify - ctx.mark
        if verify_span is not None:
            verify_span.set_attribute("engine", outcome.engine)
            if not outcome.accepted:
                verify_span.set_status("error")
                verify_span.set_attribute(
                    "failed_constraint", outcome.failed_constraint
                )
            verify_span.end(t_verify)
            fw.tracer.event(
                "constraint_verdict",
                timestamp=t_verify,
                trace_id=trace.trace_id,
                update_id=update.update_id,
                accepted=outcome.accepted,
                constraint_ids=list(outcome.constraint_ids),
                failed_constraint=outcome.failed_constraint,
            )
        ctx.mark = t_verify
        ctx.outcome = outcome
        if not outcome.accepted:
            update.mark_rejected(outcome.failed_constraint or "constraint")
            if trace is not None:
                skip_spans(trace, ("apply",), at=t_verify)
            ctx.halted = True
            return
        update.mark_verified()

    def _check_routed(self, ctx: UpdateContext) -> VerificationOutcome:
        fw = self.framework
        for constraint in ctx.routed:
            if not check_constraint(constraint, fw.databases, ctx.update,
                                    ctx.now, cache=ctx.batch_cache):
                return VerificationOutcome(
                    accepted=False,
                    engine="framework-plaintext",
                    failed_constraint=constraint.constraint_id,
                )
        return VerificationOutcome(accepted=True, engine="framework-plaintext")

    def run_batch(self, ctxs: Sequence[UpdateContext], executor) -> None:
        """Arm the batch: the framework-level aggregate cache (plaintext
        path) or the engine's ``begin_batch`` / ``prepare_batch`` hooks
        (engines maintain their own caches via ``note_applied``)."""
        fw = self.framework
        engine = fw.engine
        if engine is None:
            cache = BatchAggregateCache(fw.databases)
            for ctx in ctxs:
                ctx.batch_cache = cache
            return
        if hasattr(engine, "begin_batch"):
            engine.begin_batch(len(ctxs))
        if hasattr(engine, "prepare_batch"):
            # Timed separately: prepared work happens before the
            # per-update stage timers, so stage totals alone would
            # overstate the verify stage's parallel speedup.
            with fw.metrics.timed("pipeline.prepare_batch"):
                engine.prepare_batch([ctx.update for ctx in ctxs],
                                     executor=executor)

    def finish_batch(self, ctxs: Sequence[UpdateContext]) -> None:
        """Release the engine's batch state (runs even on a crash
        mid-walk, so a failed batch never leaks cache entries)."""
        engine = self.framework.engine
        if engine is not None and hasattr(engine, "end_batch"):
            engine.end_batch()


class DurabilityStage(Stage):
    """The WAL hooks: log-before-apply records and the anchor marker.

    ``run_one`` writes the per-update WAL record *before* the database
    mutates, so a crash mid-apply can replay (or drop) the update but
    never half-remember it.  ``commit`` writes the batch's anchor
    marker — the group-commit fsync that makes the whole batch
    durable — and maybe checkpoints.  Both are no-ops with durability
    off, keeping those paths byte-identical to a durability-free
    framework.
    """

    name = "durability"

    def run_one(self, ctx: UpdateContext) -> None:
        """Log the verified update ahead of its apply."""
        fw = self.framework
        if fw._wal is not None:
            fw._wal.append_update(fw._wal_update_record(ctx.update, ctx.now))
            if fw._crash_after is not None:
                fw._crash_point("wal_update")

    def commit(self, payloads: List[dict], digest=None,
               encoded_payloads: Optional[List[str]] = None) -> None:
        """Write the batch's anchor marker (the group-commit fsync that
        makes the whole batch durable), then maybe checkpoint.

        ``encoded_payloads`` carries the payloads' canonical JSON when
        the anchor stage already encoded them for the Merkle leaves;
        the WAL frame then splices those cached fragments instead of
        re-serializing every payload — byte-identical frames, encoded
        once.
        """
        fw = self.framework
        if fw._crash_after is not None:
            fw._crash_point("anchor_append")
        digest = digest if digest is not None else fw.ledger.digest()
        if encoded_payloads is None:
            body: List = payloads
        else:
            body = [RawJson(encoded) for encoded in encoded_payloads]
        fw._wal.append_anchor(
            {
                "payloads": body,
                "size": digest.size,
                "root": digest.root.hex(),
            },
            sync=fw.durability.sync_anchors,
        )
        if fw._crash_after is not None:
            fw._crash_point("anchor_marker")
        # Remember what was just made durable: /readyz checks the live
        # ledger still extends this digest.
        fw._last_anchored_digest = digest
        if fw._snapshotter is not None:
            taken = fw._snapshotter.maybe_take(
                fw, fw._wal.last_lsn, len(payloads)
            )
            if taken is not None:
                fw._wal.prune(fw._wal.last_lsn)


class ApplyStage(Stage):
    """Step (3): incorporation into the target database.

    Apply failures (duplicate key, missing row) reject the update
    rather than crash the pipeline; the rejection is anchored like any
    other decision.
    """

    name = "apply"

    def run_one(self, ctx: UpdateContext) -> None:
        """Apply one verified update; a failure becomes a rejection."""
        fw = self.framework
        update = ctx.update
        trace = ctx.trace
        try:
            fw._apply(update)
        except (TableError, SchemaError) as exc:
            t_apply = fw._wall.now()
            ctx.timings["apply"] = t_apply - ctx.mark
            if trace is not None:
                trace.child("apply", start_time=ctx.mark) \
                    .set_status("error") \
                    .set_attribute("reason", str(exc)) \
                    .end(t_apply)
            update.mark_rejected(f"apply failed: {exc}")
            prior = ctx.outcome
            ctx.outcome = VerificationOutcome(
                accepted=False, engine=prior.engine,
                constraint_ids=prior.constraint_ids,
                failed_constraint="apply-failure",
            )
            ctx.mark = t_apply
            ctx.halted = True
            return
        update.mark_applied()
        t_apply = fw._wall.now()
        ctx.timings["apply"] = t_apply - ctx.mark
        if trace is not None:
            trace.child("apply", start_time=ctx.mark).end(t_apply)
        ctx.mark = t_apply
        ctx.applied = True
        if ctx.batch_cache is not None:
            ctx.batch_cache.note_applied(update)
        if fw.engine is not None and hasattr(fw.engine, "note_applied"):
            fw.engine.note_applied(update, ctx.now)
        if fw._crash_after is not None:
            fw._crash_point("apply")


class AnchorStage(Stage):
    """Step (+): anchor every decision on the append-only ledger."""

    name = "anchor"

    def __init__(self, framework, durability: DurabilityStage):
        super().__init__(framework)
        self.durability = durability

    def run_one(self, ctx: UpdateContext) -> None:
        """Anchor one decision immediately (the ``submit`` path).

        The decision payload is canonically encoded exactly once; the
        Merkle leaf and the WAL anchor frame both splice that one
        encoding (encode-once, byte-identical to re-encoding).
        """
        fw = self.framework
        start = fw._wall.now()
        payload = fw._anchor_payload(ctx.update, ctx.outcome, trace=ctx.trace)
        encoded = encode_canonical(payload)
        entry = fw.ledger.append(payload, encoded_payload=encoded)
        anchor_end = fw._wall.now()
        ctx.timings["anchor"] = anchor_end - start
        ctx.sequence = entry.sequence
        if fw._wal is not None:
            self.durability.commit([payload], encoded_payloads=[encoded])
        if ctx.trace is not None:
            self._close_span(
                ctx, entry, fw.ledger.digest(),
                start=start, end=anchor_end, batched=False,
            )

    def run_batch(self, ctxs: Sequence[UpdateContext], executor,
                  defer_commit: bool = False):
        """Amortized anchoring: one Merkle extension for the whole
        batch (halted contexts included — rejections are decisions
        too), one anchor marker, identical per-entry sequence numbers
        and inclusion proofs to the one-by-one path.

        With ``defer_commit=True`` the durability commit (anchor
        marker + group fsync + maybe snapshot) is *not* run; instead a
        zero-argument closure performing it is returned, for the
        pipelined scheduler to overlap with the next batch's verify
        work.  The ledger digest the marker embeds is captured eagerly
        here — while this batch's entries are still the frontier — so
        the WAL bytes are identical to the immediate-commit path no
        matter when the closure runs.  Returns ``None`` when the
        commit ran (or durability is off).
        """
        fw = self.framework
        tracing = fw.tracer.enabled
        start = fw._wall.now()
        payloads = [fw._anchor_payload(ctx.update, ctx.outcome, trace=ctx.trace)
                    for ctx in ctxs]
        # Encode-once: each decision payload is canonically serialized
        # exactly here; the Merkle leaves and the WAL anchor frame both
        # splice these fragments (byte-identical to re-encoding).
        encoded = [encode_canonical(payload) for payload in payloads]
        entries = fw.ledger.append_batch(payloads, executor=executor,
                                         encoded_payloads=encoded)
        anchor_end = fw._wall.now()
        anchor_elapsed = anchor_end - start
        fw.metrics.timer("pipeline.anchor_batch").record(anchor_elapsed)
        anchor_share = anchor_elapsed / len(ctxs)
        batch_digest = fw.ledger.digest() if tracing else None
        deferred = None
        if fw._wal is not None:
            if defer_commit:
                digest = (batch_digest if batch_digest is not None
                          else fw.ledger.digest())

                def deferred(payloads=payloads, digest=digest,
                             encoded=encoded):
                    """Commit this batch's anchor with its frozen digest."""
                    self.durability.commit(payloads, digest=digest,
                                           encoded_payloads=encoded)
            else:
                self.durability.commit(payloads, digest=batch_digest,
                                       encoded_payloads=encoded)
        for ctx, entry in zip(ctxs, entries):
            ctx.timings["anchor"] = anchor_share
            ctx.sequence = entry.sequence
            if ctx.trace is not None:
                self._close_span(
                    ctx, entry, batch_digest,
                    start=start, end=anchor_end, batched=True,
                )
        return deferred

    def _close_span(self, ctx: UpdateContext, entry, digest,
                    start: float, end: float, batched: bool) -> None:
        fw = self.framework
        trace = ctx.trace
        span = trace.child("anchor", start_time=start)
        span.set_attribute("sequence", entry.sequence)
        if batched:
            span.set_attribute("batched", True)
        span.end(end)
        fw.tracer.event(
            "ledger_anchor",
            timestamp=end,
            trace_id=trace.trace_id,
            update_id=ctx.update.update_id,
            sequence=entry.sequence,
            digest=digest.root.hex(),
            ledger_size=digest.size,
        )
        trace.set_attribute("applied", ctx.applied)
        trace.set_status("ok" if ctx.applied else "error")
        trace.end(end)


class Pipeline:
    """The shared stage sequence and its two drivers.

    ``run_one`` drives a single update through every stage and anchors
    immediately; ``run_batch`` arms the batch-amortized stages (batch
    auth, engine batch hooks), walks each update through the same
    per-update sequence — preserving the verify→log→apply interleaving
    stateful aggregate caches require — and anchors once.
    """

    def __init__(self, framework):
        self.framework = framework
        self.auth = AuthStage(framework)
        self.route = RouteStage(framework)
        self.verify = VerifyStage(framework)
        self.durability = DurabilityStage(framework)
        self.apply = ApplyStage(framework)
        self.anchor = AnchorStage(framework, self.durability)
        #: Stage order as an update experiences it.
        self.stages = (self.auth, self.route, self.verify,
                       self.durability, self.apply, self.anchor)

    def run_one(self, update: Update) -> UpdateResult:
        """Drive one update through the full pipeline (``submit``).

        With a replication driver attached, even single submits are
        ordered: the update rides a one-element batch through the
        decided stream, so a replicated framework has exactly one
        commit order no matter which submit API fed it.
        """
        fw = self.framework
        if fw.replication is not None:
            return self.run_batch([update], fw.executor)[0]
        ctx = UpdateContext(update)
        prof = fw.profiler
        self._begin(ctx)
        self._walk(ctx, prof)
        if prof is None:
            self.anchor.run_one(ctx)
        else:
            with prof.stage("anchor"):
                self.anchor.run_one(ctx)
        return self._record(ctx)

    def run_batch(self, updates: Sequence[Update],
                  executor) -> List[UpdateResult]:
        """Drive a batch through the pipeline (``submit_many``).

        This is the commit point of the staged pipeline, and it is
        pluggable: with no replication driver (the default — the
        implicit :class:`~repro.consensus.driver.LocalDriver` path)
        the batch is its own decided order and runs
        :meth:`run_decided_batch` directly, byte-identical to the
        pre-driver pipeline.  With a driver attached, the batch is
        *proposed*, and durability/apply/anchor run only on the
        driver's decided batch stream — in the agreed order, which
        under consensus drivers is the order every other replica of
        this shard sees too.
        """
        fw = self.framework
        driver = fw.replication
        if driver is None:
            return self.run_decided_batch(updates, executor)
        return self._run_replicated(updates, executor, driver)

    def _run_replicated(self, updates: Sequence[Update], executor,
                        driver) -> List[UpdateResult]:
        """Propose the batch, then replay every decided batch the
        stream yields (ours included) in decided order."""
        payload = driver.encode_batch(updates)
        sequence = driver.propose_batch(payload)
        results = None
        for decided in driver.committed_stream():
            batch = driver.decode_batch(decided.payload)
            out = self.run_decided_batch(batch, executor)
            if decided.sequence == sequence:
                results = out
        if results is None:
            from repro.common.errors import ProtocolError

            raise ProtocolError(
                f"replication driver {driver.name!r} never delivered "
                f"proposed batch {sequence}"
            )
        return results

    def run_decided_batch(self, updates: Sequence[Update],
                          executor) -> List[UpdateResult]:
        """Run one *decided* batch through the stage sequence,
        anchoring once.  Everything with externally visible effects —
        the WAL records (DurabilityStage), database mutation
        (ApplyStage), and ledger anchoring (AnchorStage) — happens
        only here, i.e. only on batches the replication layer has
        decided."""
        fw = self.framework
        ctxs = [UpdateContext(update) for update in updates]
        prof = fw.profiler
        if prof is None:
            self.auth.run_batch(ctxs, executor)
            self.verify.run_batch(ctxs, executor)
        else:
            with prof.stage("auth_batch"):
                self.auth.run_batch(ctxs, executor)
            with prof.stage("prepare_batch"):
                self.verify.run_batch(ctxs, executor)
        try:
            for ctx in ctxs:
                self._begin(ctx)
                self._walk(ctx, prof)
        finally:
            self.verify.finish_batch(ctxs)
        if prof is None:
            self.anchor.run_batch(ctxs, executor)
        else:
            with prof.stage("anchor_batch"):
                self.anchor.run_batch(ctxs, executor)
        return [self._record(ctx) for ctx in ctxs]

    def _begin(self, ctx: UpdateContext) -> None:
        fw = self.framework
        if fw.tracer.enabled:
            ctx.trace = fw.tracer.start_trace(
                "update",
                start_time=fw._wall.now(),
                attributes={
                    "update_id": ctx.update.update_id,
                    "table": ctx.update.table,
                    "operation": ctx.update.operation.value,
                },
            )
        ctx.now = fw.clock.now()
        ctx.mark = fw._wall.now()

    def _walk(self, ctx: UpdateContext, prof=None) -> None:
        """The per-update stage sequence, up to (not including) anchor.

        ``prof`` is the framework's sampling profiler or ``None``; the
        ``None`` branch is the exact unprofiled hot path (no context
        managers, no extra calls), so default-off runs stay
        byte-identical in behavior and timing shape.
        """
        if prof is None:
            self.auth.run_one(ctx)
            if ctx.halted:
                return
            self.route.run_one(ctx)
            self.verify.run_one(ctx)
            if ctx.halted:
                return
            self.durability.run_one(ctx)
            self.apply.run_one(ctx)
            return
        # Profiled branch: raw push/pop on the thread's stage stack
        # rather than the stage() context manager — five boundaries per
        # update make even minimal with-statement machinery a
        # measurable tax on the plaintext engine, and the bench gates
        # enabled-profiler overhead at 5%.
        stack = prof.thread_stack()
        stack.append("authenticate")
        try:
            self.auth.run_one(ctx)
        finally:
            stack.pop()
        if ctx.halted:
            return
        stack.append("route")
        try:
            self.route.run_one(ctx)
        finally:
            stack.pop()
        stack.append("verify")
        try:
            self.verify.run_one(ctx)
        finally:
            stack.pop()
        if ctx.halted:
            return
        stack.append("durability")
        try:
            self.durability.run_one(ctx)
        finally:
            stack.pop()
        stack.append("apply")
        try:
            self.apply.run_one(ctx)
        finally:
            stack.pop()

    def _record(self, ctx: UpdateContext) -> UpdateResult:
        fw = self.framework
        return fw._record_result(
            ctx.update, ctx.outcome, applied=ctx.applied,
            timings=ctx.timings, sequence=ctx.sequence,
            trace_id=ctx.trace.trace_id if ctx.trace is not None else None,
        )
