"""Result types shared by all verification engines and the pipeline."""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.model.update import Update


@dataclass
class VerificationOutcome:
    """What an engine returns for one update."""

    accepted: bool
    engine: str
    constraint_ids: List[str] = field(default_factory=list)
    evidence: Dict[str, Any] = field(default_factory=dict)
    failed_constraint: Optional[str] = None

    def to_dict(self) -> dict:
        """The decision fields anchored on the ledger (evidence is
        kept out: it may contain ciphertexts or proofs)."""
        return {
            "accepted": self.accepted,
            "engine": self.engine,
            "constraint_ids": self.constraint_ids,
            "failed_constraint": self.failed_constraint,
        }


@dataclass
class UpdateResult:
    """Full pipeline outcome for one submitted update (Figure 2)."""

    update: Update
    outcome: VerificationOutcome
    applied: bool
    ledger_sequence: Optional[int] = None
    stage_timings: Dict[str, float] = field(default_factory=dict)
    trace_id: Optional[str] = None
    #: Name of the shard that processed the update (set by
    #: :class:`~repro.core.sharded.ShardedPReVer`; None for a
    #: standalone framework or a coordinator-side escalation decision).
    shard: Optional[str] = None

    @property
    def accepted(self) -> bool:
        """Shorthand for ``outcome.accepted``."""
        return self.outcome.accepted
