"""The PReVer framework (Section 4 of the paper).

* :mod:`repro.core.outcome` — shared result types for verification;
* :mod:`repro.core.verifiers` — single-database engines (RC1):
  plaintext baseline, Paillier, producer-side ZK proofs, enclave,
  DP-index prescreening;
* :mod:`repro.core.federated` — federated engines (RC2): MPC and
  token-based;
* :mod:`repro.core.pir_engine` — the public-database engine (RC3);
* :mod:`repro.core.framework` — the Figure-2 pipeline: constraints
  registered by authorities, updates verified, applied, and anchored
  on an append-only ledger (RC4);
* :mod:`repro.core.pipeline` — the update path itself as composable
  stages (auth → route → verify → durability → apply → anchor) with
  uniform ``run_one`` / ``run_batch`` interfaces;
* :mod:`repro.core.sharded` — table-partitioned scale-out:
  :class:`ShardedPReVer` over N independent shards with a combined
  root-of-roots commitment and fail-closed cross-shard escalation;
* :mod:`repro.core.replicated` — consensus-backed shards:
  :class:`ReplicatedShard` replays a replication driver's decided
  batch stream into N replica frameworks with per-batch root-equality
  asserts and crash/catch-up resynchronization;
* :mod:`repro.core.contexts` — factory functions for the canonical
  instantiations (single private / federated private / public);
* :mod:`repro.core.separ` — the Separ instantiation (Section 5).
"""

from repro.core.outcome import VerificationOutcome, UpdateResult
from repro.core.verifiers import (
    PlaintextVerifier,
    PaillierVerifier,
    ZKPVerifier,
    EnclaveVerifier,
    DPIndexVerifier,
)
from repro.core.federated import MPCVerifier, TokenVerifier
from repro.core.pir_engine import PIRVerifier
from repro.core.framework import PReVer
from repro.core.pipeline import (
    AnchorStage,
    ApplyStage,
    AuthStage,
    DurabilityStage,
    Pipeline,
    RouteStage,
    UpdateContext,
    VerifyStage,
)
from repro.core.replicated import ReplicatedShard
from repro.core.sharded import (
    ShardedDigest,
    ShardedPReVer,
    ShardPlan,
    ShardSpec,
)
from repro.core.contexts import (
    single_private_database,
    federated_private_databases,
    public_database,
)
from repro.core.separ import SeparSystem, Platform, Worker

__all__ = [
    "VerificationOutcome",
    "UpdateResult",
    "PlaintextVerifier",
    "PaillierVerifier",
    "ZKPVerifier",
    "EnclaveVerifier",
    "DPIndexVerifier",
    "MPCVerifier",
    "TokenVerifier",
    "PIRVerifier",
    "PReVer",
    "Pipeline",
    "UpdateContext",
    "AuthStage",
    "RouteStage",
    "VerifyStage",
    "DurabilityStage",
    "ApplyStage",
    "AnchorStage",
    "ReplicatedShard",
    "ShardedPReVer",
    "ShardSpec",
    "ShardPlan",
    "ShardedDigest",
    "single_private_database",
    "federated_private_databases",
    "public_database",
    "SeparSystem",
    "Platform",
    "Worker",
]
