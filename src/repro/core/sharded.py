"""Sharded front-end: table-partitioned scale-out over ``PReVer``.

The ROADMAP's production north star — millions of users — does not fit
one pipeline instance: a single ``PReVer`` serializes every verify,
apply, and Merkle append.  VAMS scales verifiable audit by
partitioning the authenticated log; :class:`ShardedPReVer` does the
same to the Figure-2 pipeline.  Tables are partitioned across N
independent shards, each a full :class:`~repro.core.framework.PReVer`
with its **own** ledger, durability policy, and executor:

* a single-table update routes to its home shard and runs the
  unmodified staged pipeline there — one shard's stream of decisions,
  digests, and WAL bytes is identical to a standalone framework fed
  the same substream;
* a batch is partitioned by home shard (order preserved within each
  shard) and dispatched shard-parallel: in-process under
  ``dispatch="serial"``, or across dedicated per-shard worker
  processes (:class:`~repro.parallel.shards.ShardWorker`) under
  ``dispatch="process"`` — real multicore scaling, since each shard
  runs in its own interpreter;
* constraints whose scope spans shards cannot be checked by any one
  shard.  They must be registered coordinator-side with an RC2
  federated verifier (:class:`~repro.core.federated.TokenVerifier`,
  or :class:`~repro.core.federated.MPCVerifier` when the shard
  databases are reachable in-process) — **fail-closed**: registering
  without one, or registering a single-shard constraint here, raises.
  Escalation rejections are anchored on the coordinator's own ledger,
  so shard ledgers stay clean substream-equivalents;
* each shard can be **consensus-backed** via the ``consensus=`` plan
  knobs: a :class:`~repro.core.replicated.ReplicatedShard` orders the
  shard's batches through a
  :class:`~repro.consensus.driver.ReplicationDriver` (Paxos, PBFT, or
  a SharPer shard on a shared simulated network) and replays the
  decided stream into N replica frameworks, asserting per-batch root
  equality.  Cross-shard escalation decisions then order through the
  coordinator's own driver before anchoring;
* the combined commitment is a Merkle **root-of-roots** over the
  per-shard ledger roots (:meth:`ShardedPReVer.digest`), and
  :meth:`ShardedPReVer.recover` recovers every shard from its own
  WAL/snapshots and re-verifies each root before the front-end
  serves.

Durability note: the coordinator's escalation ledger is in-memory —
cross-shard *rejections* never mutate shard state, so crash recovery
reconstructs exactly the applied state from the per-shard WALs; the
root-of-roots deliberately covers only the shard roots.
"""

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.clock import SimClock
from repro.common.errors import IntegrityError, PReVerError, ProtocolError
from repro.common.metrics import MetricsRegistry
from repro.consensus.driver import make_driver, resolve_plan
from repro.core.federated import MPCVerifier, TokenVerifier
from repro.core.framework import PReVer
from repro.core.outcome import UpdateResult
from repro.crypto.merkle import MerkleTree
from repro.ledger.central import CentralLedger
from repro.model.constraints import Constraint
from repro.model.update import Update
from repro.obs.tracing import NOOP_TRACER, Tracer
from repro.parallel.shards import ShardWorker


@dataclass(frozen=True)
class ShardSpec:
    """Recipe for one shard: a name, the tables it owns, and a
    zero-argument builder returning the shard's fully configured
    :class:`~repro.core.framework.PReVer`.

    Under ``dispatch="process"`` the builder runs inside the shard's
    dedicated worker process, so it must be picklable — a module-level
    function or a ``functools.partial`` over one — and must build
    everything (databases, constraints, engine, durability) itself.
    """

    name: str
    tables: Tuple[str, ...]
    build: Callable[[], PReVer]


class ShardPlan:
    """The table → shard routing map, validated at construction:
    every table belongs to exactly one shard (fail-closed on overlap),
    and routing an unknown table raises instead of guessing."""

    def __init__(self, specs: Sequence[ShardSpec]):
        if not specs:
            raise PReVerError("ShardedPReVer needs at least one shard")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise PReVerError(f"duplicate shard names in {names}")
        self.specs = list(specs)
        self._home: Dict[str, int] = {}
        for index, spec in enumerate(specs):
            if not spec.tables:
                raise PReVerError(f"shard {spec.name!r} owns no tables")
            for table in spec.tables:
                if table in self._home:
                    other = specs[self._home[table]].name
                    raise PReVerError(
                        f"table {table!r} claimed by shards "
                        f"{other!r} and {spec.name!r}"
                    )
                self._home[table] = index

    def shard_for(self, table: str) -> int:
        """Home shard index for ``table`` (raises on unknown tables)."""
        index = self._home.get(table)
        if index is None:
            raise PReVerError(f"no shard owns table {table!r}")
        return index

    def shards_for(self, tables: Sequence[str]) -> Tuple[int, ...]:
        """Sorted, de-duplicated shard indexes covering ``tables``;
        an empty scope means *all* shards (unscoped constraints apply
        everywhere)."""
        if not tables:
            return tuple(range(len(self.specs)))
        return tuple(sorted({self.shard_for(table) for table in tables}))


class _Immediate:
    """Future-alike wrapping an already computed value, so serial and
    process dispatch share one scatter/gather code path."""

    def __init__(self, value):
        self._value = value

    def result(self):
        """The wrapped value."""
        return self._value


class _SerialShard:
    """In-process shard handle: the framework lives in this
    interpreter (so :class:`MPCVerifier` escalation can reach its
    databases), and "async" dispatch just runs inline."""

    def __init__(self, spec: ShardSpec):
        self.framework = spec.build()
        self._tracker = None

    def submit(self, update: Update) -> UpdateResult:
        """Route one update through the shard's pipeline."""
        return self.framework.submit(update)

    def submit_many_async(self, updates: Sequence[Update]):
        """Run the shard's batch inline; returns an immediate future."""
        return _Immediate(self.framework.submit_many(updates))

    def digest(self):
        """The shard ledger's digest."""
        return self.framework.ledger.digest()

    def recover(self):
        """Run the shard's crash recovery."""
        return self.framework.recover()

    def throughput_report(self) -> dict:
        """The shard's per-stage throughput report."""
        return self.framework.throughput_report()

    def metrics_snapshot(self) -> dict:
        """The shard's metrics snapshot."""
        return self.framework.metrics.snapshot()

    def telemetry_delta(self):
        """Incremental telemetry delta (full history on first call)."""
        if self._tracker is None:
            from repro.obs.aggregate import DeltaTracker

            self._tracker = DeltaTracker(
                self.framework.metrics, tracer=self.framework.tracer,
                origin=True,
            )
        return self._tracker.capture()

    def alive(self) -> bool:
        """Liveness: delegates to the in-process framework's checks."""
        return self.framework.health_report()["ok"]

    def readiness_report(self) -> dict:
        """The shard framework's readiness report."""
        return self.framework.readiness_report()

    def verification_trail(self, trace_id: str):
        """The shard's trail for ``trace_id`` (None when absent)."""
        return self.framework.verification_trail(trace_id)

    def counters(self) -> dict:
        """Submitted/applied/ledger-size counters."""
        return {
            "submitted": self.framework._submitted_count,
            "applied": self.framework._applied_count,
            "ledger_size": len(self.framework.ledger),
        }

    def close(self) -> None:
        """Flush the shard's WAL."""
        self.framework.close()


class _ProcessShard:
    """Worker-process shard handle: every call crosses into the
    shard's pinned child process via
    :class:`~repro.parallel.shards.ShardWorker`."""

    def __init__(self, spec: ShardSpec):
        self.worker = ShardWorker(spec.name, spec.build)

    def submit(self, update: Update) -> UpdateResult:
        """Route one update through the shard's pipeline."""
        return self.worker.call("submit", update)

    def submit_many_async(self, updates: Sequence[Update]):
        """Dispatch the shard's batch to its worker; returns the
        future so other shards' batches run concurrently."""
        return self.worker.call_async("submit_many", updates)

    def digest(self):
        """The shard ledger's digest."""
        return self.worker.digest()

    def recover(self):
        """Run the shard's crash recovery inside its worker."""
        return self.worker.call("recover")

    def throughput_report(self) -> dict:
        """The shard's per-stage throughput report."""
        return self.worker.call("throughput_report")

    def metrics_snapshot(self) -> dict:
        """The shard's metrics snapshot."""
        return self.worker.metrics_snapshot()

    def telemetry_delta(self):
        """Incremental telemetry delta from the shard's child process."""
        return self.worker.telemetry_delta()

    def alive(self) -> bool:
        """Liveness: the pinned worker process can still take work."""
        return self.worker.alive()

    def readiness_report(self) -> dict:
        """The shard framework's readiness report, from the child."""
        return self.worker.call("readiness_report")

    def verification_trail(self, trace_id: str):
        """The shard's trail for ``trace_id`` (None when absent)."""
        return self.worker.call("verification_trail", trace_id)

    def counters(self) -> dict:
        """Submitted/applied/ledger-size counters."""
        return self.worker.counters()

    def close(self) -> None:
        """Flush the shard's WAL and stop its worker."""
        self.worker.shutdown()


@dataclass(frozen=True)
class ShardedDigest:
    """The combined commitment: a Merkle root over the per-shard
    ledger roots, in shard order, plus the roots themselves so any
    shard's inclusion can be checked independently."""

    root: bytes
    shard_roots: Tuple[bytes, ...]
    shard_sizes: Tuple[int, ...]

    def to_dict(self) -> dict:
        """Serializable form, for artifacts and the event log."""
        return {
            "root": self.root.hex(),
            "shard_roots": [r.hex() for r in self.shard_roots],
            "shard_sizes": list(self.shard_sizes),
        }


class ShardedPReVer:
    """N independent ``PReVer`` shards behind one submit API.

    ``dispatch="serial"`` builds every shard in this process (use for
    tests, recovery drills, and MPC escalation); ``dispatch="process"``
    pins each shard to a dedicated worker process for real multicore
    batch throughput.  Decisions are dispatch-independent.

    ``consensus`` makes shards consensus-backed: a kind string
    (``"paxos"``/``"pbft"``/``"sharper"``/``"local"``) or a
    :class:`~repro.consensus.driver.ReplicationPlan` applies to every
    shard *and* gives the coordinator its own driver (escalation
    decisions are then ordered through it before anchoring); a dict
    maps shard names to per-shard plans, with an optional
    ``"coordinator"`` key for the escalation driver.  Consensus-backed
    shards are :class:`~repro.core.replicated.ReplicatedShard`
    instances — their replica frameworks and simulated consensus
    networks live in this process, so ``consensus`` requires
    ``dispatch="serial"`` (fail-closed otherwise).  Sharper plans
    share one simulated network and ledger: one consensus shard per
    pipeline shard, so disjoint shards order in parallel.
    """

    def __init__(
        self,
        specs: Sequence[ShardSpec],
        dispatch: str = "serial",
        clock: Optional[SimClock] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        escalation_ledger: Optional[CentralLedger] = None,
        consensus=None,
    ):
        if dispatch not in ("serial", "process"):
            raise PReVerError(f"unknown dispatch mode {dispatch!r}")
        self.plan = ShardPlan(specs)
        self.specs = self.plan.specs
        self.dispatch = dispatch
        self.clock = clock or SimClock()
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer or NOOP_TRACER
        #: Cross-shard escalation decisions are anchored here — never
        #: on a shard's ledger, which stays substream-equivalent to a
        #: standalone framework.
        self.escalation_ledger = escalation_ledger or CentralLedger(
            name="shard-coordinator"
        )
        if self.tracer.enabled:
            self.escalation_ledger.bind_tracer(self.tracer)
        self._cross: List[Tuple[Constraint, object]] = []
        self._closed = False
        shard_plans, coordinator_plan = self._resolve_consensus(consensus)
        self.consensus_plans = {
            spec.name: plan
            for spec, plan in zip(self.specs, shard_plans)
            if plan is not None
        }
        self.coordinator_plan = coordinator_plan
        if dispatch == "process" and (
            coordinator_plan is not None or self.consensus_plans
        ):
            raise PReVerError(
                "consensus-backed shards replay into replica frameworks "
                "and simulated consensus networks in the coordinator "
                'process; use dispatch="serial"'
            )
        sharper_ledger = self._build_sharper_ledger(
            shard_plans, coordinator_plan
        )
        handle_cls = _SerialShard if dispatch == "serial" else _ProcessShard
        self.shards = [
            self._build_shard(spec, plan, handle_cls, sharper_ledger)
            for spec, plan in zip(self.specs, shard_plans)
        ]
        #: The coordinator's own ordering driver: cross-shard
        #: escalation decisions are proposed through it and anchored in
        #: decided order.  ``None`` appends directly (the pre-driver
        #: path, byte-identical).
        self.replication = None
        if coordinator_plan is not None:
            self.replication = make_driver(
                coordinator_plan, metrics=self.metrics, tracer=self.tracer,
                sharper_ledger=sharper_ledger,
                sharper_shard="coordinator",
            )
        self._ctr_updates = self.metrics.counter("sharded.updates")
        self._ctr_escalations = self.metrics.counter("sharded.escalations")
        self._ctr_escalation_rejections = self.metrics.counter(
            "sharded.escalation_rejections"
        )

    def _resolve_consensus(self, consensus):
        """Normalize the ``consensus`` knob into per-shard plans plus
        the coordinator's plan (each ``None`` = the plain direct path)."""
        names = [spec.name for spec in self.specs]
        if consensus is None:
            return [None] * len(names), None
        if isinstance(consensus, dict):
            unknown = set(consensus) - set(names) - {"coordinator"}
            if unknown:
                raise PReVerError(
                    f"consensus plans for unknown shards: {sorted(unknown)}"
                )
            plans = [
                resolve_plan(consensus[name]) if name in consensus else None
                for name in names
            ]
            coordinator = (
                resolve_plan(consensus["coordinator"])
                if "coordinator" in consensus else None
            )
            return plans, coordinator
        plan = resolve_plan(consensus)
        return [plan] * len(names), plan

    def _build_sharper_ledger(self, shard_plans, coordinator_plan):
        """One shared SharPer ledger + simulated network for every
        sharper-backed shard (and the coordinator, when sharper): one
        consensus shard per pipeline shard, so disjoint pipeline shards
        order in parallel — SharPer's scaling argument."""
        sharper_names = [
            spec.name
            for spec, plan in zip(self.specs, shard_plans)
            if plan is not None and plan.kind == "sharper"
        ]
        coordinator_sharper = (
            coordinator_plan is not None and coordinator_plan.kind == "sharper"
        )
        if not sharper_names and not coordinator_sharper:
            return None
        from repro.chain.sharper import ShardedLedger
        from repro.net.simnet import network_profile

        plans = [p for p in list(shard_plans) + [coordinator_plan]
                 if p is not None and p.kind == "sharper"]
        first = plans[0]
        names = sharper_names + (["coordinator"] if coordinator_sharper else [])
        network = network_profile(first.profile).build(
            metrics=self.metrics, tracer=self.tracer
        )
        return ShardedLedger(names, f=first.f, network=network)

    def _build_shard(self, spec: ShardSpec, plan, handle_cls,
                     sharper_ledger):
        """One shard handle: plain serial/process for the default path,
        a :class:`ReplicatedShard` when a consensus plan asks for
        ordering or more than one replica."""
        if plan is None or (plan.kind == "local" and plan.replicas <= 1):
            return handle_cls(spec)
        from repro.core.replicated import ReplicatedShard

        driver = make_driver(
            plan, metrics=self.metrics, tracer=self.tracer,
            sharper_ledger=sharper_ledger, sharper_shard=spec.name,
        )
        return ReplicatedShard(
            spec.build, replicas=plan.replicas, driver=driver,
            metrics=self.metrics, tracer=self.tracer, name=spec.name,
        )

    # -- cross-shard constraints (fail-closed) ---------------------------

    def register_cross_shard_constraint(self, constraint: Constraint,
                                        verifier=None) -> None:
        """Register a constraint whose scope spans shards.

        Fail-closed on every degenerate configuration: a constraint
        that fits inside one shard must be registered *on* that shard
        (its pipeline checks it with full local state); a spanning
        constraint without an RC2 federated verifier is refused rather
        than checked partially; an :class:`MPCVerifier` is refused
        under process dispatch, where the shard databases it aggregates
        over are not reachable from the coordinator.
        """
        covering = self.plan.shards_for(constraint.tables)
        if len(covering) <= 1:
            home = self.specs[covering[0]].name
            raise PReVerError(
                f"constraint {constraint.name!r} fits inside shard "
                f"{home!r}; register it there, not on the coordinator"
            )
        if verifier is None:
            raise PReVerError(
                f"cross-shard constraint {constraint.name!r} needs an RC2 "
                "federated verifier (TokenVerifier or MPCVerifier) — "
                "no single shard can see enough state to check it"
            )
        if isinstance(verifier, MPCVerifier):
            if self.dispatch != "serial":
                raise PReVerError(
                    "MPCVerifier escalation aggregates over the shard "
                    "databases and needs them in-process; use "
                    'dispatch="serial" or a TokenVerifier'
                )
        elif not isinstance(verifier, TokenVerifier):
            raise PReVerError(
                f"unsupported cross-shard verifier {type(verifier).__name__}; "
                "use TokenVerifier or MPCVerifier"
            )
        self._cross.append((constraint, verifier))

    def _escalate(self, update: Update) -> Optional[UpdateResult]:
        """Check the cross-shard constraints covering this update's
        table; a rejection is anchored on the coordinator ledger and
        the update never reaches its home shard."""
        now = self.clock.now()
        for constraint, verifier in self._cross:
            if constraint.tables and update.table not in constraint.tables:
                continue
            self._ctr_escalations.add()
            outcome = verifier.verify(update, now)
            if self.tracer.enabled:
                self.tracer.event(
                    "shard.escalation",
                    update_id=update.update_id,
                    table=update.table,
                    constraint_id=constraint.constraint_id,
                    verifier=type(verifier).__name__,
                    accepted=outcome.accepted,
                )
            if not outcome.accepted:
                self._ctr_escalation_rejections.add()
                update.mark_rejected(
                    outcome.failed_constraint or constraint.constraint_id
                )
                entry = self._anchor_escalation({
                    "update_id": update.update_id,
                    "table": update.table,
                    "status": update.status.value,
                    "decision": outcome.to_dict(),
                    "scope": "cross-shard",
                    "timestamp": now,
                })
                result = UpdateResult(
                    update=update, outcome=outcome, applied=False,
                    ledger_sequence=entry.sequence,
                )
                result.shard = None
                return result
        return None

    def _anchor_escalation(self, payload: dict):
        """Anchor one escalation decision on the coordinator ledger.

        With no coordinator driver this is a direct append (the
        pre-consensus path).  With one, the decision is proposed
        through the driver and *every* newly decided escalation is
        appended in decided order — so several coordinators sharing a
        driver converge on one escalation-ledger history — and the
        entry for this payload is returned.
        """
        if self.replication is None:
            return self.escalation_ledger.append(payload)
        sequence = self.replication.propose_batch({"escalations": [payload]})
        entry = None
        for decided in self.replication.committed_stream():
            for item in decided.payload.get("escalations", ()):
                appended = self.escalation_ledger.append(item)
                if decided.sequence == sequence:
                    entry = appended
        if entry is None:
            raise ProtocolError(
                "coordinator driver never delivered escalation "
                f"proposal {sequence}"
            )
        return entry

    # -- the submit API ---------------------------------------------------

    def submit(self, update: Update) -> UpdateResult:
        """Route one update: escalate cross-shard constraints, then
        run it through its home shard's pipeline."""
        index = self.plan.shard_for(update.table)
        self._ctr_updates.add()
        rejected = self._escalate(update)
        if rejected is not None:
            return rejected
        result = self.shards[index].submit(update)
        result.shard = self.specs[index].name
        return result

    def submit_many(self, updates: Sequence[Update]) -> List[UpdateResult]:
        """Partition a batch by home shard and dispatch shard-parallel.

        Order is preserved within each shard (so per-shard decisions
        match a standalone framework fed that substream) and the
        returned list is in the original submission order.  Escalation
        runs coordinator-side first, in submission order — token
        budgets are order-sensitive — and escalation rejections never
        reach a shard.
        """
        updates = list(updates)
        if not updates:
            return []
        # Route everything up front: an unknown table fails the whole
        # batch before any shard state mutates.
        homes = [self.plan.shard_for(update.table) for update in updates]
        self._ctr_updates.add(len(updates))
        results: List[Optional[UpdateResult]] = [None] * len(updates)
        per_shard: Dict[int, List[int]] = {}
        for position, (update, home) in enumerate(zip(updates, homes)):
            rejected = self._escalate(update) if self._cross else None
            if rejected is not None:
                results[position] = rejected
            else:
                per_shard.setdefault(home, []).append(position)
        with self.metrics.timed("sharded.dispatch"):
            scattered = []
            for home in sorted(per_shard):
                positions = per_shard[home]
                batch = [updates[p] for p in positions]
                if self.tracer.enabled:
                    self.tracer.event(
                        "shard.dispatch",
                        shard=self.specs[home].name,
                        items=len(batch),
                        dispatch=self.dispatch,
                    )
                scattered.append(
                    (home, positions,
                     self.shards[home].submit_many_async(batch))
                )
            for home, positions, future in scattered:
                name = self.specs[home].name
                for position, result in zip(positions, future.result()):
                    result.shard = name
                    results[position] = result
        return results

    # -- commitment, recovery, reporting ---------------------------------

    def shard_digests(self) -> Dict[str, object]:
        """Per-shard ledger digests, keyed by shard name."""
        return {
            spec.name: shard.digest()
            for spec, shard in zip(self.specs, self.shards)
        }

    def digest(self) -> ShardedDigest:
        """The Merkle root-of-roots over the per-shard ledger roots
        (shard order).  Any participant holding one shard's digest can
        verify it against this combined commitment."""
        digests = [shard.digest() for shard in self.shards]
        tree = MerkleTree([d.root for d in digests])
        return ShardedDigest(
            root=tree.root(),
            shard_roots=tuple(d.root for d in digests),
            shard_sizes=tuple(d.size for d in digests),
        )

    def recover(self) -> Dict[str, object]:
        """Recover every shard from its own WAL/snapshots and
        re-verify each recovered root (fail-closed: any shard whose
        replayed root does not match its last durable anchor aborts
        the whole front-end).  Returns per-shard
        :class:`~repro.durability.recovery.RecoveryReport`s."""
        reports = {}
        for spec, shard in zip(self.specs, self.shards):
            report = shard.recover()
            if not report.verified_against_anchor and report.final_size:
                raise IntegrityError(
                    f"shard {spec.name!r} recovered root does not match "
                    "its last durable anchor"
                )
            reports[spec.name] = report
        return reports

    def throughput_report(self) -> dict:
        """Per-shard throughput reports plus a combined summary.

        Combined ``updates_per_sec`` sums the per-shard rates: shards
        run concurrently under process dispatch, so rates add (under
        serial dispatch this is an upper bound; the per-shard reports
        carry the honest per-instance numbers).
        """
        shards = {
            spec.name: shard.throughput_report()
            for spec, shard in zip(self.specs, self.shards)
        }
        return {
            "dispatch": self.dispatch,
            "shards": shards,
            "combined": {
                "updates": sum(r["updates"] for r in shards.values()),
                "updates_per_sec": sum(
                    r["updates_per_sec"] for r in shards.values()
                ),
            },
        }

    def metrics_snapshot(self) -> dict:
        """Coordinator metrics plus every shard's snapshot, merged
        under per-shard keys."""
        merged = {"coordinator": self.metrics.snapshot()}
        for spec, shard in zip(self.specs, self.shards):
            merged[spec.name] = shard.metrics_snapshot()
        return merged

    def collect_telemetry(self) -> MetricsRegistry:
        """Pull every shard's telemetry delta and merge it into the
        coordinator registry under ``shard.<name>.*`` labels.

        Incremental and idempotent across calls (each shard ships only
        what happened since its previous capture), so the ops server
        can call this on every ``/metrics`` scrape.  Returns the
        coordinator registry, now holding the merged view.
        """
        from repro.obs.aggregate import merge_delta

        for spec, shard in zip(self.specs, self.shards):
            delta = shard.telemetry_delta()
            if delta is not None and not delta.empty():
                merge_delta(self.metrics, delta,
                            prefix=f"shard.{spec.name}")
        return self.metrics

    def consensus_report(self) -> dict:
        """Per-shard replication-driver stats (proposed/decided counts
        and the underlying cluster's latency/throughput summary), plus
        the coordinator's escalation driver under ``"coordinator"``.
        Consensus-free shards are omitted."""
        report = {}
        for spec, shard in zip(self.specs, self.shards):
            stats = getattr(shard, "stats", None)
            if stats is not None:
                report[spec.name] = stats()
        if self.replication is not None:
            report["coordinator"] = self.replication.stats()
        return report

    # -- ops probes & audit trails ----------------------------------------

    def health_report(self) -> dict:
        """Liveness checks for the ops server's ``/healthz``: every
        shard can take work and the escalation ledger is reachable."""
        checks = {
            "escalation_ledger": {
                "ok": True, "size": len(self.escalation_ledger),
            },
        }
        for spec, shard in zip(self.specs, self.shards):
            try:
                ok = shard.alive()
                detail = {"ok": ok, "dispatch": self.dispatch}
            except Exception as exc:
                detail = {"ok": False, "error": repr(exc)}
            checks[f"shard.{spec.name}"] = detail
        return {
            "ok": all(c["ok"] for c in checks.values()),
            "checks": checks,
        }

    def readiness_report(self) -> dict:
        """Readiness checks for ``/readyz``: liveness plus every
        shard's own ledger-root vs last-anchored-root consistency."""
        report = self.health_report()
        for spec, shard in zip(self.specs, self.shards):
            try:
                shard_ready = shard.readiness_report()
                detail = {"ok": shard_ready["ok"]}
            except Exception as exc:
                detail = {"ok": False, "error": repr(exc)}
            report["checks"][f"shard.{spec.name}.ready"] = detail
        report["ok"] = all(c["ok"] for c in report["checks"].values())
        return report

    def verification_trail(self, trace_id: str) -> Optional[dict]:
        """One update's full verification trail, searched across every
        shard (each shard's trail verifies against its *own* ledger
        digest; the shard root is independently checkable against the
        root-of-roots commitment).  None when no shard anchored it."""
        for spec, shard in zip(self.specs, self.shards):
            trail = shard.verification_trail(trace_id)
            if trail is not None:
                trail["shard"] = spec.name
                return trail
        return None

    def acceptance_rate(self) -> float:
        """Applied / submitted across all shards *and* coordinator
        escalation rejections (which were submitted but never
        applied)."""
        submitted = applied = 0
        for shard in self.shards:
            counters = shard.counters()
            submitted += counters["submitted"]
            applied += counters["applied"]
        submitted += self._ctr_escalation_rejections.count
        if not submitted:
            return 0.0
        return applied / submitted

    def serve(self, **config):
        """Expose the sharded deployment over the wire protocol.

        Same contract as :meth:`repro.core.framework.PReVer.serve`:
        returns a started :class:`~repro.serve.server.ServerThread`
        whose batches route across the shards exactly as in-process
        ``submit_many`` batches do (decisions are dispatch-independent).
        """
        from repro.serve.server import ServerThread

        thread = ServerThread(self, **config)
        thread.start()
        return thread

    def close(self) -> None:
        """Flush every shard's WAL (and stop worker processes under
        process dispatch); idempotent."""
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            shard.close()
        if self.replication is not None:
            self.replication.close()
