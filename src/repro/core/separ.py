"""Separ — the worked instantiation of PReVer (Section 5).

Multi-platform crowdworking: workers are the data producers and owners;
the competing platforms (Uber, Lyft, ...) are mutually distrustful data
managers; a trusted third party is the external authority issuing the
public regulation (FLSA: at most 40 hours/week per worker across *all*
platforms).  Design choices, exactly as the paper describes Separ's:

* data and updates private, constraints public;
* centralized token-based enforcement: the authority issues 40
  blind-signed one-hour tokens per worker per week;
* global integrity state (the tokens spent) on a **sharded
  permissioned blockchain** (SharPer), replicated among the platforms;
* lower-bound regulations supported via per-period pseudonyms.

The known Separ limitations the paper lists are reproduced as explicit
behaviours the tests exercise: the trusted authority is a single point
(``authority_offline`` halts issuance), only bound constraints are
supported (richer SQL raises), and the no-collusion assumption is
surfaced by :meth:`collusion_view` showing what colluding platforms
can pool (serials and pseudonym counts — not worker identities).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.clock import SimClock
from repro.common.errors import ConstraintViolation, PReVerError
from repro.chain.sharper import ShardedLedger
from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema
from repro.model.constraints import (
    Constraint,
    WindowSpec,
    upper_bound_regulation,
)
from repro.model.participants import Authority, DataProducer
from repro.model.update import Update, UpdateOperation
from repro.privacy.tokens import (
    DoubleSpendError,
    IssuerUnavailable,
    SpendRegistry,
    TokenAuthority,
    TokenError,
    TokenWallet,
)

WEEK_SECONDS = 7 * 24 * 3600.0

TASK_SCHEMA = TableSchema.build(
    "tasks",
    [
        ("task_id", ColumnType.TEXT),
        ("pseudonym", ColumnType.TEXT),
        ("hours", ColumnType.INT),
        ("requester", ColumnType.TEXT),
        ("completed_at", ColumnType.FLOAT),
    ],
    primary_key=["task_id"],
    indexes=["pseudonym"],
)


class Platform:
    """One crowdworking platform: a private task database plus the
    shared spend state."""

    def __init__(self, name: str, clock: SimClock):
        self.name = name
        self.database = Database(name, clock=clock)
        self.database.create_table(TASK_SCHEMA)
        self.observed_serials: List[str] = []
        self.observed_pseudonyms: List[str] = []

    def record_task(self, task_id: str, pseudonym: str, hours: int,
                    requester: str, at: float) -> None:
        self.database.insert(
            "tasks",
            {
                "task_id": task_id,
                "pseudonym": pseudonym,
                "hours": hours,
                "requester": requester,
                "completed_at": at,
            },
        )


class Worker:
    """A crowdworker: identity, token wallet, per-period pseudonyms."""

    def __init__(self, name: str, authority_key):
        self.name = name
        self.producer = DataProducer(name)
        self.wallet = TokenWallet(name, authority_key)

    def pseudonym(self, period: int) -> str:
        return self.wallet.pseudonym_for(period)


@dataclass
class TaskResult:
    accepted: bool
    task_id: Optional[str] = None
    reason: Optional[str] = None


class SeparSystem:
    """The full Separ deployment."""

    def __init__(
        self,
        platform_names: Sequence[str],
        weekly_hour_cap: int = 40,
        shards: int = 2,
        rsa_bits: int = 512,
        distributed_authority: int = 0,
    ):
        """``distributed_authority`` > 0 replaces the centralized token
        issuer with that many n-of-n share signers (addressing Separ's
        single-trusted-party limitation; see
        :mod:`repro.privacy.threshold_tokens`)."""
        if len(platform_names) < 2:
            raise PReVerError("Separ is a multi-platform system")
        self.clock = SimClock()
        self.weekly_hour_cap = weekly_hour_cap
        if distributed_authority > 0:
            from repro.privacy.threshold_tokens import DistributedTokenAuthority

            self.authority = DistributedTokenAuthority(
                signers=distributed_authority,
                budget_per_period=weekly_hour_cap,
                rsa_bits=rsa_bits,
            )
        else:
            self.authority = TokenAuthority(
                budget_per_period=weekly_hour_cap, rsa_bits=rsa_bits
            )
        self.authority_participant = Authority("labor-authority", external=True)
        self.authority_offline = False
        self.registry = SpendRegistry(self.authority.public_key)
        self.platforms: Dict[str, Platform] = {
            name: Platform(name, self.clock) for name in platform_names
        }
        shard_names = [f"sh{i}" for i in range(max(1, shards))]
        self.blockchain = ShardedLedger(shard_names, f=1)
        self._platform_shard = {
            name: shard_names[i % len(shard_names)]
            for i, name in enumerate(platform_names)
        }
        self.workers: Dict[str, Worker] = {}
        self.regulation = upper_bound_regulation(
            name="flsa-40h",
            table="tasks",
            column="hours",
            bound=weekly_hour_cap,
            match_columns=["pseudonym"],
            window=WindowSpec(time_column="completed_at", length=WEEK_SECONDS),
            authority=self.authority_participant.name,
        )
        self.regulation.signature = self.authority_participant.sign(
            self.regulation.body_bytes()
        )
        self._task_counter = 0

    # -- participants ---------------------------------------------------------

    def register_worker(self, name: str) -> Worker:
        worker = Worker(name, self.authority.public_key)
        self.workers[name] = worker
        return worker

    def current_period(self) -> int:
        return int(self.clock.now() // WEEK_SECONDS)

    # -- the update path (a crowdworking task completion) -----------------------

    def complete_task(
        self, worker_name: str, platform_name: str, hours: int,
        requester: str = "requester",
    ) -> TaskResult:
        """A worker+requester collaboration producing one update.

        Runs the Separ protocol: top up tokens if the budget allows,
        spend ``hours`` tokens at the platform (double-spend checked
        against the shared state), record the task under the worker's
        period pseudonym, and anchor the spend batch on the blockchain.
        """
        worker = self.workers[worker_name]
        platform = self.platforms[platform_name]
        period = self.current_period()
        if hours <= 0:
            return TaskResult(False, reason="non-positive hours")

        # Token acquisition (the authority is Separ's trust anchor).
        if worker.wallet.balance(period) < hours:
            if self.authority_offline:
                return TaskResult(False, reason="authority unavailable")
            needed = hours - worker.wallet.balance(period)
            try:
                worker.wallet.request_tokens(self.authority, period, needed)
            except IssuerUnavailable:
                return TaskResult(False, reason="authority unavailable")
            except TokenError:
                return TaskResult(False, reason="weekly hour cap reached")

        try:
            tokens = worker.wallet.take(period, hours)
        except TokenError:
            return TaskResult(False, reason="insufficient tokens")

        # Spend at the platform; platforms see serials + pseudonym only.
        pseudonym = worker.pseudonym(period)
        try:
            for token in tokens:
                self.registry.spend(token, platform_name)
                platform.observed_serials.append(token.serial)
        except DoubleSpendError:
            return TaskResult(False, reason="double spend detected")
        platform.observed_pseudonyms.append(pseudonym)

        # Record the private update on the platform's database.
        self._task_counter += 1
        task_id = f"task-{self._task_counter:06d}"
        platform.record_task(
            task_id, pseudonym, hours, requester, self.clock.now()
        )

        # Anchor the spend on the sharded blockchain (global state).
        self.blockchain.submit_intra(
            self._platform_shard[platform_name],
            {"pseudonym": pseudonym, "hours": hours, "platform": platform_name,
             "period": period},
        )
        return TaskResult(True, task_id=task_id)

    def settle(self) -> None:
        """Drive the blockchain network to quiescence."""
        self.blockchain.run()

    # -- regulation accounting -----------------------------------------------------

    def hours_worked(self, worker_name: str, period: Optional[int] = None) -> int:
        """Ground truth across all platforms (only the worker and the
        authority could compute this; platforms cannot)."""
        period = self.current_period() if period is None else period
        pseudonym = self.workers[worker_name].pseudonym(period)
        total = 0
        for platform in self.platforms.values():
            for row in platform.database.table("tasks").lookup(
                "pseudonym", pseudonym
            ):
                total += row["hours"]
        return total

    def check_lower_bound(self, worker_name: str, minimum: int,
                          period: Optional[int] = None) -> bool:
        period = self.current_period() if period is None else period
        pseudonym = self.workers[worker_name].pseudonym(period)
        return self.registry.check_lower_bound(period, pseudonym, minimum)

    def advance_weeks(self, weeks: float) -> None:
        self.clock.advance(weeks * WEEK_SECONDS)

    # -- the collusion surface (Separ's acknowledged limitation) --------------------

    def collusion_view(self, platform_names: Sequence[str]) -> dict:
        """Everything a coalition of platforms can pool: serial sets and
        pseudonym multisets.  Serials are unlinkable to issuance and
        pseudonyms rotate weekly, so the coalition learns per-pseudonym
        weekly totals — but under the no-collusion assumption each
        platform alone knows only its own share."""
        serials: List[str] = []
        pseudonyms: List[str] = []
        for name in platform_names:
            serials.extend(self.platforms[name].observed_serials)
            pseudonyms.extend(self.platforms[name].observed_pseudonyms)
        per_pseudonym: Dict[str, int] = {}
        for pseudonym in pseudonyms:
            per_pseudonym[pseudonym] = per_pseudonym.get(pseudonym, 0) + 1
        return {"serials": serials, "pseudonym_counts": per_pseudonym}
