"""Verify↔anchor overlap: the pipelined batch scheduler.

With durability on, every batch ends in a group-commit fsync (the
anchor marker) before the next batch may start — so the CPU sits idle
for the disk and the disk sits idle for the CPU, alternately.  The two
phases use disjoint resources: batch-prep (Schnorr RLC authentication,
engine contribution encryption via ``prepare_batch``) is pure
computation over the *incoming* updates, while the commit of the
*previous* batch is an append + fsync + optional snapshot.  fsync
releases the GIL, so even on one core a background thread overlaps the
wait with useful crypto.

:class:`PipelinedScheduler` runs batch N+1's prep concurrently with
batch N's commit, then joins before anything touches shared state:

    prep(N+1)  ∥  commit(N)      ← overlap window
    join                          ← commit N durable
    walk(N+1): WAL-log → apply    ← strictly serial
    anchor(N+1), defer commit     ← commit N+1 handed to the thread

Safety argument for the overlap window, stage by stage:

* ``AuthStage.run_batch`` only reads update bodies and does group
  arithmetic — no framework state.
* ``VerifyStage.run_batch`` builds the aggregate cache from database
  *reads* and fills the engine's prepared-ciphertext map; neither is
  consulted by the commit path (the snapshotter serializes databases,
  ledger frontier and the engine's *applied* aggregates — which only
  mutate inside the walk, after the join).
* The WAL is touched by exactly one thread at a time: the commit
  closure until the join, the walk after it.  WAL byte order therefore
  matches the serial schedule exactly, and the deferred commit's
  ledger digest was captured at anchor time (see
  ``AnchorStage.run_batch(defer_commit=True)``), so anchor markers are
  byte-identical too.

Fault injection (``crash_after``) forces the serial schedule: a
simulated crash must fire at the same WAL position it would under
:meth:`~repro.core.framework.PReVer.submit_many`, which a background
commit cannot guarantee.

Decisions, ledger roots, and WAL bytes are pinned against the serial
schedule by ``tests/test_pipelined.py``.
"""

import time
from typing import List, Sequence

from repro.core.outcome import UpdateResult
from repro.core.pipeline import UpdateContext
from repro.model.update import Update


class PipelinedScheduler:
    """Drives batches through the pipeline with commit/prep overlap.

    One scheduler per framework, created lazily by
    :meth:`~repro.core.framework.PReVer.submit_pipelined`.  The
    committer thread is also lazy: durability-off frameworks never
    start it (every deferred commit is ``None``), keeping that
    configuration thread-free and byte-identical to ``submit_many``.
    """

    def __init__(self, framework):
        self.framework = framework
        self._committer = None  # lazy single-thread pool
        self._pending = None    # Future of the in-flight commit
        metrics = framework.metrics
        self._overlaps = metrics.counter("pipeline.overlapped_commits")
        # Committer telemetry (see throughput_report's "pipelined"
        # section): how many commits were deferred, how long the
        # foreground thread stalled at joins, how long deferred commits
        # actually took in the background, and whether one is in
        # flight right now.
        self._ctr_deferred = metrics.counter("pipeline.deferred_commits")
        self._tmr_wait = metrics.timer("pipeline.committer_wait")
        self._tmr_lag = metrics.timer("pipeline.committer_lag")
        self._gauge_depth = metrics.gauge("pipeline.committer_queue_depth")

    def _pool(self):
        if self._committer is None:
            from concurrent.futures import ThreadPoolExecutor

            self._committer = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="prever-commit"
            )
        return self._committer

    def _join(self) -> None:
        """Wait for the in-flight commit; re-raise anything it raised."""
        pending, self._pending = self._pending, None
        if pending is not None:
            start = time.perf_counter()
            try:
                pending.result()
            finally:
                self._tmr_wait.record(time.perf_counter() - start)
                self._gauge_depth.set(0)

    def _run_commit(self, commit) -> None:
        """(committer thread) Run one deferred commit, timing its true
        duration — the lag a scrape of ``committer_lag`` vs
        ``committer_wait`` exposes as overlap won."""
        fw = self.framework
        prof = fw.profiler
        start = time.perf_counter()
        try:
            if prof is None:
                commit()
            else:
                with prof.stage("committer"):
                    commit()
        finally:
            self._tmr_lag.record(time.perf_counter() - start)

    def submit_batches(
        self,
        batches: Sequence[Sequence[Update]],
        executor=None,
    ) -> List[UpdateResult]:
        """Run batches through the pipeline with verify↔anchor overlap.

        Returns the concatenated per-update results, equal to
        ``submit_many`` over the same batches in order.  All commits
        are drained before returning, so the framework is as durable
        on exit as after a serial run.
        """
        fw = self.framework
        executor = executor if executor is not None else fw.executor
        if fw._crash_after is not None or fw.replication is not None:
            # Fault injection: crash points must fire at the same WAL
            # position as the serial schedule; fall back to it.  A
            # replication driver likewise owns the commit order — each
            # batch must be proposed and decided before the next may
            # touch shared state, so overlap degenerates to the serial
            # (ordered) schedule.
            results = []
            for batch in batches:
                results.extend(fw.submit_many(batch, executor=executor))
            return results
        pipeline = fw.pipeline
        results: List[UpdateResult] = []
        try:
            for batch in batches:
                batch = list(batch)
                if not batch:
                    continue
                ctxs = [UpdateContext(update) for update in batch]
                # Overlap window: this batch's prep vs the previous
                # batch's commit, running in the committer thread.
                if self._pending is not None:
                    self._overlaps.add()
                pipeline.auth.run_batch(ctxs, executor)
                pipeline.verify.run_batch(ctxs, executor)
                self._join()  # commit durable; WAL is ours again
                try:
                    for ctx in ctxs:
                        pipeline._begin(ctx)
                        pipeline._walk(ctx, fw.profiler)
                finally:
                    pipeline.verify.finish_batch(ctxs)
                commit = pipeline.anchor.run_batch(
                    ctxs, executor, defer_commit=True
                )
                if commit is not None:
                    self._ctr_deferred.add()
                    self._gauge_depth.set(1)
                    self._pending = self._pool().submit(
                        self._run_commit, commit
                    )
                results.extend(pipeline._record(ctx) for ctx in ctxs)
        finally:
            # Always leave durable — also on a mid-run exception.
            self._join()
        return results

    def drain(self) -> None:
        """Block until no commit is in flight."""
        self._join()

    def close(self) -> None:
        """Drain and stop the committer thread (idempotent)."""
        self._join()
        if self._committer is not None:
            self._committer.shutdown(wait=True)
            self._committer = None
