"""Factory functions for the canonical PReVer instantiations.

Section 5: "choosing the right set of techniques depends on three main
criteria: (1) data is private or public, (2) the database is single or
federated, and (3) the instantiation is centralized or decentralized."
These factories encode that decision matrix:

* :func:`single_private_database` — RC1: one outsourced database,
  honest-but-curious manager; engine selectable among paillier / zkp /
  enclave / dp-index / plaintext; integrity via a central ledger.
* :func:`federated_private_databases` — RC2+RC4: several mutually
  distrustful platforms; engine selectable between token (centralized)
  and mpc (decentralized); integrity via a shared ledger (the Separ
  deployment replaces it with a sharded blockchain).
* :func:`public_database` — RC3: public data, private updates; PIR
  engine; integrity via a central ledger.
"""

from typing import Callable, List, Optional, Sequence, Tuple

from repro.common.errors import PReVerError
from repro.core.federated import MPCVerifier, TokenVerifier
from repro.core.framework import PReVer
from repro.core.pir_engine import PIRVerifier
from repro.core.verifiers import (
    DPIndexVerifier,
    EnclaveVerifier,
    PaillierVerifier,
    PlaintextVerifier,
    ZKPVerifier,
)
from repro.database.engine import Database
from repro.ledger.central import CentralLedger
from repro.model.constraints import Constraint
from repro.model.policy import (
    CONFERENCE_POLICY,
    SUSTAINABILITY_POLICY,
    CROWDWORKING_POLICY,
    PrivacyPolicy,
    Visibility,
)
from repro.model.threat import ThreatModel
from repro.privacy.dp import DPIndex, LaplaceMechanism, PrivacyAccountant
from repro.privacy.pir import TwoServerXorPIR


def single_private_database(
    database: Database,
    constraints: Sequence[Constraint],
    engine: str = "paillier",
    policy: Optional[PrivacyPolicy] = None,
    dp_epsilon_total: float = 5.0,
    dp_epsilon_per_refresh: float = 0.25,
    tracer=None,
    executor=None,
    durability=None,
    profiler=None,
) -> PReVer:
    """RC1 context: outsourced single database, untrusted manager.

    ``durability`` takes a :class:`repro.durability.Durability` policy
    (default off — nothing persisted); ``profiler`` an optional
    :class:`repro.obs.profiler.SamplingProfiler` (default: built from
    ``REPRO_PROFILE``, i.e. off unless the environment opts in)."""
    constraints = list(constraints)
    if engine == "paillier":
        verifier = PaillierVerifier(constraints)
    elif engine == "zkp":
        verifier = ZKPVerifier(constraints)
    elif engine == "enclave":
        verifier = EnclaveVerifier([database], constraints)
    elif engine == "dp-index":
        accountant = PrivacyAccountant(dp_epsilon_total)
        index = DPIndex(
            low=0.0, high=1e6, bins=64,
            accountant=accountant,
            epsilon_per_refresh=dp_epsilon_per_refresh,
        )
        verifier = DPIndexVerifier([database], constraints, index)
    elif engine == "plaintext":
        verifier = PlaintextVerifier([database], constraints)
    else:
        raise PReVerError(f"unknown RC1 engine {engine!r}")
    framework = PReVer(
        databases=[database],
        engine=verifier,
        policy=policy or SUSTAINABILITY_POLICY,
        threat_model=ThreatModel.honest_but_curious_manager(),
        tracer=tracer,
        executor=executor,
        durability=durability,
        profiler=profiler,
    )
    for constraint in constraints:
        if constraint.kind.value == "internal":
            framework.register_constraint(constraint)
        else:
            framework.constraints.append(constraint)  # pre-signed upstream
    return framework


def federated_private_databases(
    databases: Sequence[Database],
    constraint: Constraint,
    engine: str = "token",
    mpc_width: int = 12,
) -> Tuple[PReVer, object]:
    """RC2 context: mutually distrustful platforms, one regulation.

    Returns (framework, verifier) — the verifier is returned as well
    because federated engines expose extra API (wallets, lower-bound
    checks, MPC stats).
    """
    if len(databases) < 2:
        raise PReVerError("a federation needs at least two databases")
    if engine == "token":
        verifier = TokenVerifier(constraint)
    elif engine == "mpc":
        verifier = MPCVerifier(databases, constraint, width=mpc_width)
    elif engine == "plaintext":
        verifier = PlaintextVerifier(databases, [constraint])
    else:
        raise PReVerError(f"unknown RC2 engine {engine!r}")
    threat = (
        ThreatModel.covert_colluding_platforms([d.name for d in databases])
        if engine != "plaintext"
        else ThreatModel.honest_but_curious_manager()
    )
    framework = PReVer(
        databases=list(databases),
        engine=verifier,
        policy=CROWDWORKING_POLICY,
        threat_model=threat,
    )
    framework.constraints.append(constraint)
    return framework, verifier


def public_database(
    database: Database,
    constraint: Constraint,
    records: Sequence[bytes],
    record_index_of: Callable,
    predicate: Callable,
    record_size: int = 64,
) -> Tuple[PReVer, PIRVerifier]:
    """RC3 context: public data, private updates, PIR verification."""
    pir = TwoServerXorPIR(records, record_size=record_size)
    verifier = PIRVerifier(
        pir=pir,
        constraint=constraint,
        record_index_of=record_index_of,
        predicate=predicate,
    )
    framework = PReVer(
        databases=[database],
        engine=verifier,
        policy=CONFERENCE_POLICY,
        threat_model=ThreatModel.honest_but_curious_manager(),
    )
    framework.constraints.append(constraint)
    return framework, verifier
