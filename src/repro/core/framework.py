"""The PReVer pipeline — Figure 2 of the paper, made executable.

    (0) authorities define constraints and regulations
    (1) a data producer sends a (signed) update
    (2) the update is verified against regulations and constraints
    (3) the verified update is incorporated into the database(s)
    (+) every decision is anchored on an append-only ledger (RC4)

The framework is engine-agnostic: plug any verifier from
``repro.core.verifiers`` / ``federated`` / ``pir_engine``.  It owns the
databases (one for the single setting, several for the federated one),
routes applies to the database named in ``update.managers`` (or the
first database), and appends an attestation record per decision to the
ledger so any participant can audit the full decision history.

The pipeline itself — the stage sequence, its tracing, timing,
durability, and batch amortizations — lives in
:mod:`repro.core.pipeline`; :class:`PReVer` holds the configuration
(databases, engine, ledger, policy, durability) and delegates both
submission paths to one shared :class:`~repro.core.pipeline.Pipeline`:

* :meth:`PReVer.submit` — one update, anchored immediately;
* :meth:`PReVer.submit_many` — a batch: constraint checks are routed
  through a table index and incremental aggregate cache, and the whole
  batch is anchored with one Merkle extension
  (:meth:`~repro.ledger.central.CentralLedger.append_batch`), while
  preserving per-entry sequence numbers, digests and inclusion proofs.

To scale past one instance, see
:class:`repro.core.sharded.ShardedPReVer`, which partitions tables
across several ``PReVer`` shards behind the same submit API.
"""

import os
from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.common.clock import SimClock, WallClock
from repro.common.errors import DurabilityError, IntegrityError, PReVerError
from repro.common.metrics import MetricsRegistry
from repro.durability.policy import Durability, SimulatedCrash
from repro.core.outcome import UpdateResult, VerificationOutcome
from repro.core.pipeline import Pipeline
from repro.core.routing import ConstraintRouter
from repro.database.engine import Database
from repro.ledger.central import CentralLedger
from repro.parallel.executors import resolve_executor
from repro.model.constraints import Constraint, ConstraintKind
from repro.obs.tracing import NOOP_TRACER, Span, Tracer
from repro.model.participants import Authority
from repro.model.policy import PrivacyPolicy, Visibility
from repro.model.threat import ThreatModel
from repro.model.update import Update, UpdateOperation


class PReVer:
    """One instantiation of the framework."""

    def __init__(
        self,
        databases: Sequence[Database],
        engine=None,
        ledger: Optional[CentralLedger] = None,
        policy: Optional[PrivacyPolicy] = None,
        threat_model: Optional[ThreatModel] = None,
        clock: Optional[SimClock] = None,
        require_signed_updates: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        max_results: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        executor=None,
        durability: Optional[Durability] = None,
        profiler=None,
        replication=None,
    ):
        if not databases:
            raise PReVerError("PReVer needs at least one database")
        self.databases = list(databases)
        self.engine = engine
        self.ledger = ledger or CentralLedger(name="prever-ledger")
        self.policy = policy or PrivacyPolicy(
            data=Visibility.PRIVATE,
            updates=Visibility.PRIVATE,
            constraints=Visibility.PUBLIC,
        )
        self.threat_model = threat_model or ThreatModel.honest_but_curious_manager()
        self.clock = clock or SimClock()
        self.require_signed_updates = require_signed_updates
        self.metrics = metrics or MetricsRegistry()
        self.constraints: List[Constraint] = []
        self._authorities: Dict[str, Authority] = {}
        # Retention: unbounded list by default; a deque(maxlen=...) when
        # capped, so long benchmark runs don't grow memory without bound.
        if max_results is not None:
            if max_results <= 0:
                raise PReVerError("max_results must be positive")
            self.results = deque(maxlen=max_results)
        else:
            self.results = []
        self._submitted_count = 0
        self._applied_count = 0
        self._wall = WallClock()
        # Hot-path metrics objects, resolved once instead of per update.
        self._ctr_updates = self.metrics.counter("pipeline.updates")
        self._ctr_accepted = self.metrics.counter("pipeline.accepted")
        self._ctr_rejected = self.metrics.counter("pipeline.rejected")
        self._stage_timers: Dict[str, object] = {}
        self._auth_views: Dict[str, object] = {}
        self._router = ConstraintRouter()
        # Tracing: the no-op tracer keeps the hot path branch-cheap;
        # when a recording tracer is attached, bind it into the layers
        # below so engine crypto and Merkle extension spans nest under
        # the per-update trace.
        self.tracer = tracer or NOOP_TRACER
        if self.tracer.enabled:
            if hasattr(self.ledger, "bind_tracer"):
                self.ledger.bind_tracer(self.tracer)
            if engine is not None and hasattr(engine, "bind_tracer"):
                engine.bind_tracer(self.tracer)
        # Execution layer for the crypto-heavy stages: serial by
        # default, a process pool when requested explicitly or via
        # REPRO_EXECUTOR / REPRO_WORKERS.  Bound into the ledger
        # (chunked Merkle leaf hashing) and the engine (e.g. parallel
        # Paillier contribution encryption); decisions and digests are
        # executor-independent by construction.
        self.executor = resolve_executor(executor)
        if self.tracer.enabled:
            self.executor.bind_tracer(self.tracer)
        # Worker telemetry: pooled executors ship each worker's metric
        # delta back with its chunk results and merge it here under
        # per-worker labels.  A no-op for in-process executors, and
        # result-invariant for pooled ones, so binding unconditionally
        # is safe.
        self.executor.bind_metrics(self.metrics)
        if hasattr(self.ledger, "bind_executor"):
            self.ledger.bind_executor(self.executor)
        if engine is not None and hasattr(engine, "bind_executor"):
            engine.bind_executor(self.executor)
        # Durability: off by default, which keeps every code path (and
        # so every decision, digest, and benchmark number) identical to
        # the pre-durability framework.  When on, the WAL opens now —
        # repairing any torn tail from a previous crash — so
        # :meth:`recover` can run before the first submit.
        self.durability = durability or Durability.off()
        self._crash_after = self.durability.crash_after
        self._wal = None
        self._snapshotter = None
        if self.durability.enabled:
            from repro.durability.snapshot import Snapshotter
            from repro.durability.wal import WriteAheadLog

            self._wal = WriteAheadLog(
                os.path.join(self.durability.directory, "wal"),
                fsync_every=self.durability.fsync_every,
                segment_max_bytes=self.durability.segment_max_bytes,
                metrics=self.metrics,
                tracer=self.tracer,
            )
            if self.durability.snapshots_enabled:
                self._snapshotter = Snapshotter(
                    os.path.join(self.durability.directory, "snapshots"),
                    snapshot_every=self.durability.snapshot_every,
                    keep=self.durability.keep_snapshots,
                    metrics=self.metrics,
                    tracer=self.tracer,
                )
        # Always-on profiling: default None (and profiler_from_env()
        # returns None unless REPRO_PROFILE is set), so the unprofiled
        # pipeline path is the exact pre-profiler code.  When present,
        # the sampler starts now and stage markers in the pipeline
        # attribute samples to authenticate/verify/anchor/....
        if profiler is None:
            from repro.obs.profiler import profiler_from_env

            profiler = profiler_from_env()
        self.profiler = profiler
        if self.profiler is not None:
            self.profiler.start()
        # Replication: the pluggable commit point (repro.consensus
        # .driver).  ``None`` is the implicit LocalDriver — the exact
        # pre-driver code path, byte-identical decisions/roots/WAL.
        # With a driver attached, submit/submit_many propose batches
        # and the pipeline replays only the driver's decided stream.
        self.replication = replication
        if self.replication is not None:
            self.replication.bind_observability(self.metrics, self.tracer)
        # The digest captured by the most recent durable anchor commit;
        # /readyz checks the live ledger still extends it.
        self._last_anchored_digest = None
        # The staged update path (repro.core.pipeline): both submit
        # APIs below are thin drivers over this one stage sequence.
        self.pipeline = Pipeline(self)
        # Overlap scheduler (repro.core.pipelined), created on first
        # submit_pipelined() so plain frameworks stay thread-free.
        self._pipelined = None

    # -- step (0): constraint registration -------------------------------

    def register_authority(self, authority: Authority) -> None:
        """Register an external authority that can issue regulations."""
        self._authorities[authority.name] = authority

    def register_constraint(self, constraint: Constraint,
                            authority: Optional[Authority] = None) -> None:
        """Regulations must be signed by a registered external authority."""
        if constraint.kind is ConstraintKind.REGULATION:
            if authority is None and constraint.authority:
                authority = self._authorities.get(constraint.authority)
            if authority is None:
                raise IntegrityError(
                    f"regulation {constraint.name!r} needs an issuing authority"
                )
            if not authority.external:
                raise IntegrityError(
                    "regulations must come from an external authority"
                )
            constraint.signature = authority.sign(constraint.body_bytes())
            constraint.authority = authority.name
            if authority.name not in self._authorities:
                self._authorities[authority.name] = authority
        self.constraints.append(constraint)
        self.invalidate_routing()

    def invalidate_routing(self) -> None:
        """Force a routing-index rebuild on the next routed check.

        Usually unnecessary: the router re-syncs itself whenever the
        ``constraints`` list's content fingerprint moves — appends,
        removals, reorders, in-place replacement of an entry, or an
        entry's ``tables`` scope changing are all detected
        automatically.  Call this only after a mutation the
        fingerprint deliberately ignores needs to drop memoized
        per-table sublists anyway (it never does today: bounds,
        predicates, and windows are re-read on every check).
        """
        self._router.rebuild(())

    def _routed_constraints(self, table: str) -> List[Constraint]:
        # ``constraints`` is a public list some callers mutate
        # directly, so re-sync the index whenever its content
        # fingerprint moved — not just its length, which misses
        # in-place replacement and ``tables``-scope changes.
        if not self._router.in_sync_with(self.constraints):
            self._router.rebuild(self.constraints)
        return self._router.route(table)

    def verify_constraint_provenance(self, constraint: Constraint) -> bool:
        """Anyone can check a regulation's authority signature."""
        if constraint.kind is not ConstraintKind.REGULATION:
            return True
        authority = self._authorities.get(constraint.authority)
        if authority is None or constraint.signature is None:
            return False
        return authority.verifier().verify(
            constraint.body_bytes(), constraint.signature
        )

    # -- steps (1)-(3): the update pipeline ------------------------------------

    def submit(self, update: Update) -> UpdateResult:
        """Run one update through the full Figure-2 pipeline."""
        return self.pipeline.run_one(update)

    def submit_many(self, updates: Sequence[Update],
                    executor=None) -> List[UpdateResult]:
        """Run a batch of updates through the pipeline, anchoring once.

        Decision-equivalent to calling :meth:`submit` per update in
        order — same accept/reject outcomes, same applied rows, same
        ledger sequence numbers, digests and inclusion proofs — but
        with three amortizations: the constraint routing index replaces
        per-update linear scans, an incremental aggregate cache
        replaces per-update table re-scans, and the ledger's Merkle
        tree is extended once per batch instead of once per decision.

        ``executor`` overrides the framework's execution layer for this
        batch only.  Under a parallel executor three crypto stages fan
        out across workers — batch Schnorr authentication, engine
        contribution encryption (via the ``prepare_batch`` hook), and
        Merkle leaf hashing — with results still byte-identical to the
        serial path.
        """
        updates = list(updates)
        if not updates:
            return []
        executor = executor if executor is not None else self.executor
        return self.pipeline.run_batch(updates, executor)

    def submit_pipelined(self, batches: Sequence[Sequence[Update]],
                         executor=None) -> List[UpdateResult]:
        """Run a sequence of batches with verify↔anchor overlap.

        Semantically ``[*submit_many(b) for b in batches]`` — same
        decisions, ledger roots, and WAL bytes — but batch N+1's
        crypto-heavy prep (batch Schnorr auth, engine contribution
        encryption) overlaps batch N's group-commit fsync in a
        background thread, hiding durability latency behind
        verification work.  See :mod:`repro.core.pipelined` for the
        schedule and its safety argument.  All commits are drained
        before returning.
        """
        if self._pipelined is None:
            from repro.core.pipelined import PipelinedScheduler

            self._pipelined = PipelinedScheduler(self)
        return self._pipelined.submit_batches(batches, executor=executor)

    def _apply(self, update: Update) -> None:
        database = self._target_database(update)
        if update.operation is UpdateOperation.INSERT:
            database.insert(update.table, update.payload, update_id=update.update_id)
        elif update.operation is UpdateOperation.MODIFY:
            database.update(
                update.table, update.key, update.payload, update_id=update.update_id
            )
        else:
            database.delete(update.table, update.key, update_id=update.update_id)

    def _target_database(self, update: Update) -> Database:
        if update.managers:
            for database in self.databases:
                if database.name == update.managers[0]:
                    return database
        return self.databases[0]

    def _anchor_payload(self, update: Update, outcome: VerificationOutcome,
                        trace: Optional[Span] = None) -> dict:
        payload = {
            "update_id": update.update_id,
            "table": update.table,
            "status": update.status.value,
            "decision": outcome.to_dict(),
            "timestamp": self.clock.now(),
        }
        # Only traced runs stamp the trace ID into the anchored record
        # (it correlates ledger/audit entries with the event log); the
        # untraced payload stays byte-identical to untraced runs, so
        # digest-equivalence checks across configurations still hold.
        if trace is not None:
            payload["trace_id"] = trace.trace_id
        return payload

    # -- durability (see repro.durability) --------------------------------

    def _wal_update_record(self, update: Update, now: float) -> dict:
        """Everything recovery needs to reconstruct and re-apply the
        update, mirroring :meth:`Update.body_bytes` plus the engine
        clock reading the decision was made under."""
        return {
            "table": update.table,
            "operation": update.operation.value,
            "payload": update.payload,
            "key": list(update.key) if update.key is not None else None,
            "visibility": update.visibility.value,
            "producers": update.producers,
            "managers": update.managers,
            "update_id": update.update_id,
            "now": now,
        }

    def _crash_point(self, name: str) -> None:
        """Fault injection: die here if the policy says so."""
        if self._crash_after == name:
            raise SimulatedCrash(name)

    def recover(self):
        """Run crash recovery (snapshot + WAL replay + root check) on
        this freshly built framework; see
        :class:`repro.durability.recovery.RecoveryManager`.  Returns
        the :class:`~repro.durability.recovery.RecoveryReport`."""
        from repro.durability.recovery import RecoveryManager

        return RecoveryManager(self).recover()

    def snapshot_now(self) -> str:
        """Checkpoint on demand (and prune WAL segments the snapshot
        covers); returns the snapshot file path."""
        if self._snapshotter is None or self._wal is None:
            raise DurabilityError(
                "snapshot_now() needs durability mode 'wal+snapshot'"
            )
        path = self._snapshotter.take(self, self._wal.last_lsn)
        self._wal.prune(self._wal.last_lsn)
        return path

    def serve(self, **config):
        """Expose this framework over the wire protocol; returns the
        started :class:`~repro.serve.server.ServerThread`.

        Keyword arguments are :class:`~repro.serve.server.ServeConfig`
        fields (``host``, ``port``, ``batch_window``, ``queue_limit``,
        ...).  The thread owns its own event loop; close it (or use it
        as a context manager) before closing the framework.  Served
        decisions and anchored roots are identical to calling
        :meth:`submit_many` in-process on the same total update order.
        """
        from repro.serve.server import ServerThread

        thread = ServerThread(self, **config)
        thread.start()
        return thread

    def close(self) -> None:
        """Drain any in-flight pipelined commit, then flush and fsync
        the WAL; call before discarding the instance (a no-op with
        durability off and no pipelined submissions)."""
        if self._pipelined is not None:
            self._pipelined.close()
        if self._wal is not None:
            self._wal.close()
        if self.profiler is not None:
            self.profiler.stop()
        if self.replication is not None:
            self.replication.close()

    def _record_result(self, update: Update, outcome: VerificationOutcome,
                       applied: bool, timings: Dict[str, float],
                       sequence: int,
                       trace_id: Optional[str] = None) -> UpdateResult:
        self._ctr_updates.add()
        (self._ctr_accepted if applied else self._ctr_rejected).add()
        timers = self._stage_timers
        for stage, elapsed in timings.items():
            timer = timers.get(stage)
            if timer is None:
                timer = timers[stage] = self.metrics.timer(
                    f"pipeline.stage.{stage}"
                )
            timer.record(elapsed)
        self._submitted_count += 1
        if applied:
            self._applied_count += 1
        if trace_id is not None and not applied:
            self.tracer.event(
                "rejection",
                trace_id=trace_id,
                update_id=update.update_id,
                reason=update.rejection_reason,
                failed_constraint=outcome.failed_constraint,
            )
        result = UpdateResult(
            update=update,
            outcome=outcome,
            applied=applied,
            ledger_sequence=sequence,
            stage_timings=timings,
            trace_id=trace_id,
        )
        self.results.append(result)
        return result

    # -- authenticated reads (RC4's query side) -----------------------------------

    def publish_state(self, table_name: str):
        """Publish an authenticated snapshot of one table, anchored on
        this framework's ledger.  Returns the
        :class:`~repro.ledger.authenticated.StateCommitment`; clients
        verify query answers against it with
        :func:`~repro.ledger.authenticated.verify_row` /
        :func:`verify_absence`."""
        from repro.ledger.authenticated import AuthenticatedTableView

        view = self._auth_views.get(table_name)
        if view is None:
            # Route the view's anchor entries onto the main ledger.
            database = self.databases[0]
            for candidate in self.databases:
                if table_name in candidate.table_names():
                    database = candidate
                    break
            view = AuthenticatedTableView(
                database.table(table_name), ledger=self.ledger
            )
            self._auth_views[table_name] = view
        return view.snapshot()

    def prove_query(self, table_name: str, key):
        """A manager answers a keyed query with proof: returns either
        ("row", RowProof) or ("absent", AbsenceProof) against the last
        published commitment."""
        if table_name not in self._auth_views:
            raise IntegrityError(
                f"publish_state({table_name!r}) before proving queries"
            )
        view = self._auth_views[table_name]
        try:
            return "row", view.prove_row(key)
        except IntegrityError:
            return "absent", view.prove_absent(key)

    # -- ops probes & audit trails (served by repro.obs.server) -----------

    def health_report(self) -> dict:
        """Liveness checks behind the ops server's ``/healthz``.

        Three checks, each ``{"ok": bool, ...detail}``:

        * ``ledger`` — the Merkle ledger is reachable and can produce a
          digest;
        * ``wal`` — with durability on, the write-ahead log still holds
          an open handle on a writable directory (closed or torn-down
          WALs flip this, and with it the whole probe, to unhealthy);
        * ``executor`` — the execution layer can still accept work (a
          broken process pool flips this).

        The report's top-level ``ok`` is the conjunction; the ops
        server maps it to HTTP 200/503.
        """
        checks: Dict[str, dict] = {}
        try:
            digest = self.ledger.digest()
            checks["ledger"] = {
                "ok": True, "size": digest.size, "root": digest.root.hex(),
            }
        except Exception as exc:
            checks["ledger"] = {"ok": False, "error": repr(exc)}
        if self._wal is not None:
            checks["wal"] = {
                "ok": self._wal.writable(), "last_lsn": self._wal.last_lsn,
            }
        else:
            checks["wal"] = {"ok": True, "enabled": False}
        checks["executor"] = {
            "ok": self.executor.healthy(), **self.executor.describe(),
        }
        return {
            "ok": all(c["ok"] for c in checks.values()),
            "checks": checks,
        }

    def readiness_report(self) -> dict:
        """Readiness checks behind ``/readyz``: everything
        :meth:`health_report` checks, plus anchored-root consistency —
        the live ledger's prefix root at the last durably anchored size
        must still equal the root the anchor recorded.  A mismatch
        means the in-memory ledger diverged from what was committed,
        and the instance must not serve until :meth:`recover` runs.
        """
        report = self.health_report()
        anchored = self._last_anchored_digest
        if anchored is None:
            check = {"ok": True, "anchored": False}
        else:
            try:
                live_root = self.ledger.digest(anchored.size).root
                check = {
                    "ok": live_root == anchored.root,
                    "anchored": True,
                    "size": anchored.size,
                    "root": anchored.root.hex(),
                }
            except Exception as exc:
                check = {"ok": False, "error": repr(exc)}
        report["checks"]["anchored_root"] = check
        report["ok"] = report["ok"] and check["ok"]
        return report

    def verification_trail(self, trace_id: str) -> Optional[dict]:
        """One traced update's full verification trail, re-verifiable
        offline.

        Scans the ledger for the anchored decision stamped with
        ``trace_id`` (only traced runs stamp it — see
        :meth:`_anchor_payload`) and returns the anchored payload, the
        ledger inclusion proof against the last *anchored* digest
        (falling back to the live digest when the entry postdates it),
        a server-side ``verified`` verdict, and every correlated
        event-log record.  ``None`` when no anchored entry carries the
        trace ID.  Served as ``/trace/<trace_id>``; see
        ``examples/telemetry_demo.py`` for the client-side
        re-verification.
        """
        entry = None
        for candidate in self.ledger.entries():
            payload = candidate.payload
            if isinstance(payload, dict) and payload.get("trace_id") == trace_id:
                entry = candidate
                break
        if entry is None:
            return None
        digest = self._last_anchored_digest
        if digest is None or digest.size <= entry.sequence:
            digest = self.ledger.digest()
        proof = self.ledger.prove_inclusion(entry.sequence, size=digest.size)
        verified = CentralLedger.verify_entry(digest, entry, proof)
        events = []
        for sink in getattr(self.tracer, "sinks", []):
            if hasattr(sink, "for_trace"):
                events.extend(sink.for_trace(trace_id))
        return {
            "trace_id": trace_id,
            "sequence": entry.sequence,
            "payload": entry.payload,
            "digest": {"size": digest.size, "root": digest.root.hex()},
            "proof": {
                "leaf_index": proof.leaf_index,
                "tree_size": proof.tree_size,
                "path": [node.hex() for node in proof.path],
            },
            "verified": verified,
            "events": events,
        }

    # -- reporting ---------------------------------------------------------------

    def acceptance_rate(self) -> float:
        """Applied / submitted over the whole run.  Computed from
        running counters, so it stays correct when ``max_results``
        evicts old :class:`UpdateResult` records."""
        if not self._submitted_count:
            return 0.0
        return self._applied_count / self._submitted_count

    def throughput_report(self) -> dict:
        """Per-stage timing summary and end-to-end updates/sec."""
        return self.metrics.throughput_report(
            updates_counter="pipeline.updates", stage_prefix="pipeline.stage."
        )

    def decision_history(self) -> List[dict]:
        """Every anchored decision payload, in ledger order."""
        return [entry.payload for entry in self.ledger.entries()]
