"""The PReVer pipeline — Figure 2 of the paper, made executable.

    (0) authorities define constraints and regulations
    (1) a data producer sends a (signed) update
    (2) the update is verified against regulations and constraints
    (3) the verified update is incorporated into the database(s)
    (+) every decision is anchored on an append-only ledger (RC4)

The framework is engine-agnostic: plug any verifier from
``repro.core.verifiers`` / ``federated`` / ``pir_engine``.  It owns the
databases (one for the single setting, several for the federated one),
routes applies to the database named in ``update.managers`` (or the
first database), and appends an attestation record per decision to the
ledger so any participant can audit the full decision history.
"""

from typing import Dict, List, Optional, Sequence

from repro.common.clock import SimClock, WallClock
from repro.common.errors import IntegrityError, PReVerError
from repro.common.metrics import MetricsRegistry
from repro.core.outcome import UpdateResult, VerificationOutcome
from repro.database.engine import Database
from repro.ledger.central import CentralLedger
from repro.model.constraints import Constraint, ConstraintKind
from repro.model.participants import Authority
from repro.model.policy import PrivacyPolicy, Visibility
from repro.model.threat import ThreatModel
from repro.model.update import Update, UpdateOperation


class PReVer:
    """One instantiation of the framework."""

    def __init__(
        self,
        databases: Sequence[Database],
        engine=None,
        ledger: Optional[CentralLedger] = None,
        policy: Optional[PrivacyPolicy] = None,
        threat_model: Optional[ThreatModel] = None,
        clock: Optional[SimClock] = None,
        require_signed_updates: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if not databases:
            raise PReVerError("PReVer needs at least one database")
        self.databases = list(databases)
        self.engine = engine
        self.ledger = ledger or CentralLedger(name="prever-ledger")
        self.policy = policy or PrivacyPolicy(
            data=Visibility.PRIVATE,
            updates=Visibility.PRIVATE,
            constraints=Visibility.PUBLIC,
        )
        self.threat_model = threat_model or ThreatModel.honest_but_curious_manager()
        self.clock = clock or SimClock()
        self.require_signed_updates = require_signed_updates
        self.metrics = metrics or MetricsRegistry()
        self.constraints: List[Constraint] = []
        self._authorities: Dict[str, Authority] = {}
        self.results: List[UpdateResult] = []
        self._wall = WallClock()
        self._auth_views: Dict[str, object] = {}

    # -- step (0): constraint registration -------------------------------

    def register_authority(self, authority: Authority) -> None:
        self._authorities[authority.name] = authority

    def register_constraint(self, constraint: Constraint,
                            authority: Optional[Authority] = None) -> None:
        """Regulations must be signed by a registered external authority."""
        if constraint.kind is ConstraintKind.REGULATION:
            if authority is None and constraint.authority:
                authority = self._authorities.get(constraint.authority)
            if authority is None:
                raise IntegrityError(
                    f"regulation {constraint.name!r} needs an issuing authority"
                )
            if not authority.external:
                raise IntegrityError(
                    "regulations must come from an external authority"
                )
            constraint.signature = authority.sign(constraint.body_bytes())
            constraint.authority = authority.name
            if authority.name not in self._authorities:
                self._authorities[authority.name] = authority
        self.constraints.append(constraint)

    def verify_constraint_provenance(self, constraint: Constraint) -> bool:
        """Anyone can check a regulation's authority signature."""
        if constraint.kind is not ConstraintKind.REGULATION:
            return True
        authority = self._authorities.get(constraint.authority)
        if authority is None or constraint.signature is None:
            return False
        return authority.verifier().verify(
            constraint.body_bytes(), constraint.signature
        )

    # -- steps (1)-(3): the update pipeline ------------------------------------

    def submit(self, update: Update) -> UpdateResult:
        """Run one update through the full Figure-2 pipeline."""
        timings: Dict[str, float] = {}
        now = self.clock.now()

        # (1) provenance: signature check on the incoming update.
        start = self._wall.now()
        if self.require_signed_updates:
            if update.signature is None or update.signer_public_key is None:
                return self._reject(update, "unsigned update", timings)
            from repro.crypto.group import SchnorrGroup
            from repro.crypto.signatures import SchnorrVerifier

            verifier = SchnorrVerifier(
                SchnorrGroup.default(), update.signer_public_key
            )
            if not verifier.verify(update.body_bytes(), update.signature):
                return self._reject(update, "bad signature", timings)
        timings["authenticate"] = self._wall.now() - start

        # (2) verification against constraints/regulations.
        start = self._wall.now()
        if self.engine is not None:
            outcome = self.engine.verify(update, now)
        else:
            outcome = self._verify_plaintext(update, now)
        timings["verify"] = self._wall.now() - start
        if not outcome.accepted:
            update.mark_rejected(outcome.failed_constraint or "constraint")
            return self._finish(update, outcome, applied=False, timings=timings)
        update.mark_verified()

        # (3) incorporation into the target database.  Apply failures
        # (duplicate key, missing row) reject the update rather than
        # crash the pipeline; the rejection is anchored like any other.
        start = self._wall.now()
        from repro.database.schema import SchemaError
        from repro.database.table import TableError

        try:
            self._apply(update)
        except (TableError, SchemaError) as exc:
            timings["apply"] = self._wall.now() - start
            update.mark_rejected(f"apply failed: {exc}")
            failed = VerificationOutcome(
                accepted=False, engine=outcome.engine,
                constraint_ids=outcome.constraint_ids,
                failed_constraint="apply-failure",
            )
            return self._finish(update, failed, applied=False,
                                timings=timings)
        update.mark_applied()
        timings["apply"] = self._wall.now() - start

        return self._finish(update, outcome, applied=True, timings=timings)

    def _verify_plaintext(self, update: Update, now: float) -> VerificationOutcome:
        for constraint in self.constraints:
            if constraint.tables and update.table not in constraint.tables:
                continue
            if not constraint.check(self.databases, update, now):
                return VerificationOutcome(
                    accepted=False,
                    engine="framework-plaintext",
                    failed_constraint=constraint.constraint_id,
                )
        return VerificationOutcome(accepted=True, engine="framework-plaintext")

    def _apply(self, update: Update) -> None:
        database = self._target_database(update)
        if update.operation is UpdateOperation.INSERT:
            database.insert(update.table, update.payload, update_id=update.update_id)
        elif update.operation is UpdateOperation.MODIFY:
            database.update(
                update.table, update.key, update.payload, update_id=update.update_id
            )
        else:
            database.delete(update.table, update.key, update_id=update.update_id)

    def _target_database(self, update: Update) -> Database:
        if update.managers:
            for database in self.databases:
                if database.name == update.managers[0]:
                    return database
        return self.databases[0]

    def _reject(self, update: Update, reason: str, timings) -> UpdateResult:
        update.mark_rejected(reason)
        outcome = VerificationOutcome(
            accepted=False, engine="framework-auth", failed_constraint=reason
        )
        return self._finish(update, outcome, applied=False, timings=timings)

    def _finish(self, update: Update, outcome: VerificationOutcome,
                applied: bool, timings: Dict[str, float]) -> UpdateResult:
        start = self._wall.now()
        entry = self.ledger.append(
            {
                "update_id": update.update_id,
                "table": update.table,
                "status": update.status.value,
                "decision": outcome.to_dict(),
                "timestamp": self.clock.now(),
            }
        )
        timings["anchor"] = self._wall.now() - start
        self.metrics.counter("pipeline.updates").add()
        self.metrics.counter(
            "pipeline.accepted" if applied else "pipeline.rejected"
        ).add()
        result = UpdateResult(
            update=update,
            outcome=outcome,
            applied=applied,
            ledger_sequence=entry.sequence,
            stage_timings=timings,
        )
        self.results.append(result)
        return result

    # -- authenticated reads (RC4's query side) -----------------------------------

    def publish_state(self, table_name: str):
        """Publish an authenticated snapshot of one table, anchored on
        this framework's ledger.  Returns the
        :class:`~repro.ledger.authenticated.StateCommitment`; clients
        verify query answers against it with
        :func:`~repro.ledger.authenticated.verify_row` /
        :func:`verify_absence`."""
        from repro.ledger.authenticated import AuthenticatedTableView

        view = self._auth_views.get(table_name)
        if view is None:
            # Route the view's anchor entries onto the main ledger.
            database = self.databases[0]
            for candidate in self.databases:
                if table_name in candidate.table_names():
                    database = candidate
                    break
            view = AuthenticatedTableView(
                database.table(table_name), ledger=self.ledger
            )
            self._auth_views[table_name] = view
        return view.snapshot()

    def prove_query(self, table_name: str, key):
        """A manager answers a keyed query with proof: returns either
        ("row", RowProof) or ("absent", AbsenceProof) against the last
        published commitment."""
        if table_name not in self._auth_views:
            raise IntegrityError(
                f"publish_state({table_name!r}) before proving queries"
            )
        view = self._auth_views[table_name]
        try:
            return "row", view.prove_row(key)
        except IntegrityError:
            return "absent", view.prove_absent(key)

    # -- reporting ---------------------------------------------------------------

    def acceptance_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.applied) / len(self.results)

    def decision_history(self) -> List[dict]:
        return [entry.payload for entry in self.ledger.entries()]
