"""The PReVer pipeline — Figure 2 of the paper, made executable.

    (0) authorities define constraints and regulations
    (1) a data producer sends a (signed) update
    (2) the update is verified against regulations and constraints
    (3) the verified update is incorporated into the database(s)
    (+) every decision is anchored on an append-only ledger (RC4)

The framework is engine-agnostic: plug any verifier from
``repro.core.verifiers`` / ``federated`` / ``pir_engine``.  It owns the
databases (one for the single setting, several for the federated one),
routes applies to the database named in ``update.managers`` (or the
first database), and appends an attestation record per decision to the
ledger so any participant can audit the full decision history.

Two submission paths share the same per-update semantics:

* :meth:`PReVer.submit` — one update, anchored immediately;
* :meth:`PReVer.submit_many` — a batch: constraint checks are routed
  through a table index and incremental aggregate cache, and the whole
  batch is anchored with one Merkle extension
  (:meth:`~repro.ledger.central.CentralLedger.append_batch`), while
  preserving per-entry sequence numbers, digests and inclusion proofs.
"""

import os
from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.common.clock import SimClock, WallClock
from repro.common.errors import DurabilityError, IntegrityError, PReVerError
from repro.common.metrics import MetricsRegistry
from repro.durability.policy import Durability, SimulatedCrash
from repro.core.outcome import UpdateResult, VerificationOutcome
from repro.core.routing import BatchAggregateCache, ConstraintRouter, check_constraint
from repro.database.engine import Database
from repro.database.schema import SchemaError
from repro.database.table import TableError
from repro.crypto.group import SchnorrGroup
from repro.crypto.signatures import cached_verifier, verify_batch
from repro.ledger.central import CentralLedger
from repro.parallel.executors import resolve_executor
from repro.model.constraints import Constraint, ConstraintKind
from repro.obs.tracing import NOOP_TRACER, Span, Tracer
from repro.model.participants import Authority
from repro.model.policy import PrivacyPolicy, Visibility
from repro.model.threat import ThreatModel
from repro.model.update import Update, UpdateOperation


# Sentinel distinguishing "provenance not yet checked" from a
# precomputed verdict of None (= authenticated) in ``_process_one``.
_UNCHECKED = object()


class PReVer:
    """One instantiation of the framework."""

    def __init__(
        self,
        databases: Sequence[Database],
        engine=None,
        ledger: Optional[CentralLedger] = None,
        policy: Optional[PrivacyPolicy] = None,
        threat_model: Optional[ThreatModel] = None,
        clock: Optional[SimClock] = None,
        require_signed_updates: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        max_results: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        executor=None,
        durability: Optional[Durability] = None,
    ):
        if not databases:
            raise PReVerError("PReVer needs at least one database")
        self.databases = list(databases)
        self.engine = engine
        self.ledger = ledger or CentralLedger(name="prever-ledger")
        self.policy = policy or PrivacyPolicy(
            data=Visibility.PRIVATE,
            updates=Visibility.PRIVATE,
            constraints=Visibility.PUBLIC,
        )
        self.threat_model = threat_model or ThreatModel.honest_but_curious_manager()
        self.clock = clock or SimClock()
        self.require_signed_updates = require_signed_updates
        self.metrics = metrics or MetricsRegistry()
        self.constraints: List[Constraint] = []
        self._authorities: Dict[str, Authority] = {}
        # Retention: unbounded list by default; a deque(maxlen=...) when
        # capped, so long benchmark runs don't grow memory without bound.
        if max_results is not None:
            if max_results <= 0:
                raise PReVerError("max_results must be positive")
            self.results = deque(maxlen=max_results)
        else:
            self.results = []
        self._submitted_count = 0
        self._applied_count = 0
        self._wall = WallClock()
        # Hot-path metrics objects, resolved once instead of per update.
        self._ctr_updates = self.metrics.counter("pipeline.updates")
        self._ctr_accepted = self.metrics.counter("pipeline.accepted")
        self._ctr_rejected = self.metrics.counter("pipeline.rejected")
        self._stage_timers: Dict[str, object] = {}
        self._auth_views: Dict[str, object] = {}
        self._router = ConstraintRouter()
        # Tracing: the no-op tracer keeps the hot path branch-cheap;
        # when a recording tracer is attached, bind it into the layers
        # below so engine crypto and Merkle extension spans nest under
        # the per-update trace.
        self.tracer = tracer or NOOP_TRACER
        if self.tracer.enabled:
            if hasattr(self.ledger, "bind_tracer"):
                self.ledger.bind_tracer(self.tracer)
            if engine is not None and hasattr(engine, "bind_tracer"):
                engine.bind_tracer(self.tracer)
        # Execution layer for the crypto-heavy stages: serial by
        # default, a process pool when requested explicitly or via
        # REPRO_EXECUTOR / REPRO_WORKERS.  Bound into the ledger
        # (chunked Merkle leaf hashing) and the engine (e.g. parallel
        # Paillier contribution encryption); decisions and digests are
        # executor-independent by construction.
        self.executor = resolve_executor(executor)
        if self.tracer.enabled:
            self.executor.bind_tracer(self.tracer)
        if hasattr(self.ledger, "bind_executor"):
            self.ledger.bind_executor(self.executor)
        if engine is not None and hasattr(engine, "bind_executor"):
            engine.bind_executor(self.executor)
        # Durability: off by default, which keeps every code path (and
        # so every decision, digest, and benchmark number) identical to
        # the pre-durability framework.  When on, the WAL opens now —
        # repairing any torn tail from a previous crash — so
        # :meth:`recover` can run before the first submit.
        self.durability = durability or Durability.off()
        self._crash_after = self.durability.crash_after
        self._wal = None
        self._snapshotter = None
        if self.durability.enabled:
            from repro.durability.snapshot import Snapshotter
            from repro.durability.wal import WriteAheadLog

            self._wal = WriteAheadLog(
                os.path.join(self.durability.directory, "wal"),
                fsync_every=self.durability.fsync_every,
                segment_max_bytes=self.durability.segment_max_bytes,
                metrics=self.metrics,
                tracer=self.tracer,
            )
            if self.durability.snapshots_enabled:
                self._snapshotter = Snapshotter(
                    os.path.join(self.durability.directory, "snapshots"),
                    snapshot_every=self.durability.snapshot_every,
                    keep=self.durability.keep_snapshots,
                    metrics=self.metrics,
                    tracer=self.tracer,
                )

    # -- step (0): constraint registration -------------------------------

    def register_authority(self, authority: Authority) -> None:
        """Register an external authority that can issue regulations."""
        self._authorities[authority.name] = authority

    def register_constraint(self, constraint: Constraint,
                            authority: Optional[Authority] = None) -> None:
        """Regulations must be signed by a registered external authority."""
        if constraint.kind is ConstraintKind.REGULATION:
            if authority is None and constraint.authority:
                authority = self._authorities.get(constraint.authority)
            if authority is None:
                raise IntegrityError(
                    f"regulation {constraint.name!r} needs an issuing authority"
                )
            if not authority.external:
                raise IntegrityError(
                    "regulations must come from an external authority"
                )
            constraint.signature = authority.sign(constraint.body_bytes())
            constraint.authority = authority.name
            if authority.name not in self._authorities:
                self._authorities[authority.name] = authority
        self.constraints.append(constraint)
        self.invalidate_routing()

    def invalidate_routing(self) -> None:
        """Force a routing-index rebuild (call after mutating
        ``constraints`` directly, e.g. changing a ``tables`` scope)."""
        self._router.rebuild(())

    def _routed_constraints(self, table: str) -> List[Constraint]:
        # ``constraints`` is a public list some callers append to
        # directly, so re-sync the index whenever the list size moved.
        if len(self._router) != len(self.constraints):
            self._router.rebuild(self.constraints)
        return self._router.route(table)

    def verify_constraint_provenance(self, constraint: Constraint) -> bool:
        """Anyone can check a regulation's authority signature."""
        if constraint.kind is not ConstraintKind.REGULATION:
            return True
        authority = self._authorities.get(constraint.authority)
        if authority is None or constraint.signature is None:
            return False
        return authority.verifier().verify(
            constraint.body_bytes(), constraint.signature
        )

    # -- steps (1)-(3): the update pipeline ------------------------------------

    def submit(self, update: Update) -> UpdateResult:
        """Run one update through the full Figure-2 pipeline."""
        trace = self._start_update_trace(update) if self.tracer.enabled else None
        update, outcome, applied, timings = self._process_one(update, trace=trace)
        return self._finish(update, outcome, applied=applied, timings=timings,
                            trace=trace)

    def submit_many(self, updates: Sequence[Update],
                    executor=None) -> List[UpdateResult]:
        """Run a batch of updates through the pipeline, anchoring once.

        Decision-equivalent to calling :meth:`submit` per update in
        order — same accept/reject outcomes, same applied rows, same
        ledger sequence numbers, digests and inclusion proofs — but
        with three amortizations: the constraint routing index replaces
        per-update linear scans, an incremental aggregate cache
        replaces per-update table re-scans, and the ledger's Merkle
        tree is extended once per batch instead of once per decision.

        ``executor`` overrides the framework's execution layer for this
        batch only.  Under a parallel executor three crypto stages fan
        out across workers — batch Schnorr authentication, engine
        contribution encryption (via the ``prepare_batch`` hook), and
        Merkle leaf hashing — with results still byte-identical to the
        serial path.
        """
        updates = list(updates)
        if not updates:
            return []
        executor = executor if executor is not None else self.executor
        engine = self.engine
        tracing = self.tracer.enabled
        # Batched provenance: verify all signatures up front with the
        # random-linear-combination batch check (workers pinpoint bad
        # signatures on failure).  Failure reasons match the serial
        # per-update path exactly.
        auth_failures: Optional[List[Optional[str]]] = None
        if self.require_signed_updates and len(updates) > 1:
            with self.metrics.timed("pipeline.auth_batch"):
                auth_failures = self._batch_authenticate(updates, executor)
        # The framework-level cache backs ``_verify_plaintext``; engines
        # maintain their own via begin_batch/note_applied, so skip the
        # duplicate bookkeeping when one is plugged in.
        cache = BatchAggregateCache(self.databases) if engine is None else None
        if engine is not None and hasattr(engine, "begin_batch"):
            engine.begin_batch(len(updates))
        if engine is not None and hasattr(engine, "prepare_batch"):
            # Timed separately: prepared work happens before the
            # per-update stage timers, so stage totals alone would
            # overstate the verify stage's parallel speedup.
            with self.metrics.timed("pipeline.prepare_batch"):
                engine.prepare_batch(updates, executor=executor)
        pending = []
        traces: List[Optional[Span]] = []
        try:
            for index, update in enumerate(updates):
                trace = self._start_update_trace(update) if tracing else None
                traces.append(trace)
                pending.append(self._process_one(
                    update, batch_cache=cache, trace=trace,
                    auth_failure=(auth_failures[index]
                                  if auth_failures is not None else _UNCHECKED),
                ))
        finally:
            if engine is not None and hasattr(engine, "end_batch"):
                engine.end_batch()

        # Amortized anchoring: one Merkle extension for the whole batch.
        start = self._wall.now()
        payloads = [self._anchor_payload(u, o, trace=t)
                    for (u, o, _, _), t in zip(pending, traces)]
        entries = self.ledger.append_batch(payloads, executor=executor)
        anchor_end = self._wall.now()
        anchor_elapsed = anchor_end - start
        self.metrics.timer("pipeline.anchor_batch").record(anchor_elapsed)
        anchor_share = anchor_elapsed / len(pending)
        batch_digest = self.ledger.digest() if tracing else None
        if self._wal is not None:
            self._durable_anchor(payloads, digest=batch_digest)

        results = []
        for (update, outcome, applied, timings), trace, entry in zip(
            pending, traces, entries
        ):
            timings["anchor"] = anchor_share
            if trace is not None:
                self._close_anchor_span(
                    trace, update, entry, batch_digest,
                    start=start, end=anchor_end, applied=applied, batched=True,
                )
            results.append(self._record_result(
                update, outcome, applied=applied, timings=timings,
                sequence=entry.sequence,
                trace_id=trace.trace_id if trace is not None else None,
            ))
        return results

    def _batch_authenticate(self, updates: Sequence[Update],
                            executor) -> List[Optional[str]]:
        """Provenance for a whole batch: one failure reason (or None)
        per update, equal to what the per-update check would produce.
        Signed updates go through :func:`verify_batch`, which fans the
        work across executor workers."""
        failures: List[Optional[str]] = [None] * len(updates)
        items, positions = [], []
        for index, update in enumerate(updates):
            if update.signature is None or update.signer_public_key is None:
                failures[index] = "unsigned update"
            else:
                items.append((update.signer_public_key, update.body_bytes(),
                              update.signature))
                positions.append(index)
        if items:
            verdicts = verify_batch(items, group=SchnorrGroup.default(),
                                    executor=executor)
            for position, ok in zip(positions, verdicts):
                if not ok:
                    failures[position] = "bad signature"
        return failures

    def _process_one(self, update: Update, batch_cache=None,
                     trace: Optional[Span] = None,
                     auth_failure=_UNCHECKED):
        """Authenticate, verify, and apply one update (no anchoring).

        Returns ``(update, outcome, applied, timings)``; the caller
        anchors — immediately (:meth:`submit`) or per batch
        (:meth:`submit_many`).  When ``trace`` is set, each stage gets
        a child span (stages not reached end with status ``skipped``)
        using the wall readings the stage timers already take, so
        tracing adds no clock reads to the hot path.

        ``auth_failure`` carries a precomputed provenance verdict from
        :meth:`_batch_authenticate` (None = authenticated, a string =
        the rejection reason); the sentinel default means "not
        precomputed, check here".
        """
        timings: Dict[str, float] = {}
        now = self.clock.now()
        wall = self._wall.now  # chained timestamps: each reading both
        start = wall()         # ends one stage and starts the next

        # (1) provenance: signature check on the incoming update.
        if auth_failure is _UNCHECKED:
            auth_failure = None
            if self.require_signed_updates:
                if update.signature is None or update.signer_public_key is None:
                    auth_failure = "unsigned update"
                else:
                    verifier = cached_verifier(
                        SchnorrGroup.default(), update.signer_public_key
                    )
                    if not verifier.verify(update.body_bytes(),
                                           update.signature):
                        auth_failure = "bad signature"
        t_auth = wall()
        timings["authenticate"] = t_auth - start
        if trace is not None:
            vspan = trace.child("validate", start_time=start)
            if auth_failure is not None:
                vspan.set_status("error").set_attribute("reason", auth_failure)
            vspan.end(t_auth)
        if auth_failure is not None:
            if trace is not None:
                self._skip_spans(trace, ("verify", "apply"), at=t_auth)
            return self._rejected(update, auth_failure, timings)

        # (2) verification against constraints/regulations.
        verify_span = None
        if trace is not None:
            verify_span = trace.child("verify", start_time=t_auth)
            if self.engine is not None and hasattr(self.engine, "bind_span"):
                # Engine crypto spans (Paillier encrypt/decrypt) nest here.
                self.engine.bind_span(verify_span)
        if self.engine is not None:
            outcome = self.engine.verify(update, now)
        else:
            outcome = self._verify_plaintext(update, now, cache=batch_cache)
        t_verify = wall()
        timings["verify"] = t_verify - t_auth
        if verify_span is not None:
            verify_span.set_attribute("engine", outcome.engine)
            if not outcome.accepted:
                verify_span.set_status("error")
                verify_span.set_attribute(
                    "failed_constraint", outcome.failed_constraint
                )
            verify_span.end(t_verify)
            self.tracer.event(
                "constraint_verdict",
                timestamp=t_verify,
                trace_id=trace.trace_id,
                update_id=update.update_id,
                accepted=outcome.accepted,
                constraint_ids=list(outcome.constraint_ids),
                failed_constraint=outcome.failed_constraint,
            )
        if not outcome.accepted:
            update.mark_rejected(outcome.failed_constraint or "constraint")
            if trace is not None:
                self._skip_spans(trace, ("apply",), at=t_verify)
            return update, outcome, False, timings

        # (3) incorporation into the target database.  Apply failures
        # (duplicate key, missing row) reject the update rather than
        # crash the pipeline; the rejection is anchored like any other.
        update.mark_verified()
        # Log-before-apply: the WAL record must exist before the
        # database mutates, so a crash mid-apply can replay (or drop)
        # the update but never half-remember it.
        if self._wal is not None:
            self._wal.append_update(self._wal_update_record(update, now))
            if self._crash_after is not None:
                self._crash_point("wal_update")
        try:
            self._apply(update)
        except (TableError, SchemaError) as exc:
            t_apply = wall()
            timings["apply"] = t_apply - t_verify
            if trace is not None:
                trace.child("apply", start_time=t_verify) \
                    .set_status("error") \
                    .set_attribute("reason", str(exc)) \
                    .end(t_apply)
            update.mark_rejected(f"apply failed: {exc}")
            failed = VerificationOutcome(
                accepted=False, engine=outcome.engine,
                constraint_ids=outcome.constraint_ids,
                failed_constraint="apply-failure",
            )
            return update, failed, False, timings
        update.mark_applied()
        t_apply = wall()
        timings["apply"] = t_apply - t_verify
        if trace is not None:
            trace.child("apply", start_time=t_verify).end(t_apply)
        if batch_cache is not None:
            batch_cache.note_applied(update)
        if self.engine is not None and hasattr(self.engine, "note_applied"):
            self.engine.note_applied(update, now)
        if self._crash_after is not None:
            self._crash_point("apply")
        return update, outcome, True, timings

    def _start_update_trace(self, update: Update) -> Span:
        return self.tracer.start_trace(
            "update",
            start_time=self._wall.now(),
            attributes={
                "update_id": update.update_id,
                "table": update.table,
                "operation": update.operation.value,
            },
        )

    def _skip_spans(self, trace: Span, names, at: float) -> None:
        """Record unreached stages so every trace shows the full
        validate → verify → apply → anchor shape."""
        for name in names:
            trace.child(name, start_time=at).set_status("skipped").end(at)

    def _close_anchor_span(self, trace: Span, update: Update, entry,
                           digest, start: float, end: float,
                           applied: bool, batched: bool) -> None:
        span = trace.child("anchor", start_time=start)
        span.set_attribute("sequence", entry.sequence)
        if batched:
            span.set_attribute("batched", True)
        span.end(end)
        self.tracer.event(
            "ledger_anchor",
            timestamp=end,
            trace_id=trace.trace_id,
            update_id=update.update_id,
            sequence=entry.sequence,
            digest=digest.root.hex(),
            ledger_size=digest.size,
        )
        trace.set_attribute("applied", applied)
        trace.set_status("ok" if applied else "error")
        trace.end(end)

    def _rejected(self, update: Update, reason: str, timings):
        update.mark_rejected(reason)
        outcome = VerificationOutcome(
            accepted=False, engine="framework-auth", failed_constraint=reason
        )
        return update, outcome, False, timings

    def _verify_plaintext(self, update: Update, now: float,
                          cache=None) -> VerificationOutcome:
        for constraint in self._routed_constraints(update.table):
            if not check_constraint(constraint, self.databases, update, now,
                                    cache=cache):
                return VerificationOutcome(
                    accepted=False,
                    engine="framework-plaintext",
                    failed_constraint=constraint.constraint_id,
                )
        return VerificationOutcome(accepted=True, engine="framework-plaintext")

    def _apply(self, update: Update) -> None:
        database = self._target_database(update)
        if update.operation is UpdateOperation.INSERT:
            database.insert(update.table, update.payload, update_id=update.update_id)
        elif update.operation is UpdateOperation.MODIFY:
            database.update(
                update.table, update.key, update.payload, update_id=update.update_id
            )
        else:
            database.delete(update.table, update.key, update_id=update.update_id)

    def _target_database(self, update: Update) -> Database:
        if update.managers:
            for database in self.databases:
                if database.name == update.managers[0]:
                    return database
        return self.databases[0]

    def _anchor_payload(self, update: Update, outcome: VerificationOutcome,
                        trace: Optional[Span] = None) -> dict:
        payload = {
            "update_id": update.update_id,
            "table": update.table,
            "status": update.status.value,
            "decision": outcome.to_dict(),
            "timestamp": self.clock.now(),
        }
        # Only traced runs stamp the trace ID into the anchored record
        # (it correlates ledger/audit entries with the event log); the
        # untraced payload stays byte-identical to untraced runs, so
        # digest-equivalence checks across configurations still hold.
        if trace is not None:
            payload["trace_id"] = trace.trace_id
        return payload

    # -- durability (see repro.durability) --------------------------------

    def _wal_update_record(self, update: Update, now: float) -> dict:
        """Everything recovery needs to reconstruct and re-apply the
        update, mirroring :meth:`Update.body_bytes` plus the engine
        clock reading the decision was made under."""
        return {
            "table": update.table,
            "operation": update.operation.value,
            "payload": update.payload,
            "key": list(update.key) if update.key is not None else None,
            "visibility": update.visibility.value,
            "producers": update.producers,
            "managers": update.managers,
            "update_id": update.update_id,
            "now": now,
        }

    def _durable_anchor(self, payloads: List[dict],
                        digest=None) -> None:
        """Write the batch's anchor marker (the group-commit fsync that
        makes the whole batch durable), then maybe checkpoint."""
        if self._crash_after is not None:
            self._crash_point("anchor_append")
        digest = digest if digest is not None else self.ledger.digest()
        self._wal.append_anchor(
            {
                "payloads": payloads,
                "size": digest.size,
                "root": digest.root.hex(),
            },
            sync=self.durability.sync_anchors,
        )
        if self._crash_after is not None:
            self._crash_point("anchor_marker")
        if self._snapshotter is not None:
            taken = self._snapshotter.maybe_take(
                self, self._wal.last_lsn, len(payloads)
            )
            if taken is not None:
                self._wal.prune(self._wal.last_lsn)

    def _crash_point(self, name: str) -> None:
        """Fault injection: die here if the policy says so."""
        if self._crash_after == name:
            raise SimulatedCrash(name)

    def recover(self):
        """Run crash recovery (snapshot + WAL replay + root check) on
        this freshly built framework; see
        :class:`repro.durability.recovery.RecoveryManager`.  Returns
        the :class:`~repro.durability.recovery.RecoveryReport`."""
        from repro.durability.recovery import RecoveryManager

        return RecoveryManager(self).recover()

    def snapshot_now(self) -> str:
        """Checkpoint on demand (and prune WAL segments the snapshot
        covers); returns the snapshot file path."""
        if self._snapshotter is None or self._wal is None:
            raise DurabilityError(
                "snapshot_now() needs durability mode 'wal+snapshot'"
            )
        path = self._snapshotter.take(self, self._wal.last_lsn)
        self._wal.prune(self._wal.last_lsn)
        return path

    def close(self) -> None:
        """Flush and fsync the WAL; call before discarding the
        instance (a no-op with durability off)."""
        if self._wal is not None:
            self._wal.close()

    def _finish(self, update: Update, outcome: VerificationOutcome,
                applied: bool, timings: Dict[str, float],
                trace: Optional[Span] = None) -> UpdateResult:
        start = self._wall.now()
        payload = self._anchor_payload(update, outcome, trace=trace)
        entry = self.ledger.append(payload)
        anchor_end = self._wall.now()
        timings["anchor"] = anchor_end - start
        if self._wal is not None:
            self._durable_anchor([payload])
        if trace is not None:
            self._close_anchor_span(
                trace, update, entry, self.ledger.digest(),
                start=start, end=anchor_end, applied=applied, batched=False,
            )
        return self._record_result(
            update, outcome, applied=applied, timings=timings,
            sequence=entry.sequence,
            trace_id=trace.trace_id if trace is not None else None,
        )

    def _record_result(self, update: Update, outcome: VerificationOutcome,
                       applied: bool, timings: Dict[str, float],
                       sequence: int,
                       trace_id: Optional[str] = None) -> UpdateResult:
        self._ctr_updates.add()
        (self._ctr_accepted if applied else self._ctr_rejected).add()
        timers = self._stage_timers
        for stage, elapsed in timings.items():
            timer = timers.get(stage)
            if timer is None:
                timer = timers[stage] = self.metrics.timer(
                    f"pipeline.stage.{stage}"
                )
            timer.record(elapsed)
        self._submitted_count += 1
        if applied:
            self._applied_count += 1
        if trace_id is not None and not applied:
            self.tracer.event(
                "rejection",
                trace_id=trace_id,
                update_id=update.update_id,
                reason=update.rejection_reason,
                failed_constraint=outcome.failed_constraint,
            )
        result = UpdateResult(
            update=update,
            outcome=outcome,
            applied=applied,
            ledger_sequence=sequence,
            stage_timings=timings,
            trace_id=trace_id,
        )
        self.results.append(result)
        return result

    # -- authenticated reads (RC4's query side) -----------------------------------

    def publish_state(self, table_name: str):
        """Publish an authenticated snapshot of one table, anchored on
        this framework's ledger.  Returns the
        :class:`~repro.ledger.authenticated.StateCommitment`; clients
        verify query answers against it with
        :func:`~repro.ledger.authenticated.verify_row` /
        :func:`verify_absence`."""
        from repro.ledger.authenticated import AuthenticatedTableView

        view = self._auth_views.get(table_name)
        if view is None:
            # Route the view's anchor entries onto the main ledger.
            database = self.databases[0]
            for candidate in self.databases:
                if table_name in candidate.table_names():
                    database = candidate
                    break
            view = AuthenticatedTableView(
                database.table(table_name), ledger=self.ledger
            )
            self._auth_views[table_name] = view
        return view.snapshot()

    def prove_query(self, table_name: str, key):
        """A manager answers a keyed query with proof: returns either
        ("row", RowProof) or ("absent", AbsenceProof) against the last
        published commitment."""
        if table_name not in self._auth_views:
            raise IntegrityError(
                f"publish_state({table_name!r}) before proving queries"
            )
        view = self._auth_views[table_name]
        try:
            return "row", view.prove_row(key)
        except IntegrityError:
            return "absent", view.prove_absent(key)

    # -- reporting ---------------------------------------------------------------

    def acceptance_rate(self) -> float:
        """Applied / submitted over the whole run.  Computed from
        running counters, so it stays correct when ``max_results``
        evicts old :class:`UpdateResult` records."""
        if not self._submitted_count:
            return 0.0
        return self._applied_count / self._submitted_count

    def throughput_report(self) -> dict:
        """Per-stage timing summary and end-to-end updates/sec."""
        return self.metrics.throughput_report(
            updates_counter="pipeline.updates", stage_prefix="pipeline.stage."
        )

    def decision_history(self) -> List[dict]:
        """Every anchored decision payload, in ledger order."""
        return [entry.payload for entry in self.ledger.entries()]
