"""The PReVer pipeline — Figure 2 of the paper, made executable.

    (0) authorities define constraints and regulations
    (1) a data producer sends a (signed) update
    (2) the update is verified against regulations and constraints
    (3) the verified update is incorporated into the database(s)
    (+) every decision is anchored on an append-only ledger (RC4)

The framework is engine-agnostic: plug any verifier from
``repro.core.verifiers`` / ``federated`` / ``pir_engine``.  It owns the
databases (one for the single setting, several for the federated one),
routes applies to the database named in ``update.managers`` (or the
first database), and appends an attestation record per decision to the
ledger so any participant can audit the full decision history.

Two submission paths share the same per-update semantics:

* :meth:`PReVer.submit` — one update, anchored immediately;
* :meth:`PReVer.submit_many` — a batch: constraint checks are routed
  through a table index and incremental aggregate cache, and the whole
  batch is anchored with one Merkle extension
  (:meth:`~repro.ledger.central.CentralLedger.append_batch`), while
  preserving per-entry sequence numbers, digests and inclusion proofs.
"""

from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.common.clock import SimClock, WallClock
from repro.common.errors import IntegrityError, PReVerError
from repro.common.metrics import MetricsRegistry
from repro.core.outcome import UpdateResult, VerificationOutcome
from repro.core.routing import BatchAggregateCache, ConstraintRouter, check_constraint
from repro.database.engine import Database
from repro.database.schema import SchemaError
from repro.database.table import TableError
from repro.crypto.group import SchnorrGroup
from repro.crypto.signatures import cached_verifier
from repro.ledger.central import CentralLedger
from repro.model.constraints import Constraint, ConstraintKind
from repro.model.participants import Authority
from repro.model.policy import PrivacyPolicy, Visibility
from repro.model.threat import ThreatModel
from repro.model.update import Update, UpdateOperation


class PReVer:
    """One instantiation of the framework."""

    def __init__(
        self,
        databases: Sequence[Database],
        engine=None,
        ledger: Optional[CentralLedger] = None,
        policy: Optional[PrivacyPolicy] = None,
        threat_model: Optional[ThreatModel] = None,
        clock: Optional[SimClock] = None,
        require_signed_updates: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        max_results: Optional[int] = None,
    ):
        if not databases:
            raise PReVerError("PReVer needs at least one database")
        self.databases = list(databases)
        self.engine = engine
        self.ledger = ledger or CentralLedger(name="prever-ledger")
        self.policy = policy or PrivacyPolicy(
            data=Visibility.PRIVATE,
            updates=Visibility.PRIVATE,
            constraints=Visibility.PUBLIC,
        )
        self.threat_model = threat_model or ThreatModel.honest_but_curious_manager()
        self.clock = clock or SimClock()
        self.require_signed_updates = require_signed_updates
        self.metrics = metrics or MetricsRegistry()
        self.constraints: List[Constraint] = []
        self._authorities: Dict[str, Authority] = {}
        # Retention: unbounded list by default; a deque(maxlen=...) when
        # capped, so long benchmark runs don't grow memory without bound.
        if max_results is not None:
            if max_results <= 0:
                raise PReVerError("max_results must be positive")
            self.results = deque(maxlen=max_results)
        else:
            self.results = []
        self._submitted_count = 0
        self._applied_count = 0
        self._wall = WallClock()
        # Hot-path metrics objects, resolved once instead of per update.
        self._ctr_updates = self.metrics.counter("pipeline.updates")
        self._ctr_accepted = self.metrics.counter("pipeline.accepted")
        self._ctr_rejected = self.metrics.counter("pipeline.rejected")
        self._stage_timers: Dict[str, object] = {}
        self._auth_views: Dict[str, object] = {}
        self._router = ConstraintRouter()

    # -- step (0): constraint registration -------------------------------

    def register_authority(self, authority: Authority) -> None:
        self._authorities[authority.name] = authority

    def register_constraint(self, constraint: Constraint,
                            authority: Optional[Authority] = None) -> None:
        """Regulations must be signed by a registered external authority."""
        if constraint.kind is ConstraintKind.REGULATION:
            if authority is None and constraint.authority:
                authority = self._authorities.get(constraint.authority)
            if authority is None:
                raise IntegrityError(
                    f"regulation {constraint.name!r} needs an issuing authority"
                )
            if not authority.external:
                raise IntegrityError(
                    "regulations must come from an external authority"
                )
            constraint.signature = authority.sign(constraint.body_bytes())
            constraint.authority = authority.name
            if authority.name not in self._authorities:
                self._authorities[authority.name] = authority
        self.constraints.append(constraint)
        self.invalidate_routing()

    def invalidate_routing(self) -> None:
        """Force a routing-index rebuild (call after mutating
        ``constraints`` directly, e.g. changing a ``tables`` scope)."""
        self._router.rebuild(())

    def _routed_constraints(self, table: str) -> List[Constraint]:
        # ``constraints`` is a public list some callers append to
        # directly, so re-sync the index whenever the list size moved.
        if len(self._router) != len(self.constraints):
            self._router.rebuild(self.constraints)
        return self._router.route(table)

    def verify_constraint_provenance(self, constraint: Constraint) -> bool:
        """Anyone can check a regulation's authority signature."""
        if constraint.kind is not ConstraintKind.REGULATION:
            return True
        authority = self._authorities.get(constraint.authority)
        if authority is None or constraint.signature is None:
            return False
        return authority.verifier().verify(
            constraint.body_bytes(), constraint.signature
        )

    # -- steps (1)-(3): the update pipeline ------------------------------------

    def submit(self, update: Update) -> UpdateResult:
        """Run one update through the full Figure-2 pipeline."""
        update, outcome, applied, timings = self._process_one(update)
        return self._finish(update, outcome, applied=applied, timings=timings)

    def submit_many(self, updates: Sequence[Update]) -> List[UpdateResult]:
        """Run a batch of updates through the pipeline, anchoring once.

        Decision-equivalent to calling :meth:`submit` per update in
        order — same accept/reject outcomes, same applied rows, same
        ledger sequence numbers, digests and inclusion proofs — but
        with three amortizations: the constraint routing index replaces
        per-update linear scans, an incremental aggregate cache
        replaces per-update table re-scans, and the ledger's Merkle
        tree is extended once per batch instead of once per decision.
        """
        updates = list(updates)
        if not updates:
            return []
        engine = self.engine
        # The framework-level cache backs ``_verify_plaintext``; engines
        # maintain their own via begin_batch/note_applied, so skip the
        # duplicate bookkeeping when one is plugged in.
        cache = BatchAggregateCache(self.databases) if engine is None else None
        if engine is not None and hasattr(engine, "begin_batch"):
            engine.begin_batch(len(updates))
        pending = []
        try:
            for update in updates:
                pending.append(self._process_one(update, batch_cache=cache))
        finally:
            if engine is not None and hasattr(engine, "end_batch"):
                engine.end_batch()

        # Amortized anchoring: one Merkle extension for the whole batch.
        start = self._wall.now()
        entries = self.ledger.append_batch(
            [self._anchor_payload(u, o) for (u, o, _, _) in pending]
        )
        anchor_elapsed = self._wall.now() - start
        self.metrics.timer("pipeline.anchor_batch").record(anchor_elapsed)
        anchor_share = anchor_elapsed / len(pending)

        results = []
        for (update, outcome, applied, timings), entry in zip(pending, entries):
            timings["anchor"] = anchor_share
            results.append(self._record_result(
                update, outcome, applied=applied, timings=timings,
                sequence=entry.sequence,
            ))
        return results

    def _process_one(self, update: Update, batch_cache=None):
        """Authenticate, verify, and apply one update (no anchoring).

        Returns ``(update, outcome, applied, timings)``; the caller
        anchors — immediately (:meth:`submit`) or per batch
        (:meth:`submit_many`).
        """
        timings: Dict[str, float] = {}
        now = self.clock.now()
        wall = self._wall.now  # chained timestamps: each reading both
        start = wall()         # ends one stage and starts the next

        # (1) provenance: signature check on the incoming update.
        if self.require_signed_updates:
            if update.signature is None or update.signer_public_key is None:
                timings["authenticate"] = wall() - start
                return self._rejected(update, "unsigned update", timings)
            verifier = cached_verifier(
                SchnorrGroup.default(), update.signer_public_key
            )
            if not verifier.verify(update.body_bytes(), update.signature):
                timings["authenticate"] = wall() - start
                return self._rejected(update, "bad signature", timings)
        t_auth = wall()
        timings["authenticate"] = t_auth - start

        # (2) verification against constraints/regulations.
        if self.engine is not None:
            outcome = self.engine.verify(update, now)
        else:
            outcome = self._verify_plaintext(update, now, cache=batch_cache)
        t_verify = wall()
        timings["verify"] = t_verify - t_auth
        if not outcome.accepted:
            update.mark_rejected(outcome.failed_constraint or "constraint")
            return update, outcome, False, timings

        # (3) incorporation into the target database.  Apply failures
        # (duplicate key, missing row) reject the update rather than
        # crash the pipeline; the rejection is anchored like any other.
        update.mark_verified()
        try:
            self._apply(update)
        except (TableError, SchemaError) as exc:
            timings["apply"] = wall() - t_verify
            update.mark_rejected(f"apply failed: {exc}")
            failed = VerificationOutcome(
                accepted=False, engine=outcome.engine,
                constraint_ids=outcome.constraint_ids,
                failed_constraint="apply-failure",
            )
            return update, failed, False, timings
        update.mark_applied()
        timings["apply"] = wall() - t_verify
        if batch_cache is not None:
            batch_cache.note_applied(update)
        if self.engine is not None and hasattr(self.engine, "note_applied"):
            self.engine.note_applied(update, now)
        return update, outcome, True, timings

    def _rejected(self, update: Update, reason: str, timings):
        update.mark_rejected(reason)
        outcome = VerificationOutcome(
            accepted=False, engine="framework-auth", failed_constraint=reason
        )
        return update, outcome, False, timings

    def _verify_plaintext(self, update: Update, now: float,
                          cache=None) -> VerificationOutcome:
        for constraint in self._routed_constraints(update.table):
            if not check_constraint(constraint, self.databases, update, now,
                                    cache=cache):
                return VerificationOutcome(
                    accepted=False,
                    engine="framework-plaintext",
                    failed_constraint=constraint.constraint_id,
                )
        return VerificationOutcome(accepted=True, engine="framework-plaintext")

    def _apply(self, update: Update) -> None:
        database = self._target_database(update)
        if update.operation is UpdateOperation.INSERT:
            database.insert(update.table, update.payload, update_id=update.update_id)
        elif update.operation is UpdateOperation.MODIFY:
            database.update(
                update.table, update.key, update.payload, update_id=update.update_id
            )
        else:
            database.delete(update.table, update.key, update_id=update.update_id)

    def _target_database(self, update: Update) -> Database:
        if update.managers:
            for database in self.databases:
                if database.name == update.managers[0]:
                    return database
        return self.databases[0]

    def _anchor_payload(self, update: Update, outcome: VerificationOutcome) -> dict:
        return {
            "update_id": update.update_id,
            "table": update.table,
            "status": update.status.value,
            "decision": outcome.to_dict(),
            "timestamp": self.clock.now(),
        }

    def _finish(self, update: Update, outcome: VerificationOutcome,
                applied: bool, timings: Dict[str, float]) -> UpdateResult:
        start = self._wall.now()
        entry = self.ledger.append(self._anchor_payload(update, outcome))
        timings["anchor"] = self._wall.now() - start
        return self._record_result(update, outcome, applied=applied,
                                   timings=timings, sequence=entry.sequence)

    def _record_result(self, update: Update, outcome: VerificationOutcome,
                       applied: bool, timings: Dict[str, float],
                       sequence: int) -> UpdateResult:
        self._ctr_updates.add()
        (self._ctr_accepted if applied else self._ctr_rejected).add()
        timers = self._stage_timers
        for stage, elapsed in timings.items():
            timer = timers.get(stage)
            if timer is None:
                timer = timers[stage] = self.metrics.timer(
                    f"pipeline.stage.{stage}"
                )
            timer.record(elapsed)
        self._submitted_count += 1
        if applied:
            self._applied_count += 1
        result = UpdateResult(
            update=update,
            outcome=outcome,
            applied=applied,
            ledger_sequence=sequence,
            stage_timings=timings,
        )
        self.results.append(result)
        return result

    # -- authenticated reads (RC4's query side) -----------------------------------

    def publish_state(self, table_name: str):
        """Publish an authenticated snapshot of one table, anchored on
        this framework's ledger.  Returns the
        :class:`~repro.ledger.authenticated.StateCommitment`; clients
        verify query answers against it with
        :func:`~repro.ledger.authenticated.verify_row` /
        :func:`verify_absence`."""
        from repro.ledger.authenticated import AuthenticatedTableView

        view = self._auth_views.get(table_name)
        if view is None:
            # Route the view's anchor entries onto the main ledger.
            database = self.databases[0]
            for candidate in self.databases:
                if table_name in candidate.table_names():
                    database = candidate
                    break
            view = AuthenticatedTableView(
                database.table(table_name), ledger=self.ledger
            )
            self._auth_views[table_name] = view
        return view.snapshot()

    def prove_query(self, table_name: str, key):
        """A manager answers a keyed query with proof: returns either
        ("row", RowProof) or ("absent", AbsenceProof) against the last
        published commitment."""
        if table_name not in self._auth_views:
            raise IntegrityError(
                f"publish_state({table_name!r}) before proving queries"
            )
        view = self._auth_views[table_name]
        try:
            return "row", view.prove_row(key)
        except IntegrityError:
            return "absent", view.prove_absent(key)

    # -- reporting ---------------------------------------------------------------

    def acceptance_rate(self) -> float:
        """Applied / submitted over the whole run.  Computed from
        running counters, so it stays correct when ``max_results``
        evicts old :class:`UpdateResult` records."""
        if not self._submitted_count:
            return 0.0
        return self._applied_count / self._submitted_count

    def throughput_report(self) -> dict:
        """Per-stage timing summary and end-to-end updates/sec."""
        return self.metrics.throughput_report(
            updates_counter="pipeline.updates", stage_prefix="pipeline.stage."
        )

    def decision_history(self) -> List[dict]:
        return [entry.payload for entry in self.ledger.entries()]
