"""Figure 1(b): in-person conference participation.

The attendee list is public; each registrant's vaccination record is
private; the admission constraint (valid COVID vaccination) is public.
A registrant proves eligibility by having the venue check their health
record via PIR — the health-registry servers never learn who the venue
queried — and accepted registrations land on the public list.
"""

from typing import Callable, Dict, List, Optional

from repro.core.contexts import public_database
from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema
from repro.database.expr import lit
from repro.model.constraints import Constraint, ConstraintKind
from repro.model.update import Update, UpdateOperation

ATTENDEE_SCHEMA = TableSchema.build(
    "attendees",
    [("name", ColumnType.TEXT), ("mode", ColumnType.TEXT)],
    primary_key=["name"],
)

RECORD_SIZE = 48


class ConferenceRegistration:
    """A conference with a public attendee list and PIR-checked
    vaccination records."""

    def __init__(self, registrants: Dict[str, bool]):
        """``registrants`` maps name -> vaccinated?  (the health
        registry's private contents)."""
        self.names = sorted(registrants)
        records = [
            self._health_record(name, registrants[name]) for name in self.names
        ]
        self.database = Database("venue")
        self.database.create_table(ATTENDEE_SCHEMA)
        constraint = Constraint(
            name="covid-vaccination",
            kind=ConstraintKind.INTERNAL,
            predicate=lit(True),  # real logic runs client-side over PIR
            tables=("attendees",),
        )
        self.framework, self.verifier = public_database(
            self.database,
            constraint,
            records,
            record_index_of=self._index_of,
            predicate=self._is_vaccinated,
            record_size=RECORD_SIZE,
        )

    @staticmethod
    def _health_record(name: str, vaccinated: bool) -> bytes:
        status = "yes" if vaccinated else "no"
        return f"{name}|vaccinated:{status}".encode()

    def _index_of(self, update: Update) -> int:
        return self.names.index(update.payload["name"])

    @staticmethod
    def _is_vaccinated(record: bytes, update: Update) -> bool:
        return record.rstrip(b"\0").endswith(b"vaccinated:yes")

    def register_in_person(self, name: str):
        """Attempt in-person registration (the private update)."""
        update = Update(
            table="attendees",
            operation=UpdateOperation.INSERT,
            payload={"name": name, "mode": "in-person"},
            producers=[name],
        )
        return self.framework.submit(update)

    def register_online(self, name: str):
        """Online participation needs no vaccination check: applied
        directly (still anchored on the ledger)."""
        self.database.insert("attendees", {"name": name, "mode": "online"})
        self.framework.ledger.append({"online_registration": name})

    def attendee_list(self) -> List[Dict]:
        return sorted(
            self.database.table("attendees").rows(), key=lambda r: r["name"]
        )

    def in_person_count(self) -> int:
        from repro.database.expr import col
        return len(self.database.select("attendees", col("mode").eq(lit("in-person"))))
