"""Figure 1(c): multi-platform crowdworking — a scenario driver over
the Separ system (Section 5).

Generates realistic weekly workloads: a population of workers with
Zipf-distributed activity completing tasks across competing platforms,
while the FLSA 40-hour regulation is enforced privately.  Used by the
examples and by bench E11.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.randomness import deterministic_rng
from repro.core.separ import SeparSystem, TaskResult


@dataclass
class WeekSummary:
    week: int
    tasks_attempted: int
    tasks_accepted: int
    cap_rejections: int
    hours_by_worker: Dict[str, int] = field(default_factory=dict)

    @property
    def acceptance_rate(self) -> float:
        if not self.tasks_attempted:
            return 0.0
        return self.tasks_accepted / self.tasks_attempted


class CrowdworkingScenario:
    """Drives a Separ deployment with a synthetic worker population."""

    def __init__(
        self,
        platform_names: Sequence[str] = ("uber", "lyft", "grab", "ola"),
        workers: int = 10,
        weekly_hour_cap: int = 40,
        seed: int = 42,
    ):
        self.system = SeparSystem(list(platform_names), weekly_hour_cap=weekly_hour_cap)
        self.platform_names = list(platform_names)
        self._rng = deterministic_rng(seed)
        self.worker_names = [f"worker-{i:03d}" for i in range(workers)]
        for name in self.worker_names:
            self.system.register_worker(name)
        self.summaries: List[WeekSummary] = []

    def run_week(self, tasks_per_worker: int = 12,
                 max_task_hours: int = 6) -> WeekSummary:
        """Simulate one week of task completions.

        Greedy workers attempt more hours than the cap allows, so the
        regulation visibly bites (the rejection count is the paper's
        headline behaviour: cross-platform overwork is blocked even
        though no platform sees the others' data).
        """
        week = self.system.current_period()
        attempted = accepted = cap_rejections = 0
        for worker in self.worker_names:
            for _ in range(tasks_per_worker):
                platform = self.platform_names[
                    self._rng.randbelow(len(self.platform_names))
                ]
                hours = 1 + self._rng.randbelow(max_task_hours)
                result = self.system.complete_task(worker, platform, hours)
                attempted += 1
                if result.accepted:
                    accepted += 1
                elif result.reason == "weekly hour cap reached":
                    cap_rejections += 1
        summary = WeekSummary(
            week=week,
            tasks_attempted=attempted,
            tasks_accepted=accepted,
            cap_rejections=cap_rejections,
            hours_by_worker={
                w: self.system.hours_worked(w, week) for w in self.worker_names
            },
        )
        self.summaries.append(summary)
        self.system.advance_weeks(1)
        return summary

    def no_worker_exceeded_cap(self) -> bool:
        return all(
            hours <= self.system.weekly_hour_cap
            for summary in self.summaries
            for hours in summary.hours_by_worker.values()
        )

    def settle(self) -> None:
        self.system.settle()
