"""The four motivating applications of Figure 1, built on the core API.

Each module constructs a complete scenario — participants, schemas,
constraints, engine choice per the paper's decision matrix — and
exposes a small domain API so the examples and bench E13 can drive
realistic workloads.
"""

from repro.apps.sustainability import SustainabilityCertification
from repro.apps.conference import ConferenceRegistration
from repro.apps.crowdworking import CrowdworkingScenario
from repro.apps.supplychain import SupplyChainNetwork

__all__ = [
    "SustainabilityCertification",
    "ConferenceRegistration",
    "CrowdworkingScenario",
    "SupplyChainNetwork",
]
