"""Figure 1(a): environmental sustainability certification.

An organization continuously reports sustainability statistics (private
data, private updates) to a certifying authority that checks them
against public quantitative metrics (ISO-14000 / LEED style) and awards
Platinum/Gold/Silver.  The organization must be certified *without*
revealing its statistics to the authority, other parties, or the
public — so verification runs under the Paillier engine: the authority
sees only ciphertext aggregates and decision bits.
"""

from typing import Dict, List, Optional

from repro.core.contexts import single_private_database
from repro.core.framework import PReVer
from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema
from repro.model.constraints import upper_bound_regulation
from repro.model.participants import Authority, DataOwner
from repro.model.update import Update, UpdateOperation

EMISSIONS_SCHEMA = TableSchema.build(
    "emissions",
    [
        ("report_id", ColumnType.INT),
        ("org", ColumnType.TEXT),
        ("category", ColumnType.TEXT),   # energy | waste | transport
        ("co2_tons", ColumnType.INT),
    ],
    primary_key=["report_id"],
    indexes=["org"],
)

# Public certification tiers: annual CO2 caps (tons).
CERT_TIERS = {"platinum": 100, "gold": 250, "silver": 500}


class SustainabilityCertification:
    """One organization pursuing a certification tier."""

    def __init__(self, org: str, tier: str = "gold", engine: str = "paillier"):
        if tier not in CERT_TIERS:
            raise ValueError(f"unknown tier {tier!r}")
        self.org = org
        self.tier = tier
        self.cap = CERT_TIERS[tier]
        self.owner = DataOwner(org)
        self.certifier = Authority("iso-certifier", external=True)
        self.database = Database("certifier-cloud")
        self.database.create_table(EMISSIONS_SCHEMA)
        regulation = upper_bound_regulation(
            name=f"iso-{tier}-cap",
            table="emissions",
            column="co2_tons",
            bound=self.cap,
            match_columns=["org"],
            authority=self.certifier.name,
        )
        regulation.signature = self.certifier.sign(regulation.body_bytes())
        self.regulation = regulation
        self.framework: PReVer = single_private_database(
            self.database, [regulation], engine=engine
        )
        self._report_counter = 0

    def report(self, category: str, co2_tons: int):
        """Submit one (private) emissions report."""
        self._report_counter += 1
        update = Update(
            table="emissions",
            operation=UpdateOperation.INSERT,
            payload={
                "report_id": self._report_counter,
                "org": self.org,
                "category": category,
                "co2_tons": co2_tons,
            },
            producers=[self.org],
        )
        return self.framework.submit(update)

    def certified(self) -> bool:
        """Certified while every accepted report kept the total under
        the tier cap (rejected reports were never incorporated)."""
        total = self.database.aggregate("emissions", "SUM", "co2_tons")
        return total <= self.cap

    def reported_total(self) -> int:
        return self.database.aggregate("emissions", "SUM", "co2_tons")

    def authority_view(self) -> List:
        """What the certifying authority (the manager) observed."""
        engine = self.framework.engine
        return list(getattr(engine, "manager_transcript", []))
