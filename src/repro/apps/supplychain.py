"""Figure 1(d): supply chain management.

Multiple mutually distrustful enterprises (supplier → manufacturer →
carrier → retailer) process internal and cross-enterprise updates.
Internal updates (e.g. the manufacturer's production process) are
confidential to the enterprise; cross-enterprise updates are visible to
the enterprises involved; SLA constraints govern flows.  Data, updates,
and constraints can all be private.

Infrastructure per the paper: Qanaat-style confidential collaborations
over a permissioned ledger — every pair (or subset) of collaborating
enterprises gets a private collection; integrity is anchored globally.
SLA checks (e.g. "shipments from supplier S to manufacturer M may not
exceed Q units per window") run inside the collaboration that can see
the data.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chain.qanaat import QanaatNetwork
from repro.common.clock import SimClock
from repro.common.errors import ConstraintViolation, PrivacyError


@dataclass(frozen=True)
class SLA:
    """A service-level agreement between two enterprises: a cap on
    units flowing from ``source`` to ``target`` per time window."""

    source: str
    target: str
    max_units_per_window: int
    window: float  # seconds


class SupplyChainNetwork:
    """Enterprises, confidential collaborations, SLA-regulated flows."""

    def __init__(self, enterprises: Sequence[str]):
        self.network = QanaatNetwork(set(enterprises))
        self.clock = SimClock()
        self._slas: Dict[Tuple[str, str], SLA] = {}
        self._collaboration_of: Dict[Tuple[str, str], str] = {}
        self.internal_logs: Dict[str, List[dict]] = {e: [] for e in enterprises}
        self.rejections: List[dict] = []

    # -- setup ------------------------------------------------------------

    def agree_sla(self, sla: SLA) -> str:
        """Both parties agree on an SLA; a confidential collaboration is
        formed for their flow records."""
        key = (sla.source, sla.target)
        name = f"{sla.source}->{sla.target}"
        self.network.form_collaboration(name, {sla.source, sla.target})
        self._slas[key] = sla
        self._collaboration_of[key] = name
        return name

    # -- updates --------------------------------------------------------------

    def internal_update(self, enterprise: str, record: dict) -> None:
        """A confidential internal update (e.g. a production step):
        visible to nobody else, not even as a hash payload."""
        if enterprise not in self.network.enterprises:
            raise PrivacyError(f"unknown enterprise {enterprise!r}")
        self.internal_logs[enterprise].append(dict(record, at=self.clock.now()))

    def ship(self, source: str, target: str, units: int) -> bool:
        """A cross-enterprise update: checked against the SLA, recorded
        in the pair's confidential collaboration, anchored globally."""
        key = (source, target)
        sla = self._slas.get(key)
        if sla is None:
            raise ConstraintViolation("no-sla", f"no SLA between {source} and {target}")
        shipped = self._units_in_window(key, sla.window)
        if shipped + units > sla.max_units_per_window:
            self.rejections.append(
                {"source": source, "target": target, "units": units,
                 "at": self.clock.now()}
            )
            return False
        self.network.append(
            source,
            self._collaboration_of[key],
            {"units": units, "at": self.clock.now()},
        )
        return True

    def _units_in_window(self, key: Tuple[str, str], window: float) -> int:
        name = self._collaboration_of[key]
        now = self.clock.now()
        total = 0
        for record in self.network.read(key[0], name):
            if now - window < record["at"] <= now:
                total += record["units"]
        return total

    # -- queries with the privacy boundary -------------------------------------

    def flow_history(self, requester: str, source: str, target: str) -> List[dict]:
        """Only the two parties to a flow may read it."""
        name = self._collaboration_of[(source, target)]
        return self.network.read(requester, name)

    def verify_integrity(self, enterprise: str) -> bool:
        """An enterprise audits every collaboration it belongs to
        against the global anchors."""
        return all(
            self.network.verify_collaboration(enterprise, name)
            for name in self.network.visible_collaborations(enterprise)
        )

    def advance(self, seconds: float) -> None:
        self.clock.advance(seconds)
