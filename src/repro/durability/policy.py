"""The durability policy object and crash-injection support.

A :class:`Durability` instance tells the framework how much crash
safety to buy and at what fsync cost:

* ``off`` (the default) — nothing is persisted; every existing test and
  benchmark runs byte-identically to before this layer existed.
* ``wal`` — every accepted update is logged *before* it is applied, and
  every ledger anchor writes a durable marker; recovery replays the log
  from the start.
* ``wal+snapshot`` — additionally checkpoints the full engine/ledger
  state every ``snapshot_every`` anchored records so recovery replays
  only the WAL tail.

``crash_after`` is a test-only fault-injection hook: name a pipeline
crash point and the framework raises :class:`SimulatedCrash` right
after passing it, leaving on-disk state exactly as a real crash at
that instant would.
"""

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import DurabilityError

#: Valid ``crash_after`` values, in pipeline order.
CRASH_POINTS = (
    "wal_update",     # update logged, not yet applied
    "apply",          # applied to the database, not yet anchored
    "anchor_append",  # ledger extended in memory, marker not yet durable
    "anchor_marker",  # anchor marker durable (a crash here loses nothing)
)

_MODES = ("off", "wal", "wal+snapshot")


class SimulatedCrash(RuntimeError):
    """Raised by the injected crash points.

    Deliberately *not* a :class:`~repro.common.errors.PReVerError`:
    library-level ``except PReVerError`` handlers must not swallow a
    simulated crash, just as they could not swallow ``kill -9``.
    """

    def __init__(self, point: str):
        self.point = point
        super().__init__(f"simulated crash at {point!r}")


@dataclass(frozen=True)
class Durability:
    """Crash-safety policy handed to :class:`~repro.core.framework.PReVer`.

    ``fsync_every`` batches fsyncs of update records: 0 means update
    records are only *flushed* (surviving a process kill but not a
    power cut) and the fsync happens once per batch at the anchor
    marker — the group-commit default; N > 0 additionally fsyncs every
    N update records.  ``sync_anchors`` controls the anchor-marker
    fsync itself and should stay on outside of benchmarks.
    """

    mode: str = "off"
    directory: Optional[str] = None
    fsync_every: int = 0
    sync_anchors: bool = True
    snapshot_every: int = 256
    keep_snapshots: int = 2
    segment_max_bytes: int = 4 * 1024 * 1024
    crash_after: Optional[str] = None

    def __post_init__(self):
        if self.mode not in _MODES:
            raise DurabilityError(
                f"unknown durability mode {self.mode!r}; pick one of {_MODES}"
            )
        if self.mode != "off" and not self.directory:
            raise DurabilityError(
                f"durability mode {self.mode!r} needs a directory"
            )
        if self.crash_after is not None and self.crash_after not in CRASH_POINTS:
            raise DurabilityError(
                f"unknown crash point {self.crash_after!r}; "
                f"pick one of {CRASH_POINTS}"
            )
        if self.fsync_every < 0 or self.snapshot_every < 0:
            raise DurabilityError("fsync_every/snapshot_every must be >= 0")
        if self.keep_snapshots < 1:
            raise DurabilityError("keep_snapshots must be >= 1")
        if self.segment_max_bytes < 64:
            raise DurabilityError("segment_max_bytes unreasonably small")

    # -- constructors ------------------------------------------------------

    @classmethod
    def off(cls) -> "Durability":
        """No persistence — the pre-durability behaviour, byte for byte."""
        return cls(mode="off")

    @classmethod
    def wal(cls, directory: str, **overrides) -> "Durability":
        """Write-ahead logging only (recovery replays the whole log)."""
        return cls(mode="wal", directory=directory, **overrides)

    @classmethod
    def wal_with_snapshots(cls, directory: str,
                           snapshot_every: int = 256,
                           **overrides) -> "Durability":
        """WAL plus periodic checkpoints (recovery replays the tail)."""
        return cls(mode="wal+snapshot", directory=directory,
                   snapshot_every=snapshot_every, **overrides)

    @classmethod
    def serving(cls, directory: str, **overrides) -> "Durability":
        """The serving-tier preset: WAL with pure group commit.

        ``fsync_every=0`` + ``sync_anchors=True`` means each batch the
        serving tier coalesces (see
        :class:`repro.serve.scheduler.BatchingScheduler`) is made
        durable by exactly **one** fsync, at its anchor marker — the
        server's ``batch_window`` *is* the group-commit window.  Update
        records are flushed (surviving a process kill) but not
        individually fsynced; widen the batch window to amortize the
        anchor fsync over more updates.
        """
        overrides.setdefault("fsync_every", 0)
        overrides.setdefault("sync_anchors", True)
        return cls(mode="wal", directory=directory, **overrides)

    def with_crash_after(self, point: Optional[str]) -> "Durability":
        """A copy of this policy crashing at ``point`` (None clears)."""
        return dataclasses.replace(self, crash_after=point)

    # -- predicates --------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when any persistence is on (``wal`` or ``wal+snapshot``)."""
        return self.mode != "off"

    @property
    def snapshots_enabled(self) -> bool:
        """True when periodic checkpoints are on (``wal+snapshot``)."""
        return self.mode == "wal+snapshot"
