"""Startup recovery: snapshot + WAL replay + root verification.

Recovery restores the state as of the *last durable anchor marker*:

1. load the newest valid snapshot (if any) into the freshly built
   framework — tables, ledger Merkle frontier, engine aggregates,
   counters;
2. replay WAL records after the snapshot LSN.  ``update`` records are
   staged; an ``anchor`` record commits its batch — staged updates the
   anchor marks ``applied`` are re-applied to the database and engine,
   and the anchored payloads are re-appended to the ledger verbatim,
   after which the recomputed Merkle root must equal the root the
   marker recorded (fail-closed per batch, not just at the end);
3. staged updates never covered by an anchor are dropped: the original
   process crashed before their batch's group-commit fsync, so they
   were never durable decisions;
4. finally the recovered ledger root is checked against the last
   anchored root one more time before the framework serves traffic.

Torn-tail truncation happened earlier, when the framework opened the
WAL; mid-log corruption surfaces here as
:class:`~repro.common.errors.WalCorruptionError` and recovery refuses.
"""

from dataclasses import dataclass, field
from time import perf_counter
from typing import List, Optional

from repro.common.errors import DurabilityError, IntegrityError, WalCorruptionError
from repro.model.policy import Visibility
from repro.model.update import Update, UpdateOperation


@dataclass
class RecoveryReport:
    """What :meth:`RecoveryManager.recover` did, for logs and tests."""

    snapshot_lsn: Optional[int] = None
    replayed_updates: int = 0
    replayed_anchors: int = 0
    dropped_unanchored: int = 0
    truncated_records: int = 0
    final_size: int = 0
    final_root: str = ""
    verified_against_anchor: bool = False

    def to_dict(self) -> dict:
        """Serializable form, for the event log and examples."""
        return {
            "snapshot_lsn": self.snapshot_lsn,
            "replayed_updates": self.replayed_updates,
            "replayed_anchors": self.replayed_anchors,
            "dropped_unanchored": self.dropped_unanchored,
            "truncated_records": self.truncated_records,
            "final_size": self.final_size,
            "final_root": self.final_root,
            "verified_against_anchor": self.verified_against_anchor,
        }


def update_from_wal(data: dict) -> Update:
    """Reconstruct an :class:`Update` from a WAL ``update`` record."""
    return Update(
        table=data["table"],
        operation=UpdateOperation(data["operation"]),
        payload=dict(data["payload"]),
        key=tuple(data["key"]) if data["key"] is not None else None,
        visibility=Visibility(data["visibility"]),
        producers=list(data["producers"]),
        managers=list(data["managers"]),
        update_id=data["update_id"],
    )


class RecoveryManager:
    """Drives recovery for one framework instance."""

    def __init__(self, framework):
        self.framework = framework

    def recover(self) -> RecoveryReport:
        """Restore, replay, verify; returns the :class:`RecoveryReport`.

        Must run on a freshly constructed framework (same topology and
        key material as the crashed one) before it serves traffic."""
        framework = self.framework
        wal = framework._wal
        if wal is None:
            raise DurabilityError(
                "recover() needs durability enabled (mode 'wal' or "
                "'wal+snapshot')"
            )
        start = perf_counter()
        if framework.tracer.enabled:
            with framework.tracer.span("durability.recover"):
                report = self._recover(framework, wal)
        else:
            report = self._recover(framework, wal)
        framework.metrics.timer("durability.recover").record(
            perf_counter() - start
        )
        return report

    def _recover(self, framework, wal) -> RecoveryReport:
        from repro.durability.snapshot import restore_state

        report = RecoveryReport(truncated_records=wal.truncated_records)
        since_lsn = 0
        last_anchored_root: Optional[str] = None
        last_anchored_size = 0
        if framework._snapshotter is not None:
            loaded = framework._snapshotter.latest()
            if loaded is not None:
                snap_lsn, state = loaded
                restore_state(framework, state)
                report.snapshot_lsn = snap_lsn
                since_lsn = snap_lsn
                last_anchored_root = state["ledger"]["root"]
                last_anchored_size = state["ledger"]["size"]
                # Segments may have been pruned past the snapshot:
                # never reissue an LSN the snapshot already covers.
                wal.ensure_next_lsn(snap_lsn + 1)
        elif len(framework.ledger) or framework._submitted_count:
            raise DurabilityError(
                "refusing to recover into a framework that has already "
                "processed updates — recover into a fresh instance"
            )

        pending = {}  # update_id -> (Update, logged clock reading)
        for lsn, record_type, data in wal.records(since_lsn=since_lsn):
            if record_type == "update":
                update = update_from_wal(data)
                pending[update.update_id] = (update, data["now"])
                continue
            self._replay_anchor(framework, lsn, data, pending, report)
            last_anchored_root = data["root"]
            last_anchored_size = data["size"]

        report.dropped_unanchored = len(pending)
        digest = framework.ledger.digest()
        report.final_size = digest.size
        report.final_root = digest.root.hex()
        if last_anchored_root is not None:
            if (digest.root.hex() != last_anchored_root
                    or digest.size != last_anchored_size):
                raise IntegrityError(
                    "recovered ledger root does not match the last "
                    "anchored root — refusing to serve"
                )
            report.verified_against_anchor = True
        elif len(framework.ledger):
            raise WalCorruptionError(
                "ledger has entries but the WAL holds no anchor marker "
                "for them"
            )
        framework.tracer.event(
            "durability_recovered", **report.to_dict()
        )
        return report

    def _replay_anchor(self, framework, lsn: int, data: dict,
                       pending: dict, report: RecoveryReport) -> None:
        """Commit one anchored batch: re-apply its accepted updates,
        re-anchor its payloads, verify the recorded root."""
        payloads: List[dict] = data["payloads"]
        engine = framework.engine
        for payload in payloads:
            staged = pending.pop(payload["update_id"], None)
            applied = payload["status"] == "applied"
            if applied:
                if staged is None:
                    raise WalCorruptionError(
                        f"anchor at LSN {lsn} covers applied update "
                        f"{payload['update_id']!r} with no update record"
                    )
                update, now = staged
                update.mark_verified()
                framework._apply(update)
                update.mark_applied()
                if engine is not None and hasattr(engine, "replay_applied"):
                    engine.replay_applied(update, now)
                report.replayed_updates += 1
            framework._submitted_count += 1
            if applied:
                framework._applied_count += 1
        framework.ledger.append_batch(payloads)
        digest = framework.ledger.digest()
        if digest.root.hex() != data["root"] or digest.size != data["size"]:
            raise IntegrityError(
                f"replaying anchor at LSN {lsn} produced root "
                f"{digest.root.hex()[:16]}…, but the marker recorded "
                f"{data['root'][:16]}… — WAL and ledger history disagree"
            )
        report.replayed_anchors += 1
