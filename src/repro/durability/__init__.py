"""Crash-safe durability: write-ahead log, snapshots, recovery.

See :mod:`repro.durability.policy` for the :class:`Durability` knob
handed to :class:`~repro.core.framework.PReVer`, and
``docs/OPERATIONS.md`` for the fsync-cost tradeoffs between modes.
"""

from repro.common.errors import DurabilityError, WalCorruptionError
from repro.durability.policy import CRASH_POINTS, Durability, SimulatedCrash
from repro.durability.recovery import RecoveryManager, RecoveryReport
from repro.durability.snapshot import Snapshotter
from repro.durability.wal import WriteAheadLog

__all__ = [
    "CRASH_POINTS",
    "Durability",
    "DurabilityError",
    "RecoveryManager",
    "RecoveryReport",
    "SimulatedCrash",
    "Snapshotter",
    "WalCorruptionError",
    "WriteAheadLog",
]
