"""The write-ahead log.

Record framing (one record, appended to the current segment file):

    +----------------+----------------+------------------------+
    | length  (u32)  | crc32   (u32)  | payload (length bytes) |
    +----------------+----------------+------------------------+

both header fields big-endian; the payload is the canonical JSON of
``{"lsn": n, "type": "update" | "anchor", "data": {...}}``.  LSNs are
assigned contiguously from 1; segments are named ``wal-<first lsn>.log``
and rotate at ``segment_max_bytes``.

Two record types:

* ``update`` — written after an update passes verification and *before*
  it is applied (log-before-apply), carrying everything needed to
  reconstruct and re-apply it;
* ``anchor`` — the durability marker for a batch: the exact anchored
  ledger payloads plus the post-append tree size and root.  Recovery
  only applies updates it finds covered by an anchor; logged-but-
  unanchored updates were never durable decisions and are dropped.

On open, the log is scanned end to end.  A parse failure at the tail of
the *last* segment with no valid record after it is a torn write from a
crash: the file is truncated back to the last good record.  Any other
damage — a bad CRC followed by valid records, a hole in the LSN
sequence, a broken non-final segment — raises
:class:`~repro.common.errors.WalCorruptionError`; silently skipping a
corrupt decision record would forge history.
"""

import os
import struct
import zlib
from time import perf_counter
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import SerializationError, WalCorruptionError
from repro.common.metrics import MetricsRegistry
from repro.common.serialization import canonical_json, from_canonical_json
from repro.obs.tracing import NOOP_TRACER

_HEADER = struct.Struct(">II")
_RECORD_TYPES = ("update", "anchor")


def _segment_name(first_lsn: int) -> str:
    return f"wal-{first_lsn:012d}.log"


def encode_record(lsn: int, record_type: str, data: dict) -> bytes:
    """Frame one record: length + CRC header, canonical-JSON payload.

    ``data`` may embed :class:`repro.common.encoding.RawJson` fragments
    (the anchor stage passes payloads it already canonically encoded);
    the encoder splices them verbatim, so the framed bytes — and hence
    the CRC — are identical to encoding the plain values from scratch.
    """
    payload = canonical_json(
        {"lsn": lsn, "type": record_type, "data": data}
    ).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _try_parse(buf: bytes, offset: int) -> Optional[Tuple[int, str, dict, int]]:
    """Parse the record at ``offset``; None on any damage.

    Returns ``(lsn, type, data, next_offset)`` only when the header,
    CRC, JSON, and record shape all check out.
    """
    if len(buf) - offset < _HEADER.size:
        return None
    length, crc = _HEADER.unpack_from(buf, offset)
    start = offset + _HEADER.size
    payload = buf[start:start + length]
    if len(payload) < length or zlib.crc32(payload) != crc:
        return None
    try:
        record = from_canonical_json(payload.decode("utf-8"))
    except (SerializationError, UnicodeDecodeError):
        return None
    if (not isinstance(record, dict)
            or not isinstance(record.get("lsn"), int)
            or record.get("type") not in _RECORD_TYPES
            or not isinstance(record.get("data"), dict)):
        return None
    return record["lsn"], record["type"], record["data"], start + length


def _has_valid_record_after(buf: bytes, offset: int) -> bool:
    """Probe every byte position past a damaged record for anything
    that still parses — the torn-tail / mid-file-corruption decider."""
    for candidate in range(offset + 1, len(buf) - _HEADER.size + 1):
        if _try_parse(buf, candidate) is not None:
            return True
    return False


class WriteAheadLog:
    """Append-only, CRC-checked, segment-rotated record log."""

    def __init__(
        self,
        directory: str,
        fsync_every: int = 0,
        segment_max_bytes: int = 4 * 1024 * 1024,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ):
        self.directory = directory
        self.fsync_every = fsync_every
        self.segment_max_bytes = segment_max_bytes
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer or NOOP_TRACER
        self._ctr_records = self.metrics.counter("durability.wal_records")
        self._ctr_bytes = self.metrics.counter("durability.wal_bytes")
        self._ctr_fsyncs = self.metrics.counter("durability.fsyncs")
        self._tmr_append = self.metrics.timer("durability.wal_append")
        self._tmr_fsync = self.metrics.timer("durability.fsync")
        self._handle = None
        self._closed = False
        self._segment_path: Optional[str] = None
        self._segment_size = 0
        self._unsynced_updates = 0
        self.last_lsn = 0              # highest durable LSN on disk
        self.truncated_records = 0     # torn records repaired at open
        os.makedirs(directory, exist_ok=True)
        self._open_and_repair()

    # -- opening / recovery scan ------------------------------------------

    def segment_paths(self) -> List[str]:
        """All segment files, oldest first."""
        names = sorted(
            n for n in os.listdir(self.directory)
            if n.startswith("wal-") and n.endswith(".log")
        )
        return [os.path.join(self.directory, n) for n in names]

    def _open_and_repair(self) -> None:
        segments = self.segment_paths()
        expected: Optional[int] = None
        for index, path in enumerate(segments):
            last_segment = index == len(segments) - 1
            expected = self._scan_segment(path, expected, last_segment)
        self.last_lsn = (expected - 1) if expected is not None else 0
        if segments:
            self._segment_path = segments[-1]
            self._segment_size = os.path.getsize(self._segment_path)
            self._handle = open(self._segment_path, "ab")
        # An empty directory opens lazily: the first append creates
        # ``wal-000000000001.log``.

    def _scan_segment(self, path: str, expected: Optional[int],
                      last_segment: bool) -> int:
        """Validate one segment; returns the next expected LSN.

        ``expected`` is None for the first segment (its first record
        pins the sequence — segments before a pruned prefix start at
        whatever LSN the prune left).
        """
        with open(path, "rb") as handle:
            buf = handle.read()
        offset = 0
        while offset < len(buf):
            parsed = _try_parse(buf, offset)
            if parsed is None:
                if last_segment and not _has_valid_record_after(buf, offset):
                    self._truncate_segment(path, buf, offset)
                    break
                raise WalCorruptionError(
                    f"corrupt WAL record in {os.path.basename(path)} at "
                    f"byte {offset}: damaged mid-log record (refusing to "
                    f"skip history)"
                )
            lsn, _, _, next_offset = parsed
            if expected is not None and lsn != expected:
                raise WalCorruptionError(
                    f"WAL sequence broken in {os.path.basename(path)}: "
                    f"expected LSN {expected}, found {lsn}"
                )
            expected = lsn + 1
            offset = next_offset
        if expected is None:
            # A segment that held only a torn record (or was empty).
            first = int(os.path.basename(path)[4:-4])
            expected = first
        return expected

    def _truncate_segment(self, path: str, buf: bytes, offset: int) -> None:
        """Repair a torn tail: cut the file back to the last good record."""
        self.truncated_records += 1
        self.metrics.counter("durability.wal_torn_records").add()
        with open(path, "r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())

    # -- appends -----------------------------------------------------------

    def append_update(self, data: dict) -> int:
        """Log one accepted update (call *before* applying it)."""
        lsn = self._append("update", data)
        self._unsynced_updates += 1
        if self.fsync_every and self._unsynced_updates >= self.fsync_every:
            self.sync()
        return lsn

    def append_anchor(self, data: dict, sync: bool = True) -> int:
        """Log a batch-anchor marker; ``sync`` fsyncs it (group commit:
        this is the one fsync that makes the whole batch durable)."""
        lsn = self._append("anchor", data)
        if sync:
            self.sync()
        return lsn

    def _append(self, record_type: str, data: dict) -> int:
        lsn = self.last_lsn + 1
        frame = encode_record(lsn, record_type, data)
        if self.tracer.enabled:
            with self.tracer.span("durability.wal_append",
                                  record_type=record_type, lsn=lsn,
                                  frame_bytes=len(frame)):
                self._write_frame(lsn, frame)
        else:
            self._write_frame(lsn, frame)
        return lsn

    def _write_frame(self, lsn: int, frame: bytes) -> None:
        start = perf_counter()
        if (self._handle is None
                or (self._segment_size + len(frame) > self.segment_max_bytes
                    and self._segment_size > 0)):
            self._rotate(lsn)
        self._handle.write(frame)
        # flush(): survives a killed *process* without paying for an
        # fsync; power-cut durability comes from sync() at anchors.
        self._handle.flush()
        self._segment_size += len(frame)
        self.last_lsn = lsn
        self._tmr_append.record(perf_counter() - start)
        self._ctr_records.add()
        self._ctr_bytes.add(len(frame))

    def _rotate(self, first_lsn: int) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
        self._segment_path = os.path.join(
            self.directory, _segment_name(first_lsn)
        )
        self._handle = open(self._segment_path, "ab")
        self._closed = False  # appends after close() reopen the log
        self._segment_size = 0
        _fsync_directory(self.directory)

    def sync(self) -> None:
        """fsync the current segment (the durability point)."""
        if self._handle is None:
            return
        start = perf_counter()
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._tmr_fsync.record(perf_counter() - start)
        self._ctr_fsyncs.add()
        self._unsynced_updates = 0

    def writable(self) -> bool:
        """Health probe: True while the log can still take appends.

        False once :meth:`close` ran, or when the segment handle was
        torn down underneath us, or when the directory itself stopped
        being writable.  A fresh log (no segment opened yet) counts as
        writable — the first append opens it lazily.  A False here
        flips the ops server's ``/healthz`` to 503.
        """
        if self._closed:
            return False
        if self._handle is not None and self._handle.closed:
            return False
        return os.access(self.directory, os.W_OK)

    def close(self) -> None:
        """Flush, fsync, and release the current segment handle."""
        self._closed = True
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    # -- reads -------------------------------------------------------------

    def records(self, since_lsn: int = 0) -> Iterator[Tuple[int, str, dict]]:
        """Yield ``(lsn, type, data)`` for every record with
        ``lsn > since_lsn``, re-validating frames as it reads."""
        for path in self.segment_paths():
            with open(path, "rb") as handle:
                buf = handle.read()
            offset = 0
            while offset < len(buf):
                parsed = _try_parse(buf, offset)
                if parsed is None:
                    raise WalCorruptionError(
                        f"corrupt WAL record in {os.path.basename(path)} "
                        f"at byte {offset}"
                    )
                lsn, record_type, data, offset = parsed
                if lsn > since_lsn:
                    yield lsn, record_type, data

    # -- maintenance -------------------------------------------------------

    def ensure_next_lsn(self, next_lsn: int) -> None:
        """Guarantee the next append uses at least ``next_lsn``.

        Needed after a snapshot-only recovery whose WAL segments were
        pruned: the snapshot's LSN must not be reissued."""
        if next_lsn - 1 > self.last_lsn:
            self.last_lsn = next_lsn - 1

    def prune(self, upto_lsn: int) -> int:
        """Delete whole segments whose records are all ``<= upto_lsn``.

        The active segment is never deleted.  Returns the number of
        segments removed.  Safe after a snapshot at ``upto_lsn``: every
        record a future recovery could need is newer."""
        segments = self.segment_paths()
        removed = 0
        # A segment is prunable iff the *next* segment starts at or
        # below upto_lsn + 1 (so every record in it is covered).
        for index, path in enumerate(segments[:-1]):
            next_first = int(os.path.basename(segments[index + 1])[4:-4])
            if next_first <= upto_lsn + 1 and path != self._segment_path:
                os.remove(path)
                removed += 1
            else:
                break
        if removed:
            _fsync_directory(self.directory)
            self.metrics.counter("durability.wal_segments_pruned").add(removed)
        return removed


def _fsync_directory(directory: str) -> None:
    """Make a rename/create/unlink in ``directory`` durable."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
