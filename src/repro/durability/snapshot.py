"""Checkpointing: atomic snapshots of the full framework state.

A snapshot captures, at a WAL position ``lsn``: every database table's
rows, the ledger's entries + Merkle leaf-hash frontier + root, the
engine's durable aggregate state (ciphertext values for Paillier —
never decrypted plaintext), and the pipeline counters.  Recovery loads
the newest valid snapshot and replays only WAL records after its LSN.

Files are written atomically — serialize to ``<name>.tmp``, fsync,
``os.replace`` into place, fsync the directory — so a crash mid-
snapshot leaves the previous snapshot untouched.  Each file embeds a
sha256 over its canonical body; :meth:`Snapshotter.latest` skips files
that fail the self-check (falling back to an older snapshot plus a
longer WAL replay) rather than serving corrupt state.
"""

import os
from time import perf_counter
from typing import Optional, Tuple

from repro.common.errors import DurabilityError
from repro.common.metrics import MetricsRegistry
from repro.common.serialization import (
    SerializationError,
    canonical_json,
    from_canonical_json,
)
from repro.crypto.hashing import digest_canonical
from repro.obs.tracing import NOOP_TRACER

SNAPSHOT_VERSION = 1


def _snapshot_name(lsn: int) -> str:
    return f"snap-{lsn:012d}.json"


def capture_state(framework, wal_lsn: int) -> dict:
    """Serialize a framework's durable state as of WAL position
    ``wal_lsn`` (everything recovery needs; nothing secret — key
    material is the operator's to re-supply)."""
    engine_state = None
    engine = framework.engine
    if engine is not None and hasattr(engine, "durable_state"):
        engine_state = engine.durable_state()
    return {
        "version": SNAPSHOT_VERSION,
        "wal_lsn": wal_lsn,
        "clock_now": framework.clock.now(),
        "counters": {
            "submitted": framework._submitted_count,
            "applied": framework._applied_count,
        },
        "databases": {
            database.name: {
                table_name: database.table(table_name).rows()
                for table_name in database.table_names()
            }
            for database in framework.databases
        },
        "ledger": framework.ledger.snapshot_state(),
        "engine": engine_state,
    }


class Snapshotter:
    """Writes, lists, and prunes checkpoint files in one directory."""

    def __init__(
        self,
        directory: str,
        snapshot_every: int = 256,
        keep: int = 2,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ):
        self.directory = directory
        self.snapshot_every = snapshot_every
        self.keep = keep
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer or NOOP_TRACER
        self._records_since = 0
        os.makedirs(directory, exist_ok=True)

    # -- writing -----------------------------------------------------------

    def take(self, framework, wal_lsn: int) -> str:
        """Checkpoint ``framework`` at ``wal_lsn``; returns the file path.

        Atomic: a crash at any point leaves either the previous
        snapshot set or the complete new file, never a half-written
        one."""
        start = perf_counter()
        body = capture_state(framework, wal_lsn)
        document = {
            "snapshot": body,
            "sha256": digest_canonical(body),
        }
        path = os.path.join(self.directory, _snapshot_name(wal_lsn))
        tmp_path = path + ".tmp"
        if self.tracer.enabled:
            with self.tracer.span("durability.snapshot", wal_lsn=wal_lsn):
                self._write_atomic(tmp_path, path, document)
        else:
            self._write_atomic(tmp_path, path, document)
        self._records_since = 0
        self.metrics.counter("durability.snapshots").add()
        self.metrics.timer("durability.snapshot").record(
            perf_counter() - start
        )
        self.prune_files()
        return path

    def _write_atomic(self, tmp_path: str, path: str, document: dict) -> None:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(document))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def maybe_take(self, framework, wal_lsn: int, new_records: int) -> Optional[str]:
        """Count ``new_records`` toward the cadence; snapshot when the
        running total reaches ``snapshot_every`` (0 disables)."""
        self._records_since += new_records
        if not self.snapshot_every or self._records_since < self.snapshot_every:
            return None
        return self.take(framework, wal_lsn)

    # -- reading -----------------------------------------------------------

    def snapshot_paths(self):
        """All snapshot files, oldest first."""
        names = sorted(
            n for n in os.listdir(self.directory)
            if n.startswith("snap-") and n.endswith(".json")
        )
        return [os.path.join(self.directory, n) for n in names]

    def latest(self) -> Optional[Tuple[int, dict]]:
        """The newest snapshot passing its sha256 self-check, as
        ``(wal_lsn, state)`` — or None when no usable snapshot exists.
        Invalid files are skipped (an older snapshot plus more WAL
        replay always reaches the same state)."""
        for path in reversed(self.snapshot_paths()):
            state = self._load(path)
            if state is not None:
                return state["wal_lsn"], state
        return None

    def _load(self, path: str) -> Optional[dict]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = from_canonical_json(handle.read())
        except (OSError, SerializationError):
            return None
        if not isinstance(document, dict):
            return None
        body = document.get("snapshot")
        digest = document.get("sha256")
        if not isinstance(body, dict) or not isinstance(digest, str):
            return None
        if digest_canonical(body) != digest:
            return None
        if body.get("version") != SNAPSHOT_VERSION:
            return None
        return body

    # -- maintenance -------------------------------------------------------

    def prune_files(self) -> int:
        """Drop all but the newest ``keep`` snapshots; returns the
        number removed."""
        paths = self.snapshot_paths()
        removed = 0
        for path in paths[:-self.keep] if self.keep else paths:
            os.remove(path)
            removed += 1
        return removed


def restore_state(framework, state: dict) -> None:
    """Load a captured state into a freshly constructed framework.

    The caller must have built the same topology (databases, tables,
    constraints, engine with the same key material) the snapshot was
    taken from; this function refuses to overwrite anything already
    populated."""
    if len(framework.ledger) or framework._submitted_count:
        raise DurabilityError(
            "refusing to restore a snapshot into a framework that has "
            "already processed updates — recover into a fresh instance"
        )
    for name, tables in state["databases"].items():
        database = None
        for candidate in framework.databases:
            if candidate.name == name:
                database = candidate
                break
        if database is None:
            raise DurabilityError(
                f"snapshot names database {name!r}, which this framework "
                f"does not have — topology mismatch"
            )
        for table_name, rows in tables.items():
            table = database.table(table_name)
            if len(table):
                raise DurabilityError(
                    f"refusing to restore into non-empty table "
                    f"{table_name!r} of {name!r}"
                )
            for row in rows:
                table.upsert(row)
    framework.ledger.restore_state(state["ledger"])
    engine = framework.engine
    if engine is not None and hasattr(engine, "restore_durable_state"):
        engine.restore_durable_state(state["engine"])
    elif state["engine"] is not None:
        raise DurabilityError(
            "snapshot carries engine state but the framework engine "
            "cannot restore it"
        )
    counters = state["counters"]
    framework._submitted_count = counters["submitted"]
    framework._applied_count = counters["applied"]
    clock_now = state["clock_now"]
    if hasattr(framework.clock, "advance_to") and clock_now > framework.clock.now():
        framework.clock.advance_to(clock_now)
