"""The discrete-event message-passing simulator.

Nodes register with the network and implement ``on_message``.  The
network keeps a priority queue of pending deliveries; ``run`` drains it
(optionally up to a time horizon).  Latency is drawn from a seeded
:class:`LatencyModel`, loss is Bernoulli per message, and partitions
block delivery between groups.  Timers let protocol code schedule its
own callbacks (view-change timeouts, batching ticks).
"""

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.common.clock import SimClock
from repro.common.errors import ProtocolError
from repro.common.metrics import MetricsRegistry
from repro.common.randomness import deterministic_rng
from repro.obs.tracing import NOOP_TRACER


@dataclass(frozen=True)
class Message:
    """One network message."""

    src: str
    dst: str
    kind: str
    body: Dict[str, Any] = field(default_factory=dict)


class LatencyModel:
    """Base + jitter latency in simulated seconds."""

    def __init__(self, base: float = 0.001, jitter: float = 0.0005, seed: int = 7):
        self.base = base
        self.jitter = jitter
        self._rng = deterministic_rng(seed)

    def sample(self) -> float:
        if self.jitter <= 0:
            return self.base
        # Uniform jitter in [0, jitter), quantized for determinism.
        return self.base + self._rng.randbelow(10_000) / 10_000 * self.jitter


@dataclass(frozen=True)
class NetworkProfile:
    """A named latency/loss shape for :class:`SimNetwork`.

    The federated benchmarks and the replication drivers sweep these
    instead of raw constructor arguments, so "the WAN rows" in one
    artifact mean exactly the same network as in another.  ``build``
    returns a fresh network (own clock, own RNG) — profiles are
    recipes, never shared state.
    """

    name: str
    base_latency: float
    jitter: float
    loss_rate: float = 0.0
    per_message_cost: float = 0.0

    def build(self, metrics: Optional[MetricsRegistry] = None,
              tracer=None, seed: int = 11) -> "SimNetwork":
        """A fresh :class:`SimNetwork` with this profile's shape."""
        return SimNetwork(
            latency=LatencyModel(base=self.base_latency, jitter=self.jitter),
            loss_rate=self.loss_rate,
            seed=seed,
            metrics=metrics,
            per_message_cost=self.per_message_cost,
            tracer=tracer,
        )

    def to_dict(self) -> dict:
        """Serializable form for benchmark artifacts."""
        return {
            "name": self.name,
            "base_latency": self.base_latency,
            "jitter": self.jitter,
            "loss_rate": self.loss_rate,
            "per_message_cost": self.per_message_cost,
        }


#: The canonical sweep set: a datacenter-local network, a wide-area
#: one (25ms +/- 10ms), and a lossy edge profile that exercises the
#: drivers' retransmission paths.
NETWORK_PROFILES: Dict[str, NetworkProfile] = {
    "lan": NetworkProfile("lan", base_latency=0.001, jitter=0.0005),
    "wan": NetworkProfile("wan", base_latency=0.025, jitter=0.010),
    "lossy": NetworkProfile("lossy", base_latency=0.005, jitter=0.002,
                            loss_rate=0.02),
}


def network_profile(profile) -> NetworkProfile:
    """Resolve ``profile`` — a :class:`NetworkProfile` or a name from
    :data:`NETWORK_PROFILES` — fail-closed on unknown names."""
    if isinstance(profile, NetworkProfile):
        return profile
    resolved = NETWORK_PROFILES.get(profile)
    if resolved is None:
        raise ProtocolError(
            f"unknown network profile {profile!r}; "
            f"known: {sorted(NETWORK_PROFILES)}"
        )
    return resolved


class Node:
    """Base class for protocol participants."""

    def __init__(self, name: str):
        self.name = name
        self.network: Optional["SimNetwork"] = None

    def attach(self, network: "SimNetwork") -> None:
        self.network = network

    def send(self, dst: str, kind: str, body: Optional[Dict[str, Any]] = None) -> None:
        self.network.send(Message(self.name, dst, kind, body or {}))

    def broadcast(self, kind: str, body: Optional[Dict[str, Any]] = None,
                  include_self: bool = False) -> None:
        self.network.broadcast(self.name, kind, body or {}, include_self)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> int:
        return self.network.set_timer(delay, callback)

    def cancel_timer(self, timer_id: int) -> None:
        self.network.cancel_timer(timer_id)

    def now(self) -> float:
        return self.network.clock.now()

    def on_message(self, message: Message) -> None:  # pragma: no cover
        raise NotImplementedError


class SimNetwork:
    """The event loop plus the node registry."""

    def __init__(
        self,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        seed: int = 11,
        metrics: Optional[MetricsRegistry] = None,
        per_message_cost: float = 0.0,
        tracer=None,
    ):
        self.clock = SimClock()
        self.latency = latency or LatencyModel()
        self.loss_rate = loss_rate
        self.metrics = metrics or MetricsRegistry()
        # Message hops/drops become tracer events (timestamped on the
        # simulated clock); protocols on this network reuse the same
        # tracer for their round and view-change spans.
        self.tracer = tracer or NOOP_TRACER
        # Seconds of node compute consumed per handled message.  Zero
        # models infinitely fast nodes (protocol-logic experiments);
        # a positive value caps per-node throughput, which is what
        # makes the sharding-scalability shape (E10) visible.
        self.per_message_cost = per_message_cost
        self._rng = deterministic_rng(seed)
        self._nodes: Dict[str, Node] = {}
        self._queue: List[Tuple[float, int, Any]] = []
        self._sequence = itertools.count()
        self._partitions: List[Set[str]] = []
        self._cancelled_timers: Set[int] = set()
        self._timer_ids = itertools.count(1)
        self._node_busy_until: Dict[str, float] = {}

    # -- registry --------------------------------------------------------

    def add_node(self, node: Node) -> None:
        if node.name in self._nodes:
            raise ProtocolError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        node.attach(self)

    def node(self, name: str) -> Node:
        return self._nodes[name]

    def node_names(self) -> List[str]:
        return sorted(self._nodes)

    # -- faults ----------------------------------------------------------

    def partition(self, *groups: Set[str]) -> None:
        """Install a partition: messages may only flow within a group."""
        self._partitions = [set(g) for g in groups]

    def heal_partition(self) -> None:
        self._partitions = []

    def _blocked(self, src: str, dst: str) -> bool:
        if not self._partitions:
            return False
        for group in self._partitions:
            if src in group:
                return dst not in group
        return False  # src in no group: unrestricted

    # -- sending -----------------------------------------------------------

    def send(self, message: Message) -> None:
        tracing = self.tracer.enabled
        self.metrics.counter("net.messages").add()
        self.metrics.counter("net.bytes").add(_approx_size(message))
        if self._blocked(message.src, message.dst):
            self.metrics.counter("net.partition_drops").add()
            if tracing:
                self._hop_event("net.drop", message, reason="partition")
            return
        if self.loss_rate > 0 and self._rng.randbelow(10_000) < self.loss_rate * 10_000:
            self.metrics.counter("net.losses").add()
            if tracing:
                self._hop_event("net.drop", message, reason="loss")
            return
        latency = self.latency.sample()
        deliver_at = self.clock.now() + latency
        if tracing:
            self._hop_event("net.hop", message, latency=latency,
                            deliver_at=deliver_at)
        heapq.heappush(
            self._queue, (deliver_at, next(self._sequence), ("msg", message))
        )

    def _hop_event(self, kind: str, message: Message, **extra) -> None:
        # Protocol payloads that carry a trace_id (e.g. pipeline
        # updates replicated through consensus) stay correlated with
        # their pipeline trace across the wire.
        self.tracer.event(
            kind,
            timestamp=self.clock.now(),
            src=message.src,
            dst=message.dst,
            msg_kind=message.kind,
            trace_id=message.body.get("trace_id"),
            **extra,
        )

    def broadcast(
        self, src: str, kind: str, body: Dict[str, Any], include_self: bool
    ) -> None:
        for name in self._nodes:
            if name == src and not include_self:
                continue
            self.send(Message(src, name, kind, body))

    def set_timer(self, delay: float, callback: Callable[[], None]) -> int:
        timer_id = next(self._timer_ids)
        fire_at = self.clock.now() + delay
        heapq.heappush(
            self._queue, (fire_at, next(self._sequence), ("timer", timer_id, callback))
        )
        return timer_id

    def cancel_timer(self, timer_id: int) -> None:
        self._cancelled_timers.add(timer_id)

    # -- event loop ---------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> int:
        """Drain the event queue; returns the number of events processed.

        Stops when the queue is empty, simulated time passes ``until``,
        or ``max_events`` is hit (runaway-protocol guard).
        """
        processed = 0
        while self._queue and processed < max_events:
            at, _, event = self._queue[0]
            if until is not None and at > until:
                break
            heapq.heappop(self._queue)
            if event[0] == "timer" and event[1] in self._cancelled_timers:
                # Discard without advancing the clock: a cancelled timer
                # has no observable effect, so it must not stretch the
                # measured simulation duration.
                self._cancelled_timers.discard(event[1])
                continue
            if event[0] == "msg" and self.per_message_cost > 0:
                # Capacity model: a busy destination defers delivery.
                busy_until = self._node_busy_until.get(event[1].dst, 0.0)
                if busy_until > at:
                    heapq.heappush(
                        self._queue,
                        (busy_until, next(self._sequence), event),
                    )
                    continue
            self.clock.advance_to(at)
            if event[0] == "msg":
                message = event[1]
                node = self._nodes.get(message.dst)
                if node is not None:
                    if self.per_message_cost > 0:
                        self._node_busy_until[message.dst] = (
                            at + self.per_message_cost
                        )
                    node.on_message(message)
            else:
                _, timer_id, callback = event
                callback()
            processed += 1
        if until is not None and (not self._queue or self._queue[0][0] > until):
            self.clock.advance_to(max(self.clock.now(), until))
        return processed

    def pending(self) -> int:
        return len(self._queue)

    # -- telemetry accessors ----------------------------------------------
    #
    # Reporting code (consensus ClusterStats, benchmarks) should read
    # through these instead of reaching into ``network.metrics``.

    @property
    def message_count(self) -> int:
        return self.metrics.counter_value("net.messages")

    def telemetry(self) -> Dict[str, float]:
        """The ``net.*`` counters as a sorted flat dict: ``messages``
        and ``partition_drops``/``losses`` report counts; ``bytes``
        reports the summed wire size."""
        snapshot = self.metrics.snapshot()["counters"]
        out: Dict[str, float] = {}
        for name in sorted(snapshot):
            if not name.startswith("net."):
                continue
            counter = snapshot[name]
            out[name] = counter["total"] if name == "net.bytes" else counter["count"]
        return out


def _approx_size(message: Message) -> int:
    """Rough wire size used for the bytes counter."""
    return 64 + sum(
        len(str(k)) + len(str(v)) for k, v in message.body.items()
    )
