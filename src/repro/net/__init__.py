"""Deterministic discrete-event network simulation.

Consensus protocols and MPC rounds run over :class:`SimNetwork`, which
delivers messages with configurable latency, loss, and partitions, in a
deterministic order under a fixed seed.  Simulated time makes protocol
throughput/latency comparisons (Paxos vs PBFT vs sharded, Section 6)
reproducible and independent of host load.
"""

from repro.net.simnet import (
    NETWORK_PROFILES,
    LatencyModel,
    Message,
    NetworkProfile,
    Node,
    SimNetwork,
    network_profile,
)

__all__ = [
    "SimNetwork",
    "Message",
    "Node",
    "LatencyModel",
    "NetworkProfile",
    "NETWORK_PROFILES",
    "network_profile",
]
