"""repro — a full reproduction of PReVer (EDBT 2022).

PReVer is a universal framework for managing **regulated dynamic
data** in a privacy-preserving manner: updates arrive at untrusted or
mutually distrustful data managers, are verified against constraints
and regulations whose contents (like the data and updates themselves)
may be private, and are incorporated into append-only-anchored
databases whose integrity any participant can audit.

Quickstart::

    from repro import (
        Database, TableSchema, ColumnType, Update, UpdateOperation,
        upper_bound_regulation, single_private_database,
    )

    schema = TableSchema.build(
        "emissions",
        [("id", ColumnType.INT), ("org", ColumnType.TEXT),
         ("co2", ColumnType.INT)],
        primary_key=["id"],
    )
    db = Database("cloud-manager")
    db.create_table(schema)
    cap = upper_bound_regulation("iso-cap", "emissions", "co2",
                                 bound=100, match_columns=["org"])
    prever = single_private_database(db, [cap], engine="paillier")
    result = prever.submit(Update(
        table="emissions", operation=UpdateOperation.INSERT,
        payload={"id": 1, "org": "acme", "co2": 60},
    ))
    assert result.accepted

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
benchmark results.
"""

from repro.database import Database, TableSchema
from repro.database.schema import ColumnType
from repro.database.expr import col, lit, update_field
from repro.model.update import Update, UpdateOperation, UpdateStatus
from repro.model.constraints import (
    Constraint,
    ConstraintKind,
    AggregateSpec,
    WindowSpec,
    upper_bound_regulation,
    lower_bound_regulation,
)
from repro.model.participants import (
    Authority,
    DataManager,
    DataOwner,
    DataProducer,
)
from repro.model.policy import PrivacyPolicy, Visibility
from repro.model.threat import AdversaryClass, CollusionStructure, ThreatModel
from repro.core.framework import PReVer
from repro.consensus.driver import ReplicationPlan
from repro.core.replicated import ReplicatedShard
from repro.core.sharded import ShardedDigest, ShardedPReVer, ShardPlan, ShardSpec
from repro.core.contexts import (
    single_private_database,
    federated_private_databases,
    public_database,
)
from repro.core.separ import SeparSystem
from repro.ledger.central import CentralLedger
from repro.ledger.audit import LedgerAuditor
from repro.model.dsl import parse_constraint, parse_regulation
from repro.obs import (
    EventLog,
    NOOP_TRACER,
    Tracer,
    metrics_to_json,
    to_prometheus,
)
from repro.durability import (
    Durability,
    RecoveryManager,
    RecoveryReport,
    SimulatedCrash,
)

__version__ = "1.0.0"

__all__ = [
    "Database",
    "TableSchema",
    "ColumnType",
    "col",
    "lit",
    "update_field",
    "Update",
    "UpdateOperation",
    "UpdateStatus",
    "Constraint",
    "ConstraintKind",
    "AggregateSpec",
    "WindowSpec",
    "upper_bound_regulation",
    "lower_bound_regulation",
    "Authority",
    "DataManager",
    "DataOwner",
    "DataProducer",
    "PrivacyPolicy",
    "Visibility",
    "AdversaryClass",
    "CollusionStructure",
    "ThreatModel",
    "PReVer",
    "ReplicationPlan",
    "ReplicatedShard",
    "ShardedPReVer",
    "ShardSpec",
    "ShardPlan",
    "ShardedDigest",
    "single_private_database",
    "federated_private_databases",
    "public_database",
    "SeparSystem",
    "CentralLedger",
    "LedgerAuditor",
    "parse_constraint",
    "parse_regulation",
    "EventLog",
    "NOOP_TRACER",
    "Tracer",
    "metrics_to_json",
    "to_prometheus",
    "Durability",
    "RecoveryManager",
    "RecoveryReport",
    "SimulatedCrash",
    "__version__",
]
