"""Pedersen commitments over a Schnorr group.

``Commit(m, r) = g^m * h^r`` is perfectly hiding and computationally
binding (assuming the discrete log of h base g is unknown, which our
group derives via hash-to-group).  Commitments are additively
homomorphic, which the ZK range proofs and the token scheme rely on.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.errors import IntegrityError
from repro.crypto.group import SchnorrGroup


@dataclass(frozen=True)
class PedersenCommitment:
    """The committed group element; carries no secret information."""

    value: int

    def __mul__(self, other):
        # Multiplying commitments adds the committed values; the caller
        # must track the combined randomness itself.
        raise TypeError(
            "use PedersenCommitter.combine so the group modulus is applied"
        )

    def to_dict(self) -> dict:
        return {"value": self.value}


class PedersenCommitter:
    """Creates, combines, and verifies Pedersen commitments."""

    def __init__(self, group: Optional[SchnorrGroup] = None, label: bytes = b"prever"):
        self.group = group or SchnorrGroup.default()
        self.g = self.group.g
        self.h = self.group.independent_generator(b"pedersen-h:" + label)

    def commit(self, message: int, rng=None) -> Tuple[PedersenCommitment, int]:
        """Commit to ``message``; returns (commitment, randomness)."""
        randomness = self.group.random_exponent(rng)
        return self.commit_with(message, randomness), randomness

    def commit_with(self, message: int, randomness: int) -> PedersenCommitment:
        value = (
            self.group.power(self.g, message)
            * self.group.power(self.h, randomness)
            % self.group.p
        )
        return PedersenCommitment(value=value)

    def verify(
        self, commitment: PedersenCommitment, message: int, randomness: int
    ) -> bool:
        return self.commit_with(message, randomness).value == commitment.value

    def open_or_raise(
        self, commitment: PedersenCommitment, message: int, randomness: int
    ) -> None:
        if not self.verify(commitment, message, randomness):
            raise IntegrityError("Pedersen commitment opening failed")

    def combine(self, *commitments: PedersenCommitment) -> PedersenCommitment:
        """Homomorphic addition: product of commitments commits to the
        sum of messages under the sum of randomness values."""
        value = 1
        for commitment in commitments:
            value = value * commitment.value % self.group.p
        return PedersenCommitment(value=value)

    def scale(self, commitment: PedersenCommitment, scalar: int) -> PedersenCommitment:
        """Commitment to ``scalar * m`` with randomness ``scalar * r``."""
        return PedersenCommitment(self.group.power(commitment.value, scalar))
