"""Textbook-with-hashing RSA, used as the base for blind signatures.

The token scheme (RC2, Separ) needs *blind* signatures, which the RSA
construction supports cleanly.  We sign the full-domain hash of the
message (FDH-RSA), not the raw message, which is the standard fix for
textbook RSA's malleability.
"""

import math
from dataclasses import dataclass

from repro.common.errors import PReVerError
from repro.common.randomness import SystemRandomSource
from repro.crypto.hashing import hash_to_int
from repro.crypto.numbers import generate_prime, modinv

DEFAULT_RSA_BITS = 768
PUBLIC_EXPONENT = 65537


class RSAError(PReVerError):
    pass


@dataclass(frozen=True)
class RSAPublicKey:
    n: int
    e: int

    def fdh(self, message: bytes) -> int:
        """Full-domain hash of the message into Z_n."""
        return hash_to_int(message, self.n, domain=b"rsa-fdh")

    def verify(self, message: bytes, signature: int) -> bool:
        if not 0 < signature < self.n:
            return False
        return pow(signature, self.e, self.n) == self.fdh(message)


@dataclass(frozen=True)
class RSAPrivateKey:
    public_key: RSAPublicKey
    d: int

    def sign(self, message: bytes) -> int:
        return self.sign_raw(self.public_key.fdh(message))

    def sign_raw(self, value: int) -> int:
        """Sign a raw residue — the blind-signature path uses this."""
        if not 0 <= value < self.public_key.n:
            raise RSAError("value out of range for this modulus")
        return pow(value, self.d, self.public_key.n)


@dataclass(frozen=True)
class RSAKeyPair:
    public_key: RSAPublicKey
    private_key: RSAPrivateKey


def generate_rsa_keypair(bits: int = DEFAULT_RSA_BITS, rng=None) -> RSAKeyPair:
    rng = rng or SystemRandomSource()
    half = bits // 2
    while True:
        p = generate_prime(half, rng=rng)
        q = generate_prime(half, rng=rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if math.gcd(PUBLIC_EXPONENT, phi) != 1:
            continue
        n = p * q
        d = modinv(PUBLIC_EXPONENT, phi)
        public = RSAPublicKey(n=n, e=PUBLIC_EXPONENT)
        return RSAKeyPair(public_key=public, private_key=RSAPrivateKey(public, d))
