"""Merkle trees with inclusion and consistency proofs (RFC-6962 style).

The append-only ledgers of RC4 hash their entries into a Merkle tree.
Two proof types matter:

* **inclusion**: entry i is under digest D of an n-entry tree;
* **consistency**: the tree with digest D_m (m entries) is a prefix of
  the tree with digest D_n (n entries) — i.e. history was only ever
  appended to, never rewritten.

Leaf and node hashes are domain-separated (0x00 / 0x01 prefixes) to
block second-preimage splicing attacks.
"""

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from repro.common.errors import IntegrityError
from repro.crypto.hashing import sha256d

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def leaf_hash(data: bytes) -> bytes:
    return sha256d(_LEAF_PREFIX + data, domain=b"merkle")


def _leaf_hash_chunk(datas: List[bytes]) -> List[bytes]:
    """Executor chunk function: hash a contiguous run of leaf data.

    Leaf hashes are independent of each other and of tree position, so
    hashing chunks in worker processes and concatenating in order is
    bit-identical to hashing serially — every root and proof derived
    from them is unchanged.
    """
    return [leaf_hash(data) for data in datas]


def node_hash(left: bytes, right: bytes) -> bytes:
    return sha256d(_NODE_PREFIX + left + right, domain=b"merkle")


@dataclass(frozen=True)
class InclusionProof:
    """Audit path for one leaf."""

    leaf_index: int
    tree_size: int
    path: List[bytes] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "leaf_index": self.leaf_index,
            "tree_size": self.tree_size,
            "path": list(self.path),
        }


@dataclass(frozen=True)
class ConsistencyProof:
    """Nodes proving an old tree is a prefix of a new tree."""

    old_size: int
    new_size: int
    path: List[bytes] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "old_size": self.old_size,
            "new_size": self.new_size,
            "path": list(self.path),
        }


class MerkleTree:
    """An appendable Merkle tree storing leaf hashes.

    Root/proof computation uses the recursive RFC-6962 split (largest
    power of two strictly less than n), so proofs interoperate with the
    standard verification equations implemented below.
    """

    def __init__(self, leaves: Sequence[bytes] = ()):  # raw leaf *data*
        self._leaf_hashes: List[bytes] = [leaf_hash(data) for data in leaves]

    @classmethod
    def from_leaf_hashes(cls, hashes: Sequence[bytes]) -> "MerkleTree":
        """Rebuild a tree from previously computed leaf hashes.

        Used by the durability layer to restore a ledger tree from a
        snapshot without rehashing every entry.  The caller is expected
        to verify the resulting :meth:`root` against an independently
        anchored digest (snapshots store one) — the hashes themselves
        are trusted only up to that check.
        """
        tree = cls()
        tree._leaf_hashes = list(hashes)
        return tree

    def leaf_hashes(self) -> List[bytes]:
        """The leaf-hash vector, in append order (a defensive copy)."""
        return list(self._leaf_hashes)

    def __len__(self) -> int:
        return len(self._leaf_hashes)

    def append(self, data: bytes) -> int:
        """Append raw leaf data; returns the new leaf's index."""
        self._leaf_hashes.append(leaf_hash(data))
        return len(self._leaf_hashes) - 1

    def extend(self, datas: Iterable[bytes], executor=None) -> range:
        """Append many leaves at once; returns their index range.

        Equivalent to appending each in order — leaf hashes (and so
        every root and proof) are identical — but avoids per-leaf call
        overhead on the batched ledger path.  With a parallel
        ``executor`` the leaf hashing is chunked across workers and the
        hashes are spliced back in order; the tree structure itself is
        always combined serially, so roots and proofs stay
        bit-identical to the serial path.
        """
        start = len(self._leaf_hashes)
        if executor is not None and getattr(executor, "parallel", False):
            self._leaf_hashes.extend(
                executor.map_chunks(_leaf_hash_chunk, list(datas),
                                    label="merkle.leaves")
            )
        else:
            self._leaf_hashes.extend(leaf_hash(data) for data in datas)
        return range(start, len(self._leaf_hashes))

    def root(self, size: int = None) -> bytes:
        """Root over the first ``size`` leaves (default: all).

        The empty tree's root is the hash of the empty string, matching
        RFC 6962.
        """
        size = len(self._leaf_hashes) if size is None else size
        if size > len(self._leaf_hashes) or size < 0:
            raise IntegrityError("tree size out of range")
        if size == 0:
            return sha256d(b"", domain=b"merkle")
        return self._subtree_root(0, size)

    def _subtree_root(self, start: int, size: int) -> bytes:
        if size == 1:
            return self._leaf_hashes[start]
        k = _largest_power_of_two_below(size)
        left = self._subtree_root(start, k)
        right = self._subtree_root(start + k, size - k)
        return node_hash(left, right)

    def inclusion_proof(self, index: int, size: int = None) -> InclusionProof:
        size = len(self._leaf_hashes) if size is None else size
        if not 0 <= index < size <= len(self._leaf_hashes):
            raise IntegrityError("leaf index out of range")
        path = self._audit_path(index, 0, size)
        return InclusionProof(leaf_index=index, tree_size=size, path=path)

    def _audit_path(self, index: int, start: int, size: int) -> List[bytes]:
        if size == 1:
            return []
        k = _largest_power_of_two_below(size)
        if index < k:
            path = self._audit_path(index, start, k)
            path.append(self._subtree_root(start + k, size - k))
        else:
            path = self._audit_path(index - k, start + k, size - k)
            path.append(self._subtree_root(start, k))
        return path

    def consistency_proof(self, old_size: int, new_size: int = None) -> ConsistencyProof:
        new_size = len(self._leaf_hashes) if new_size is None else new_size
        if not 0 < old_size <= new_size <= len(self._leaf_hashes):
            raise IntegrityError("invalid sizes for consistency proof")
        if old_size == new_size:
            return ConsistencyProof(old_size, new_size, [])
        path = self._consistency_subproof(old_size, 0, new_size, True)
        return ConsistencyProof(old_size=old_size, new_size=new_size, path=path)

    def _consistency_subproof(
        self, m: int, start: int, n: int, complete: bool
    ) -> List[bytes]:
        if m == n:
            return [] if complete else [self._subtree_root(start, n)]
        k = _largest_power_of_two_below(n)
        if m <= k:
            path = self._consistency_subproof(m, start, k, complete)
            path.append(self._subtree_root(start + k, n - k))
        else:
            path = self._consistency_subproof(m - k, start + k, n - k, False)
            path.append(self._subtree_root(start, k))
        return path


def _largest_power_of_two_below(n: int) -> int:
    """Largest power of two strictly less than n (n >= 2)."""
    k = 1
    while k * 2 < n:
        k *= 2
    return k


def verify_inclusion(root: bytes, data: bytes, proof: InclusionProof) -> bool:
    """Check that leaf ``data`` is under ``root`` via ``proof``.

    Verification replays the prover's recursion: the audit path is
    consumed from the top (end of the list) downward, so the computed
    root is correct iff every sibling hash is.
    """
    index, size = proof.leaf_index, proof.tree_size
    if not 0 <= index < size:
        return False
    path = list(proof.path)
    try:
        computed = _root_from_audit_path(index, size, leaf_hash(data), path)
    except IntegrityError:
        return False
    return not path and computed == root


def _root_from_audit_path(
    index: int, size: int, digest: bytes, path: List[bytes]
) -> bytes:
    if size == 1:
        return digest
    if not path:
        raise IntegrityError("audit path too short")
    sibling = path.pop()
    k = _largest_power_of_two_below(size)
    if index < k:
        sub = _root_from_audit_path(index, k, digest, path)
        return node_hash(sub, sibling)
    sub = _root_from_audit_path(index - k, size - k, digest, path)
    return node_hash(sibling, sub)


def verify_consistency(
    old_root: bytes, new_root: bytes, proof: ConsistencyProof
) -> bool:
    """Check that the ``old_size``-entry tree with ``old_root`` is a
    prefix of the ``new_size``-entry tree with ``new_root``.

    Mirrors the prover's recursion, reconstructing both roots from the
    proof nodes.
    """
    m, n = proof.old_size, proof.new_size
    if m == n:
        return old_root == new_root and not proof.path
    if not 0 < m < n:
        return False
    path = list(proof.path)
    try:
        computed_old, computed_new = _roots_from_consistency_path(
            m, n, True, path, old_root
        )
    except IntegrityError:
        return False
    return not path and computed_old == old_root and computed_new == new_root


def _roots_from_consistency_path(
    m: int, n: int, complete: bool, path: List[bytes], old_root: bytes
):
    """Return (old_subtree_hash, new_subtree_hash) for this recursion
    level, consuming proof nodes from the end of ``path``."""
    if m == n:
        if complete:
            # This whole subtree is exactly the old tree.
            return old_root, old_root
        if not path:
            raise IntegrityError("consistency path too short")
        shared = path.pop()
        return shared, shared
    if not path:
        raise IntegrityError("consistency path too short")
    sibling = path.pop()
    k = _largest_power_of_two_below(n)
    if m <= k:
        old_sub, new_sub = _roots_from_consistency_path(
            m, k, complete, path, old_root
        )
        # The right sibling exists only in the new tree.
        return old_sub, node_hash(new_sub, sibling)
    old_sub, new_sub = _roots_from_consistency_path(
        m - k, n - k, False, path, old_root
    )
    # The left subtree of size k is shared by both trees.
    return node_hash(sibling, old_sub), node_hash(sibling, new_sub)
