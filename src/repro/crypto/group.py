"""A Schnorr group: the prime-order subgroup of Z_p* for p = 2q + 1.

Pedersen commitments, Schnorr signatures, exponential ElGamal and the
sigma protocols all operate in this group.  A group object carries
(p, q, g) plus helpers for sampling exponents and finding independent
generators (for Pedersen's second base ``h``).
"""

from dataclasses import dataclass

from repro.common.randomness import SystemRandomSource
from repro.crypto.backend import fixed_base, powmod
from repro.crypto.numbers import generate_safe_prime, jacobi
from repro.crypto.hashing import hash_to_int
from repro.crypto.numbers import int_to_bytes

# A precomputed 256-bit safe-prime group so tests and examples don't pay
# safe-prime generation cost on every run.  p = 2q + 1, g generates the
# order-q subgroup.
_DEFAULT_P = int(
    "f9e844c492ec33833e3da2a37d60d4ae233b69d4613449d30c996bb220d133db", 16
)
_DEFAULT_Q = (_DEFAULT_P - 1) // 2
_DEFAULT_GROUP = None


@dataclass(frozen=True)
class SchnorrGroup:
    """Immutable description of a prime-order subgroup of Z_p*."""

    p: int
    q: int
    g: int

    @classmethod
    def default(cls) -> "SchnorrGroup":
        """The precomputed 256-bit group (fast; fine for a simulator).

        Memoized: the hot update-authentication path asks for it once
        per update, and generator search need not repeat.
        """
        global _DEFAULT_GROUP
        if _DEFAULT_GROUP is None:
            _DEFAULT_GROUP = cls.from_safe_prime(_DEFAULT_P, _DEFAULT_Q)
        return _DEFAULT_GROUP

    @classmethod
    def from_safe_prime(cls, p: int, q: int) -> "SchnorrGroup":
        if p != 2 * q + 1:
            raise ValueError("p must equal 2q + 1")
        g = cls._find_generator(p, q)
        return cls(p=p, q=q, g=g)

    @classmethod
    def generate(cls, bits: int = 256, rng=None) -> "SchnorrGroup":
        """Generate a fresh safe-prime group (slow for large bits)."""
        p, q = generate_safe_prime(bits, rng=rng)
        return cls.from_safe_prime(p, q)

    @staticmethod
    def _find_generator(p: int, q: int) -> int:
        # Squaring any element lands in the order-q subgroup; take the
        # smallest square that is not 1.
        for candidate in range(2, 1000):
            g = pow(candidate, 2, p)
            if g != 1:
                return g
        raise ValueError("no generator found (degenerate group)")

    def random_exponent(self, rng=None) -> int:
        """Uniform exponent in [1, q)."""
        rng = rng or SystemRandomSource()
        return rng.randrange(1, self.q)

    def power(self, base: int, exponent: int) -> int:
        return powmod(base, exponent % self.q, self.p)

    def power_of_g(self, exponent: int) -> int:
        """``g ** (exponent mod q) mod p`` via a warm fixed-base table.

        The generator is the hottest base in the system (every
        signature, commitment, and ElGamal encryption raises it), so
        its table is built eagerly and shared per process through the
        :func:`repro.crypto.backend.fixed_base` cache — value-identical
        to :meth:`power` with ``base=g``.
        """
        return fixed_base(self.g, self.p, self.q.bit_length(),
                          warm=True).pow(exponent % self.q)

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def is_member(self, element: int) -> bool:
        """Check membership in the order-q subgroup.

        For a safe-prime group (p = 2q + 1, the only kind this module
        constructs) the order-q subgroup is exactly the quadratic
        residues, so Euler's criterion ``e^q == 1`` is equivalent to
        Legendre symbol 1 — computable by quadratic reciprocity without
        a full-size modular exponentiation.  Non-safe moduli (possible
        via direct dataclass construction) keep the generic check.
        """
        if not 1 <= element < self.p:
            return False
        if self.p == 2 * self.q + 1:
            return jacobi(element, self.p) == 1
        return powmod(element, self.q, self.p) == 1

    def independent_generator(self, label: bytes) -> int:
        """Derive a second generator with unknown discrete log w.r.t. g.

        Hashes the label into the group ("nothing up my sleeve"), so no
        party knows log_g(h) — required for Pedersen binding.
        """
        seed = label + int_to_bytes(self.p)
        x = hash_to_int(seed, self.p, domain=b"gen")
        h = pow(x, 2, self.p)  # force into the subgroup
        if h in (0, 1):
            return self.independent_generator(label + b"'")
        return h
