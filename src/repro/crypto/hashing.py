"""Hash utilities with domain separation.

All protocol hashes go through these helpers so that a hash computed in
one role (e.g. a Merkle leaf) can never collide with a hash computed in
another role (e.g. a Fiat–Shamir challenge) — a standard hygiene rule
that several real-world ledger bugs trace back to.
"""

import hashlib
import hmac
from typing import Any

from repro.common.serialization import canonical_bytes


def digest_canonical(value: Any, domain: bytes = b"") -> str:
    """Hex SHA-256 of ``value``'s canonical JSON bytes.

    The one helper for the ``sha256(canonical_bytes(...))`` idiom that
    used to be re-spelled at every call site (PBFT message digests,
    snapshot integrity digests, ...).  ``domain`` optionally prefixes
    the hashed bytes for role separation; the existing call sites all
    use the bare form, so their digests are unchanged.
    """
    return hashlib.sha256(domain + canonical_bytes(value)).hexdigest()


def sha256d(data: bytes, domain: bytes = b"") -> bytes:
    """Double SHA-256 with an optional domain-separation prefix."""
    inner = hashlib.sha256(domain + data).digest()
    return hashlib.sha256(inner).digest()


def hash_to_int(data: bytes, modulus: int, domain: bytes = b"FS") -> int:
    """Hash bytes to an integer in [0, modulus).

    Used for Fiat–Shamir challenges.  We hash with a counter until the
    result, reduced, is unbiased enough for our security level (the
    modulus is always far smaller than 2^256 in practice here, so one
    block with rejection sampling suffices).
    """
    counter = 0
    bound_bits = modulus.bit_length()
    while True:
        digest = hashlib.sha256(
            domain + counter.to_bytes(4, "big") + data
        ).digest()
        value = int.from_bytes(digest, "big") >> max(0, 256 - bound_bits - 1)
        if value < modulus:
            return value
        counter += 1


def prf(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 pseudorandom function (pseudonyms, token serials)."""
    return hmac.new(key, message, hashlib.sha256).digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Timing-safe comparison for MACs and token serials."""
    return hmac.compare_digest(a, b)
