"""Number-theoretic primitives: primality, prime generation, inverses.

Everything downstream (Paillier, RSA, Schnorr groups, Shamir fields)
builds on these functions.  Primality testing is Miller–Rabin with a
deterministic small-prime pre-sieve; the error probability after 40
rounds is below 2^-80, standard for this setting.
"""

from typing import Optional, Tuple

from repro.common.randomness import SystemRandomSource
from repro.crypto import backend

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]

_DEFAULT_ROUNDS = 40


def is_probable_prime(n: int, rounds: int = _DEFAULT_ROUNDS, rng=None) -> bool:
    """Miller–Rabin primality test with a small-prime pre-sieve."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or SystemRandomSource()
    # Write n-1 as d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = backend.powmod(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = backend.mulmod(x, x, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng=None) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    if bits < 3:
        raise ValueError("need at least 3 bits for a prime")
    rng = rng or SystemRandomSource()
    while True:
        candidate = rng.randbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if is_probable_prime(candidate, rng=rng):
            return candidate


def generate_safe_prime(bits: int, rng=None) -> Tuple[int, int]:
    """Generate a safe prime p = 2q + 1; returns ``(p, q)``.

    Safe primes give a prime-order subgroup of Z_p* of order q, which is
    what the Schnorr group, Pedersen commitments and sigma protocols
    need.  Generation is slow for large ``bits``; tests use 128–256.
    """
    rng = rng or SystemRandomSource()
    while True:
        q = generate_prime(bits - 1, rng=rng)
        p = 2 * q + 1
        if is_probable_prime(p, rng=rng):
            return p, q


def modinv(a: int, m: int) -> int:
    """Modular inverse through the fast-math backend (extended Euclid
    in pure python, GMP's ``invert`` under gmpy2; both raise
    ``ValueError`` on a non-invertible input)."""
    return backend.invert(a, m)


def _extended_gcd(a: int, b: int) -> Tuple[int, int, int]:
    """Return (g, x, y) with a*x + b*y = g = gcd(a, b)."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
        old_t, t = t, old_t - quotient * t
    return old_r, old_s, old_t


def crt_pair(r_p: int, p: int, r_q: int, q: int) -> int:
    """Chinese remainder theorem for two coprime moduli.

    Returns the unique x mod p*q with x = r_p (mod p) and x = r_q (mod q).
    Used by Paillier/RSA decryption for the usual ~4x speedup.
    """
    q_inv = modinv(q, p)
    h = (q_inv * (r_p - r_q)) % p
    return r_q + q * h


def lcm(a: int, b: int) -> int:
    """Least common multiple (Carmichael function input for Paillier)."""
    import math

    return a // math.gcd(a, b) * b


def random_coprime(n: int, rng=None) -> int:
    """A uniform element of Z_n* (used for Paillier randomness)."""
    import math

    rng = rng or SystemRandomSource()
    while True:
        r = rng.randrange(1, n)
        if math.gcd(r, n) == 1:
            return r


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol (a/n) for odd n > 0, by quadratic reciprocity.

    For an odd prime p this is the Legendre symbol, so membership in
    the quadratic-residue subgroup of Z_p* (the order-q subgroup of a
    safe-prime group p = 2q + 1) reduces to ``jacobi(a, p) == 1`` —
    quadratic instead of cubic in the bit length, which is what makes
    batch signature verification's per-element membership checks cheap.
    """
    if n <= 0 or n % 2 == 0:
        raise ValueError("Jacobi symbol needs an odd positive modulus")
    a %= n
    result = 1
    while a != 0:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def int_to_bytes(n: int) -> bytes:
    """Big-endian minimal-length byte encoding of a non-negative int."""
    if n < 0:
        raise ValueError("negative integers have no canonical encoding")
    length = max(1, (n.bit_length() + 7) // 8)
    return n.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    return int.from_bytes(data, "big")


def next_prime_above(n: int, rng: Optional[object] = None) -> int:
    """Smallest probable prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate
