"""Exponential ElGamal over a Schnorr group.

Encrypts ``m`` as ``(g^r, g^m * y^r)``: additively homomorphic in the
exponent and rerandomizable, which makes it convenient for mix-style
unlinkability and for small-domain counters (decryption requires a
discrete-log search, so plaintexts must stay small — we cap the search
at a configurable bound).  PReVer uses it where rerandomization
matters; Paillier is the workhorse for large values.
"""

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import PReVerError
from repro.crypto.backend import fixed_base
from repro.crypto.group import SchnorrGroup
from repro.crypto.numbers import modinv


class ElGamalError(PReVerError):
    pass


@dataclass(frozen=True)
class ElGamalCiphertext:
    """Pair (c1, c2) = (g^r, g^m * y^r)."""

    group: SchnorrGroup
    c1: int
    c2: int

    def __add__(self, other):
        if not isinstance(other, ElGamalCiphertext):
            return NotImplemented
        if other.group != self.group:
            raise ElGamalError("ciphertexts from different groups")
        p = self.group.p
        return ElGamalCiphertext(
            self.group, self.c1 * other.c1 % p, self.c2 * other.c2 % p
        )

    def __mul__(self, scalar: int):
        if not isinstance(scalar, int):
            return NotImplemented
        return ElGamalCiphertext(
            self.group,
            self.group.power(self.c1, scalar),
            self.group.power(self.c2, scalar),
        )

    __rmul__ = __mul__

    def to_dict(self) -> dict:
        return {"c1": self.c1, "c2": self.c2}


@dataclass(frozen=True)
class ElGamalPublicKey:
    group: SchnorrGroup
    y: int  # y = g^x

    def encrypt(self, message: int, rng=None) -> ElGamalCiphertext:
        group = self.group
        r = group.random_exponent(rng)
        # Both exponentiation bases are long-lived: g's fixed-base
        # table is process-shared and warm, and the public key's is
        # built eagerly here (a key that encrypts once will encrypt
        # again — counters are re-encrypted every rerandomization).
        c1 = group.power_of_g(r)
        y_pow = fixed_base(self.y, group.p, group.q.bit_length(),
                           warm=True).pow(r)
        c2 = group.power_of_g(message % group.q) * y_pow % group.p
        return ElGamalCiphertext(group, c1, c2)

    def rerandomize(self, ct: ElGamalCiphertext, rng=None) -> ElGamalCiphertext:
        """Multiply in a fresh encryption of zero."""
        return ct + self.encrypt(0, rng=rng)


@dataclass(frozen=True)
class ElGamalPrivateKey:
    public_key: ElGamalPublicKey
    x: int

    def decrypt(self, ct: ElGamalCiphertext, max_plaintext: int = 1_000_000) -> int:
        """Recover m by a bounded baby-step search for g^m.

        Raises :class:`ElGamalError` if the plaintext exceeds
        ``max_plaintext`` — exponential ElGamal is only suitable for
        small counters, which is all PReVer uses it for.
        """
        group = self.public_key.group
        shared = group.power(ct.c1, self.x)
        g_m = ct.c2 * modinv(shared, group.p) % group.p
        return discrete_log_bounded(group, g_m, max_plaintext)


def discrete_log_bounded(
    group: SchnorrGroup, target: int, bound: int
) -> int:
    """Baby-step/giant-step search for m with g^m == target, m <= bound."""
    import math as _math

    step = max(1, int(_math.isqrt(bound)) + 1)
    baby: dict = {}
    value = 1
    for j in range(step):
        baby.setdefault(value, j)
        value = value * group.g % group.p
    # giant stride: g^-step
    stride = modinv(group.power_of_g(step), group.p)
    gamma = target
    for i in range(step + 1):
        if gamma in baby:
            m = i * step + baby[gamma]
            if m <= bound:
                return m
        gamma = gamma * stride % group.p
    raise ElGamalError(f"plaintext larger than bound {bound}")


@dataclass(frozen=True)
class ElGamalKeyPair:
    public_key: ElGamalPublicKey
    private_key: ElGamalPrivateKey


def generate_elgamal_keypair(
    group: Optional[SchnorrGroup] = None, rng=None
) -> ElGamalKeyPair:
    group = group or SchnorrGroup.default()
    x = group.random_exponent(rng)
    y = group.power_of_g(x)
    public = ElGamalPublicKey(group=group, y=y)
    return ElGamalKeyPair(public_key=public, private_key=ElGamalPrivateKey(public, x))
