"""Secret sharing: additive (n-of-n) and Shamir (t-of-n) schemes,
plus a Beaver-triple dealer for MPC multiplication.

RC2's decentralized path runs secure multi-party computation over
additive shares in a prime field: each platform holds one share of each
private value; sums are local, multiplications consume one Beaver
triple, comparisons are built from bits (see ``repro.privacy.mpc``).
"""

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ProtocolError
from repro.common.randomness import SystemRandomSource
from repro.crypto.numbers import modinv

# A 127-bit Mersenne prime: big enough for 64-bit values and sums over
# thousands of parties, with fast reduction.
DEFAULT_FIELD_PRIME = (1 << 127) - 1


def additive_share(
    secret: int, parties: int, prime: int = DEFAULT_FIELD_PRIME, rng=None
) -> List[int]:
    """Split ``secret`` into ``parties`` additive shares mod ``prime``."""
    if parties < 2:
        raise ProtocolError("additive sharing needs at least 2 parties")
    rng = rng or SystemRandomSource()
    shares = [rng.randbelow(prime) for _ in range(parties - 1)]
    last = (secret - sum(shares)) % prime
    shares.append(last)
    return shares


def additive_reconstruct(
    shares: Sequence[int], prime: int = DEFAULT_FIELD_PRIME
) -> int:
    return sum(shares) % prime


def to_signed(value: int, prime: int = DEFAULT_FIELD_PRIME) -> int:
    """Map a field element back to a signed integer (upper half = negative)."""
    if value > prime // 2:
        return value - prime
    return value


def shamir_share(
    secret: int,
    threshold: int,
    parties: int,
    prime: int = DEFAULT_FIELD_PRIME,
    rng=None,
) -> List[Tuple[int, int]]:
    """Shamir t-of-n sharing; returns (x, y) evaluation points.

    Any ``threshold`` shares reconstruct; fewer reveal nothing.
    """
    if not 1 <= threshold <= parties:
        raise ProtocolError("invalid threshold")
    rng = rng or SystemRandomSource()
    coefficients = [secret % prime] + [
        rng.randbelow(prime) for _ in range(threshold - 1)
    ]
    shares = []
    for x in range(1, parties + 1):
        y = 0
        for coefficient in reversed(coefficients):
            y = (y * x + coefficient) % prime
        shares.append((x, y))
    return shares


def shamir_reconstruct(
    shares: Sequence[Tuple[int, int]], prime: int = DEFAULT_FIELD_PRIME
) -> int:
    """Lagrange interpolation at zero."""
    if not shares:
        raise ProtocolError("no shares supplied")
    xs = [x for x, _ in shares]
    if len(set(xs)) != len(xs):
        raise ProtocolError("duplicate share indices")
    secret = 0
    for i, (x_i, y_i) in enumerate(shares):
        numerator = 1
        denominator = 1
        for j, (x_j, _) in enumerate(shares):
            if i == j:
                continue
            numerator = numerator * (-x_j) % prime
            denominator = denominator * (x_i - x_j) % prime
        secret = (secret + y_i * numerator * modinv(denominator, prime)) % prime
    return secret


@dataclass(frozen=True)
class BeaverTriple:
    """Per-party shares of (a, b, c) with c = a*b, used once."""

    a: int
    b: int
    c: int


class BeaverTripleDealer:
    """A semi-honest dealer handing out correlated randomness.

    Real systems generate triples with OT or homomorphic encryption in
    an offline phase; PReVer's simulator uses a dealer, which preserves
    the *online* protocol exactly (the measurable part) and is the
    standard benchmark configuration for semi-honest MPC.
    """

    def __init__(self, parties: int, prime: int = DEFAULT_FIELD_PRIME, rng=None):
        if parties < 2:
            raise ProtocolError("need at least 2 parties")
        self.parties = parties
        self.prime = prime
        self._rng = rng or SystemRandomSource()
        self.triples_dealt = 0

    def deal(self) -> List[BeaverTriple]:
        """One multiplication's worth of shares, one triple per party."""
        a = self._rng.randbelow(self.prime)
        b = self._rng.randbelow(self.prime)
        c = a * b % self.prime
        a_shares = additive_share(a, self.parties, self.prime, self._rng)
        b_shares = additive_share(b, self.parties, self.prime, self._rng)
        c_shares = additive_share(c, self.parties, self.prime, self._rng)
        self.triples_dealt += 1
        return [
            BeaverTriple(a=a_shares[i], b=b_shares[i], c=c_shares[i])
            for i in range(self.parties)
        ]

    def deal_bits(self) -> List[int]:
        """Shares of a uniformly random bit (for comparison protocols)."""
        bit = self._rng.randbelow(2)
        return additive_share(bit, self.parties, self.prime, self._rng)
