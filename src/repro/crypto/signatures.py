"""Schnorr signatures over a Schnorr group (Fiat–Shamir transformed).

Used to authenticate updates from data producers, authority-issued
regulations, and ledger digests.  Standard construction:

    k  random;  R = g^k;  e = H(R || pk || m);  s = k + e*x (mod q)
    verify:  g^s == R * pk^e
"""

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.common.serialization import canonical_bytes
from repro.crypto.group import SchnorrGroup
from repro.crypto.hashing import hash_to_int
from repro.crypto.numbers import int_to_bytes


@dataclass(frozen=True)
class SchnorrSignature:
    commitment: int  # R
    response: int    # s

    def to_dict(self) -> dict:
        return {"R": self.commitment, "s": self.response}


def _challenge(group: SchnorrGroup, commitment: int, pk: int, message: bytes) -> int:
    payload = (
        int_to_bytes(commitment) + b"|" + int_to_bytes(pk) + b"|" + message
    )
    return hash_to_int(payload, group.q, domain=b"schnorr")


class SchnorrSigner:
    """Holds a signing key; exposes the matching verifier."""

    def __init__(self, group: Optional[SchnorrGroup] = None, rng=None):
        self.group = group or SchnorrGroup.default()
        self._x = self.group.random_exponent(rng)
        self.public_key = self.group.power(self.group.g, self._x)

    def sign(self, message: bytes, rng=None) -> SchnorrSignature:
        k = self.group.random_exponent(rng)
        commitment = self.group.power(self.group.g, k)
        e = _challenge(self.group, commitment, self.public_key, message)
        s = (k + e * self._x) % self.group.q
        return SchnorrSignature(commitment=commitment, response=s)

    def sign_obj(self, obj, rng=None) -> SchnorrSignature:
        """Sign the canonical serialization of a structured value."""
        return self.sign(canonical_bytes(obj), rng=rng)

    def verifier(self) -> "SchnorrVerifier":
        return SchnorrVerifier(self.group, self.public_key)


class SchnorrVerifier:
    """Verifies signatures for one public key."""

    def __init__(self, group: SchnorrGroup, public_key: int):
        self.group = group
        self.public_key = public_key

    def verify(self, message: bytes, signature: SchnorrSignature) -> bool:
        if not self.group.is_member(signature.commitment):
            return False
        e = _challenge(self.group, signature.commitment, self.public_key, message)
        lhs = self.group.power(self.group.g, signature.response)
        rhs = (
            signature.commitment
            * self.group.power(self.public_key, e)
            % self.group.p
        )
        return lhs == rhs

    def verify_obj(self, obj, signature: SchnorrSignature) -> bool:
        return self.verify(canonical_bytes(obj), signature)


# Keyed verifier cache: hot paths (one provenance check per update)
# were rebuilding a SchnorrVerifier per call.  Verifiers are stateless
# w.r.t. messages, so one instance per (group, public key) suffices.
_VERIFIER_CACHE: "OrderedDict[tuple, SchnorrVerifier]" = OrderedDict()
_VERIFIER_CACHE_MAX = 4096


def cached_verifier(group: SchnorrGroup, public_key: int) -> SchnorrVerifier:
    """A shared :class:`SchnorrVerifier` for ``(group, public_key)``.

    LRU-bounded so long-running services with churning signer sets
    don't grow memory without bound.
    """
    key = (group.p, group.q, group.g, public_key)
    verifier = _VERIFIER_CACHE.get(key)
    if verifier is None:
        verifier = SchnorrVerifier(group, public_key)
        _VERIFIER_CACHE[key] = verifier
        if len(_VERIFIER_CACHE) > _VERIFIER_CACHE_MAX:
            _VERIFIER_CACHE.popitem(last=False)
    else:
        _VERIFIER_CACHE.move_to_end(key)
    return verifier
