"""Schnorr signatures over a Schnorr group (Fiat–Shamir transformed).

Used to authenticate updates from data producers, authority-issued
regulations, and ledger digests.  Standard construction:

    k  random;  R = g^k;  e = H(R || pk || m);  s = k + e*x (mod q)
    verify:  g^s == R * pk^e

Batch verification (:func:`verify_batch`) checks many signatures at
once with the random-linear-combination trick: raise each individual
equation to an independent random exponent ``z_i`` and compare the
products,

    g^(Σ s_i·z_i)  ==  Π R_i^{z_i} · pk_i^{e_i·z_i}

A forged signature makes the combined equation fail except with
probability ~2^-128 over the ``z_i``; on failure the batch falls back
to per-signature verification to pinpoint the culprits, so the result
vector always equals per-signature :meth:`SchnorrVerifier.verify`.
Both the product accumulation and the fallback chunk across
:mod:`repro.parallel` workers.
"""

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.randomness import SystemRandomSource
from repro.common.serialization import canonical_bytes
from repro.crypto.backend import fixed_base, multi_exp
from repro.crypto.group import SchnorrGroup
from repro.crypto.hashing import hash_to_int
from repro.crypto.numbers import int_to_bytes


@dataclass(frozen=True)
class SchnorrSignature:
    commitment: int  # R
    response: int    # s

    def to_dict(self) -> dict:
        return {"R": self.commitment, "s": self.response}


def _challenge(group: SchnorrGroup, commitment: int, pk: int, message: bytes) -> int:
    payload = (
        int_to_bytes(commitment) + b"|" + int_to_bytes(pk) + b"|" + message
    )
    return hash_to_int(payload, group.q, domain=b"schnorr")


class SchnorrSigner:
    """Holds a signing key; exposes the matching verifier."""

    def __init__(self, group: Optional[SchnorrGroup] = None, rng=None):
        self.group = group or SchnorrGroup.default()
        self._x = self.group.random_exponent(rng)
        self.public_key = self.group.power_of_g(self._x)

    def sign(self, message: bytes, rng=None) -> SchnorrSignature:
        k = self.group.random_exponent(rng)
        commitment = self.group.power_of_g(k)
        e = _challenge(self.group, commitment, self.public_key, message)
        s = (k + e * self._x) % self.group.q
        return SchnorrSignature(commitment=commitment, response=s)

    def sign_obj(self, obj, rng=None) -> SchnorrSignature:
        """Sign the canonical serialization of a structured value."""
        return self.sign(canonical_bytes(obj), rng=rng)

    def verifier(self) -> "SchnorrVerifier":
        return SchnorrVerifier(self.group, self.public_key)


class SchnorrVerifier:
    """Verifies signatures for one public key."""

    def __init__(self, group: SchnorrGroup, public_key: int):
        self.group = group
        self.public_key = public_key

    def verify(self, message: bytes, signature: SchnorrSignature) -> bool:
        if not self.group.is_member(signature.commitment):
            return False
        group = self.group
        e = _challenge(group, signature.commitment, self.public_key, message)
        # Both bases are long-lived: g's table is warm and shared; the
        # public key's builds from its second verification (verifiers
        # are cached per key, so hot keys amortize it immediately).
        lhs = group.power_of_g(signature.response)
        pk_pow = fixed_base(self.public_key, group.p,
                            group.q.bit_length()).pow(e % group.q)
        rhs = signature.commitment * pk_pow % group.p
        return lhs == rhs

    def verify_obj(self, obj, signature: SchnorrSignature) -> bool:
        return self.verify(canonical_bytes(obj), signature)


# Keyed verifier cache: hot paths (one provenance check per update)
# were rebuilding a SchnorrVerifier per call.  Verifiers are stateless
# w.r.t. messages, so one instance per (group, public key) suffices.
_VERIFIER_CACHE: "OrderedDict[tuple, SchnorrVerifier]" = OrderedDict()
_VERIFIER_CACHE_MAX = 4096


def cached_verifier(group: SchnorrGroup, public_key: int) -> SchnorrVerifier:
    """A shared :class:`SchnorrVerifier` for ``(group, public_key)``.

    LRU-bounded so long-running services with churning signer sets
    don't grow memory without bound.
    """
    key = (group.p, group.q, group.g, public_key)
    verifier = _VERIFIER_CACHE.get(key)
    if verifier is None:
        verifier = SchnorrVerifier(group, public_key)
        _VERIFIER_CACHE[key] = verifier
        if len(_VERIFIER_CACHE) > _VERIFIER_CACHE_MAX:
            _VERIFIER_CACHE.popitem(last=False)
    else:
        _VERIFIER_CACHE.move_to_end(key)
    return verifier


# -- batch verification -----------------------------------------------------

#: Bit width of the random combination exponents; the false-accept
#: probability of the combined check is ~2^-bits per batch.
_BATCH_EXPONENT_BITS = 128

#: One batch item: (public_key, message, signature).
BatchItem = Tuple[int, bytes, SchnorrSignature]


def _verify_chunk(items: List[tuple]) -> List[bool]:
    """Worker: per-signature verification for a chunk.

    Items are ``(p, q, g, pk, message, R, s)`` integer/bytes tuples;
    the worker reassembles group and verifier objects through the
    per-process :func:`cached_verifier` LRU.
    """
    out = []
    for p, q, g, pk, message, commitment, response in items:
        verifier = cached_verifier(SchnorrGroup(p=p, q=q, g=g), pk)
        out.append(verifier.verify(
            message, SchnorrSignature(commitment=commitment,
                                      response=response)
        ))
    return out


def _rlc_chunk(items: List[tuple]) -> List[int]:
    """Worker: partial product ``Π R^z · pk^(e·z) mod p`` for a chunk,
    via one simultaneous multi-exponentiation over the chunk's bases
    (all of them share a single Straus squaring chain).

    Exponents ``e·z`` are deliberately *not* reduced mod q: a hostile
    public key outside the order-q subgroup would make the reduced and
    unreduced forms disagree, and the unreduced form is the one that
    equals the individually-verified equations raised to ``z``.
    """
    p = items[0][0]
    pairs = []
    for _p, commitment, z, pk, ez in items:
        pairs.append((commitment, z))
        pairs.append((pk, ez))
    return [multi_exp(pairs, p)]


def verify_batch(
    items: Sequence[BatchItem],
    group: Optional[SchnorrGroup] = None,
    executor=None,
    rng=None,
) -> List[bool]:
    """Verify a batch of ``(public_key, message, signature)`` items.

    Returns one bool per item, always equal to what per-item
    :meth:`SchnorrVerifier.verify` would return:

    1. commitments failing subgroup membership are rejected outright
       (cheap Legendre check for safe-prime groups);
    2. the rest go through one random-linear-combination equation — on
       success (the overwhelmingly common all-valid case) everything is
       accepted with one ``g`` exponentiation plus ~1.5 per signature,
       chunked across executor workers;
    3. on failure, per-signature verification (also chunked across
       workers) pinpoints exactly which signatures are bad.
    """
    items = list(items)
    if not items:
        return []
    group = group or SchnorrGroup.default()
    if len(items) == 1:
        pk, message, signature = items[0]
        return [cached_verifier(group, pk).verify(message, signature)]
    p, q, g = group.p, group.q, group.g
    rng = rng or SystemRandomSource()

    results: List[Optional[bool]] = [None] * len(items)
    candidates = []  # (index, pk, message, e, z, signature)
    s_combined = 0
    for index, (pk, message, signature) in enumerate(items):
        if not group.is_member(signature.commitment):
            results[index] = False
            continue
        e = _challenge(group, signature.commitment, pk, message)
        z = rng.randrange(1, 1 << _BATCH_EXPONENT_BITS)
        candidates.append((index, pk, message, e, z, signature))
        s_combined = (s_combined + signature.response * z) % q
    if not candidates:
        return [bool(r) for r in results]

    lhs = group.power_of_g(s_combined)
    partials = _map(executor, _rlc_chunk, [
        (p, signature.commitment, z, pk, e * z)
        for (_, pk, _, e, z, signature) in candidates
    ], label="schnorr.batch")
    rhs = 1
    for partial in partials:
        rhs = rhs * partial % p
    if lhs == rhs:
        for index, *_ in candidates:
            results[index] = True
        return [bool(r) for r in results]

    # Combined equation failed: pinpoint with per-signature checks.
    verdicts = _map(executor, _verify_chunk, [
        (p, q, g, pk, message, signature.commitment, signature.response)
        for (_, pk, message, _, _, signature) in candidates
    ], label="schnorr.pinpoint")
    for (index, *_), verdict in zip(candidates, verdicts):
        results[index] = verdict
    return [bool(r) for r in results]


def _map(executor, fn, work, label):
    if executor is None or not getattr(executor, "parallel", False):
        return fn(work) if work else []
    return executor.map_chunks(fn, work, label=label)
