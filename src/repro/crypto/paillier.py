"""Paillier additively homomorphic encryption, from scratch.

PReVer's Research Challenge 1 calls for computing on encrypted data so
an untrusted data manager can verify constraints without seeing
plaintexts.  The constraints PReVer's applications need (COUNT/SUM
bounds, linear aggregates, sliding-window sums) are linear, and Paillier
supports exactly:

* ``Enc(a) * Enc(b) = Enc(a + b)``   (ciphertext multiplication)
* ``Enc(a) ^ k    = Enc(a * k)``     (scalar exponentiation)

Decryption uses the CRT optimization.  Plaintexts are integers modulo
``n``; negative values are represented in the upper half of the range
(two's-complement style) and mapped back by :meth:`decrypt_signed`.
"""

import math
from dataclasses import dataclass

from repro.common.errors import PReVerError
from repro.common.randomness import SystemRandomSource
from repro.crypto.numbers import (
    crt_pair,
    generate_prime,
    lcm,
    modinv,
    random_coprime,
)

DEFAULT_KEY_BITS = 512


class PaillierError(PReVerError):
    """Raised on key/ciphertext misuse (mismatched keys, bad range)."""


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public key: modulus n and generator g = n + 1."""

    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def g(self) -> int:
        return self.n + 1

    @property
    def max_plaintext(self) -> int:
        return self.n - 1

    def encrypt(self, plaintext: int, rng=None) -> "PaillierCiphertext":
        """Encrypt an integer in [0, n)."""
        m = plaintext % self.n
        rng = rng or SystemRandomSource()
        r = random_coprime(self.n, rng=rng)
        n_sq = self.n_squared
        # (n+1)^m = 1 + n*m (mod n^2), so skip the full modpow.
        c = ((1 + self.n * m) % n_sq) * pow(r, self.n, n_sq) % n_sq
        return PaillierCiphertext(public_key=self, value=c)

    def encrypt_signed(self, plaintext: int, rng=None) -> "PaillierCiphertext":
        """Encrypt a possibly negative integer (|m| must be < n/2)."""
        if abs(plaintext) >= self.n // 2:
            raise PaillierError("signed plaintext out of range")
        return self.encrypt(plaintext % self.n, rng=rng)


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Private key holding the factorization, with CRT precomputation."""

    public_key: PaillierPublicKey
    p: int
    q: int

    def __post_init__(self):
        if self.p * self.q != self.public_key.n:
            raise PaillierError("private key does not match public key")

    def decrypt(self, ciphertext: "PaillierCiphertext") -> int:
        """Decrypt to an integer in [0, n)."""
        if ciphertext.public_key.n != self.public_key.n:
            raise PaillierError("ciphertext was encrypted under another key")
        n = self.public_key.n
        lam = lcm(self.p - 1, self.q - 1)
        u = pow(ciphertext.value, lam, self.public_key.n_squared)
        ell = (u - 1) // n
        mu = modinv(self._l_g(lam), n)
        return (ell * mu) % n

    def _l_g(self, lam: int) -> int:
        """L(g^lambda mod n^2) where L(x) = (x-1)/n."""
        n = self.public_key.n
        u = pow(self.public_key.g, lam, self.public_key.n_squared)
        return (u - 1) // n

    def decrypt_signed(self, ciphertext: "PaillierCiphertext") -> int:
        """Decrypt, mapping the upper half of [0, n) to negatives."""
        value = self.decrypt(ciphertext)
        n = self.public_key.n
        if value > n // 2:
            return value - n
        return value

    def decrypt_crt(self, ciphertext: "PaillierCiphertext") -> int:
        """CRT-accelerated decryption (same result as :meth:`decrypt`)."""
        if ciphertext.public_key.n != self.public_key.n:
            raise PaillierError("ciphertext was encrypted under another key")
        n = self.public_key.n
        c = ciphertext.value
        p, q = self.p, self.q
        hp = self._partial(c, p)
        hq = self._partial(c, q)
        m = crt_pair(hp, p, hq, q)
        return m % n

    def _partial(self, c: int, prime: int) -> int:
        prime_sq = prime * prime
        u = pow(c, prime - 1, prime_sq)
        ell = (u - 1) // prime
        g_u = pow(self.public_key.g, prime - 1, prime_sq)
        g_ell = (g_u - 1) // prime
        return (ell * modinv(g_ell, prime)) % prime


@dataclass(frozen=True)
class PaillierKeyPair:
    public_key: PaillierPublicKey
    private_key: PaillierPrivateKey


class PaillierCiphertext:
    """A Paillier ciphertext supporting homomorphic operations.

    Operators: ``ct + ct`` and ``ct + int`` give encrypted sums;
    ``ct * int`` gives an encrypted scalar product.  Ciphertext-by-
    ciphertext multiplication is *not* possible in Paillier (that is
    exactly the FHE gap the paper discusses) and raises ``TypeError``.
    """

    __slots__ = ("public_key", "value")

    def __init__(self, public_key: PaillierPublicKey, value: int):
        self.public_key = public_key
        self.value = value % public_key.n_squared

    def __add__(self, other):
        n_sq = self.public_key.n_squared
        if isinstance(other, PaillierCiphertext):
            if other.public_key.n != self.public_key.n:
                raise PaillierError("cannot add ciphertexts under different keys")
            return PaillierCiphertext(self.public_key, self.value * other.value % n_sq)
        if isinstance(other, int):
            encrypted = self.public_key.encrypt(other)
            return self + encrypted
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other):
        if isinstance(other, PaillierCiphertext):
            return self + (other * -1)
        if isinstance(other, int):
            return self + (-other)
        return NotImplemented

    def __mul__(self, scalar):
        if not isinstance(scalar, int):
            return NotImplemented
        n = self.public_key.n
        exponent = scalar % n
        return PaillierCiphertext(
            self.public_key, pow(self.value, exponent, self.public_key.n_squared)
        )

    __rmul__ = __mul__

    def rerandomize(self, rng=None) -> "PaillierCiphertext":
        """Fresh randomness, same plaintext (unlinkability)."""
        zero = self.public_key.encrypt(0, rng=rng)
        return self + zero

    def to_dict(self) -> dict:
        return {"n": self.public_key.n, "c": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PaillierCiphertext(<{self.value % 10**8}...>)"


def generate_paillier_keypair(bits: int = DEFAULT_KEY_BITS, rng=None) -> PaillierKeyPair:
    """Generate a Paillier key pair with an n of roughly ``bits`` bits."""
    rng = rng or SystemRandomSource()
    half = bits // 2
    while True:
        p = generate_prime(half, rng=rng)
        q = generate_prime(half, rng=rng)
        if p == q:
            continue
        n = p * q
        if math.gcd(n, (p - 1) * (q - 1)) == 1:
            public = PaillierPublicKey(n=n)
            private = PaillierPrivateKey(public_key=public, p=p, q=q)
            return PaillierKeyPair(public_key=public, private_key=private)
