"""Paillier additively homomorphic encryption, from scratch.

PReVer's Research Challenge 1 calls for computing on encrypted data so
an untrusted data manager can verify constraints without seeing
plaintexts.  The constraints PReVer's applications need (COUNT/SUM
bounds, linear aggregates, sliding-window sums) are linear, and Paillier
supports exactly:

* ``Enc(a) * Enc(b) = Enc(a + b)``   (ciphertext multiplication)
* ``Enc(a) ^ k    = Enc(a * k)``     (scalar exponentiation)

Hot-path precomputation (the pipeline decrypts one aggregate per
update, so constant factors matter):

* keys cache everything derivable at construction — ``n²``, the
  Carmichael ``λ`` and classic ``μ``, and the CRT partial inverses
  ``hp``/``hq`` plus ``q⁻¹ mod p`` — so :meth:`PaillierPrivateKey.decrypt`
  is two half-size modular exponentiations and no inversions;
* :meth:`PaillierPublicKey.precompute_randomness` fills a pool of
  ``r^n mod n²`` obfuscators ahead of time (the classic offline/online
  split), so the online cost of :meth:`PaillierPublicKey.encrypt`
  drops to two modular multiplications.

Plaintexts are integers modulo ``n``; negative values are represented
in the upper half of the range (two's-complement style) and mapped back
by :meth:`decrypt_signed`.

Multicore batch API (:func:`encrypt_batch`, :func:`decrypt_batch`,
:func:`fold_ciphertexts`): chunk functions operate on plain integers so
work pickles cheaply across :mod:`repro.parallel` workers, and each
worker process rebuilds/caches its key objects from ``(n)`` or
``(n, p, q)`` locally.  Keys themselves pickle as just their defining
integers (``__reduce__``), so the precomputed randomness pool — which
is mutable, per-process state — is never shared across workers.
"""

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import PReVerError
from repro.common.randomness import SystemRandomSource
from repro.crypto.backend import multi_exp, powmod
from repro.crypto.numbers import (
    generate_prime,
    lcm,
    modinv,
    random_coprime,
)

DEFAULT_KEY_BITS = 512


class PaillierError(PReVerError):
    """Raised on key/ciphertext misuse (mismatched keys, bad range)."""


def _obfuscate(n: int, n_sq: int, r: int) -> int:
    """``r^n mod n²`` — the one obfuscator exponentiation.

    Every encryption path (pool precompute, pool miss, executor chunk
    workers) funnels through here, so the fast-math backend applies
    uniformly and the formula exists in exactly one place.  Fixed-base
    tables do not help: the *base* ``r`` is fresh per call; only the
    exponent ``n`` is fixed.
    """
    return powmod(r, n, n_sq)


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public key: modulus n and generator g = n + 1."""

    n: int

    def __post_init__(self):
        # Frozen dataclass: stash derived values via object.__setattr__.
        # Equality/hash stay defined over ``n`` alone.
        object.__setattr__(self, "_n_sq", self.n * self.n)
        object.__setattr__(self, "_r_pool", [])
        object.__setattr__(self, "_r_pool_head", 0)

    def __reduce__(self):
        # Pickling-cheap key handle: a worker process reconstructs the
        # key from ``n`` alone and re-derives n².  The randomness pool
        # deliberately does not travel — it is mutable per-process
        # state, and sharing one pool across executor workers would
        # both reuse obfuscators (a security bug) and desynchronize
        # the deterministic drain order.  Pools are per-process.
        return (PaillierPublicKey, (self.n,))

    @property
    def n_squared(self) -> int:
        return self._n_sq

    @property
    def g(self) -> int:
        return self.n + 1

    @property
    def max_plaintext(self) -> int:
        return self.n - 1

    # -- precomputed-randomness pool (offline phase) ---------------------

    def precompute_randomness(self, count: int, rng=None,
                              executor=None) -> int:
        """Generate ``count`` obfuscators ``r^n mod n²`` ahead of time.

        This is the expensive part of encryption; banking it offline
        makes the online :meth:`encrypt` two multiplications.  Returns
        the resulting pool size.

        The ``r`` values are always drawn serially (so a seeded ``rng``
        yields a reproducible pool); the heavy ``r^n mod n²``
        exponentiations are chunked across ``executor`` workers when
        one is given.  The pool belongs to *this* process: the key's
        pickled form excludes it, so executor workers never see or
        drain it.
        """
        rng = rng or SystemRandomSource()
        n, n_sq = self.n, self._n_sq
        rs = [random_coprime(n, rng=rng) for _ in range(count)]
        if executor is not None and getattr(executor, "parallel", False):
            obfuscators = executor.map_chunks(
                _obfuscator_chunk,
                [(n, r) for r in rs],
                label="paillier.precompute",
            )
        else:
            obfuscators = [_obfuscate(n, n_sq, r) for r in rs]
        self._r_pool.extend(obfuscators)
        return self.randomness_pool_size

    @property
    def randomness_pool_size(self) -> int:
        return len(self._r_pool) - self._r_pool_head

    def _obfuscator(self, rng=None) -> int:
        """``r^n mod n²`` — pooled when available and no explicit rng
        was requested (an explicit rng means the caller wants control
        over the randomness, so the pool is bypassed).

        The pool drains FIFO via a head index: consumption order
        matches :meth:`precompute_randomness` generation order, so a
        seeded pool produces a deterministic ciphertext stream in
        serial mode (the old LIFO ``pop()`` reversed it), and the
        drain is O(1) without list shifting.
        """
        if rng is None and self._r_pool_head < len(self._r_pool):
            head = self._r_pool_head
            value = self._r_pool[head]
            object.__setattr__(self, "_r_pool_head", head + 1)
            if head + 1 >= 1024 and (head + 1) * 2 >= len(self._r_pool):
                # Compact: drop the consumed prefix once it dominates.
                object.__setattr__(self, "_r_pool", self._r_pool[head + 1:])
                object.__setattr__(self, "_r_pool_head", 0)
            return value
        rng = rng or SystemRandomSource()
        return _obfuscate(self.n, self._n_sq,
                          random_coprime(self.n, rng=rng))

    def encrypt(self, plaintext: int, rng=None) -> "PaillierCiphertext":
        """Encrypt an integer in [0, n)."""
        m = plaintext % self.n
        n_sq = self._n_sq
        # (n+1)^m = 1 + n*m (mod n^2), so skip the full modpow.
        c = ((1 + self.n * m) % n_sq) * self._obfuscator(rng) % n_sq
        return PaillierCiphertext(public_key=self, value=c)

    def encrypt_signed(self, plaintext: int, rng=None) -> "PaillierCiphertext":
        """Encrypt a possibly negative integer (|m| must be < n/2)."""
        if abs(plaintext) >= self.n // 2:
            raise PaillierError("signed plaintext out of range")
        return self.encrypt(plaintext % self.n, rng=rng)


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Private key holding the factorization, with CRT precomputation."""

    public_key: PaillierPublicKey
    p: int
    q: int

    def __post_init__(self):
        if self.p * self.q != self.public_key.n:
            raise PaillierError("private key does not match public key")
        n = self.public_key.n
        g = self.public_key.g
        p, q = self.p, self.q
        # Classic-path parameters: λ = lcm(p-1, q-1), μ = L(g^λ mod n²)⁻¹.
        lam = lcm(p - 1, q - 1)
        u = powmod(g, lam, self.public_key.n_squared)
        mu = modinv((u - 1) // n, n)
        object.__setattr__(self, "_lambda", lam)
        object.__setattr__(self, "_mu", mu)
        # CRT-path parameters: hp = Lp(g^(p-1) mod p²)⁻¹ mod p (same for
        # q) and the recombination coefficient q⁻¹ mod p.
        object.__setattr__(self, "_p_sq", p * p)
        object.__setattr__(self, "_q_sq", q * q)
        gp = powmod(g, p - 1, self._p_sq)
        gq = powmod(g, q - 1, self._q_sq)
        object.__setattr__(self, "_hp", modinv((gp - 1) // p, p))
        object.__setattr__(self, "_hq", modinv((gq - 1) // q, q))
        object.__setattr__(self, "_q_inv_p", modinv(q, p))

    def __reduce__(self):
        # Like the public key: pickle only the defining integers and
        # re-derive the CRT precomputation on the worker side (a few
        # half-size modular operations, amortized by the per-process
        # key cache in the batch chunk functions).
        return (PaillierPrivateKey, (self.public_key, self.p, self.q))

    def _check_key(self, ciphertext: "PaillierCiphertext") -> None:
        if ciphertext.public_key.n != self.public_key.n:
            raise PaillierError("ciphertext was encrypted under another key")

    def decrypt(self, ciphertext: "PaillierCiphertext") -> int:
        """Decrypt to an integer in [0, n) (CRT fast path)."""
        self._check_key(ciphertext)
        return self._decrypt_crt_value(ciphertext.value)

    def decrypt_classic(self, ciphertext: "PaillierCiphertext") -> int:
        """Textbook decryption via λ/μ (same result as :meth:`decrypt`,
        one full-size exponentiation; kept as a cross-check)."""
        self._check_key(ciphertext)
        n = self.public_key.n
        if math.gcd(ciphertext.value, n) != 1:
            raise PaillierError("ciphertext is not coprime to the modulus")
        u = powmod(ciphertext.value, self._lambda, self.public_key.n_squared)
        return ((u - 1) // n) * self._mu % n

    def decrypt_signed(self, ciphertext: "PaillierCiphertext") -> int:
        """Decrypt, mapping the upper half of [0, n) to negatives."""
        value = self.decrypt(ciphertext)
        n = self.public_key.n
        if value > n // 2:
            return value - n
        return value

    def decrypt_crt(self, ciphertext: "PaillierCiphertext") -> int:
        """CRT-accelerated decryption (the :meth:`decrypt` fast path)."""
        self._check_key(ciphertext)
        return self._decrypt_crt_value(ciphertext.value)

    def _decrypt_crt_value(self, c: int) -> int:
        # Fail closed on malformed ciphertexts: every honest ciphertext
        # g^m r^n is a unit mod n², so gcd(c, n) != 1 means the value
        # was never produced by encryption (c = 0, or c sharing a
        # factor with n — which would silently decrypt to garbage and,
        # worse, leak a factor of n to anyone watching the rejection).
        if math.gcd(c, self.public_key.n) != 1:
            raise PaillierError("ciphertext is not coprime to the modulus")
        p, q = self.p, self.q
        mp = (powmod(c, p - 1, self._p_sq) - 1) // p * self._hp % p
        mq = (powmod(c, q - 1, self._q_sq) - 1) // q * self._hq % q
        # Recombine: m ≡ mp (mod p), m ≡ mq (mod q).
        h = self._q_inv_p * (mp - mq) % p
        return (mq + q * h) % self.public_key.n


@dataclass(frozen=True)
class PaillierKeyPair:
    public_key: PaillierPublicKey
    private_key: PaillierPrivateKey


class PaillierCiphertext:
    """A Paillier ciphertext supporting homomorphic operations.

    Operators: ``ct + ct`` and ``ct + int`` give encrypted sums;
    ``ct * int`` gives an encrypted scalar product.  Ciphertext-by-
    ciphertext multiplication is *not* possible in Paillier (that is
    exactly the FHE gap the paper discusses) and raises ``TypeError``.
    """

    __slots__ = ("public_key", "value")

    def __init__(self, public_key: PaillierPublicKey, value: int):
        self.public_key = public_key
        self.value = value % public_key.n_squared

    def __add__(self, other):
        n_sq = self.public_key.n_squared
        if isinstance(other, PaillierCiphertext):
            if other.public_key.n != self.public_key.n:
                raise PaillierError("cannot add ciphertexts under different keys")
            return PaillierCiphertext(self.public_key, self.value * other.value % n_sq)
        if isinstance(other, int):
            encrypted = self.public_key.encrypt(other)
            return self + encrypted
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other):
        if isinstance(other, PaillierCiphertext):
            return self + (other * -1)
        if isinstance(other, int):
            return self + (-other)
        return NotImplemented

    def __mul__(self, scalar):
        if not isinstance(scalar, int):
            return NotImplemented
        n = self.public_key.n
        exponent = scalar % n
        return PaillierCiphertext(
            self.public_key,
            powmod(self.value, exponent, self.public_key.n_squared),
        )

    __rmul__ = __mul__

    def rerandomize(self, rng=None) -> "PaillierCiphertext":
        """Fresh randomness, same plaintext (unlinkability)."""
        zero = self.public_key.encrypt(0, rng=rng)
        return self + zero

    def to_dict(self) -> dict:
        return {"n": self.public_key.n, "c": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PaillierCiphertext(<{self.value % 10**8}...>)"


# -- multicore batch operations ---------------------------------------------
#
# Chunk functions run inside repro.parallel workers.  They take/return
# plain integers (pickling-cheap) and rebuild key objects from their
# defining integers, cached per process so a worker derives CRT
# parameters once however many chunks it serves.

_WORKER_PUBLIC_KEYS: Dict[int, PaillierPublicKey] = {}
_WORKER_PRIVATE_KEYS: Dict[Tuple[int, int], PaillierPrivateKey] = {}


def _worker_public_key(n: int) -> PaillierPublicKey:
    key = _WORKER_PUBLIC_KEYS.get(n)
    if key is None:
        key = _WORKER_PUBLIC_KEYS[n] = PaillierPublicKey(n=n)
    return key


def _worker_private_key(p: int, q: int) -> PaillierPrivateKey:
    key = _WORKER_PRIVATE_KEYS.get((p, q))
    if key is None:
        key = PaillierPrivateKey(
            public_key=PaillierPublicKey(n=p * q), p=p, q=q
        )
        _WORKER_PRIVATE_KEYS[(p, q)] = key
    return key


def _obfuscator_chunk(items: List[Tuple[int, int]]) -> List[int]:
    """``[(n, r), ...] -> [r^n mod n², ...]`` (the precompute hot loop)."""
    out = []
    for n, r in items:
        out.append(_obfuscate(n, _worker_public_key(n).n_squared, r))
    return out


def _encrypt_chunk(items: List[Tuple[int, int, Optional[int]]]) -> List[int]:
    """``[(n, m, r_or_None), ...] -> [ciphertext value, ...]``.

    ``r`` is pre-drawn when the caller wants deterministic randomness
    (seeded rng); ``None`` means the worker draws its own from the OS
    CSPRNG — each process independently, never a shared pool.
    """
    out = []
    for n, m, r in items:
        key = _worker_public_key(n)
        n_sq = key.n_squared
        if r is None:
            obfuscator = key._obfuscator()
        else:
            obfuscator = _obfuscate(n, n_sq, r)
        out.append(((1 + n * (m % n)) % n_sq) * obfuscator % n_sq)
    return out


def _decrypt_chunk(items: List[Tuple[int, int, int]]) -> List[int]:
    """``[(p, q, c), ...] -> [m, ...]`` via the CRT fast path."""
    out = []
    for p, q, c in items:
        out.append(_worker_private_key(p, q)._decrypt_crt_value(c))
    return out


def _fold_chunk(items: List[Tuple[int, int]]) -> List[int]:
    """``[(n, c), ...] -> [product of the chunk's c mod n²]``.

    One partial product per chunk; the caller combines the partials
    serially, so the homomorphic sum is associative-regrouped but
    value-identical to a serial left fold.
    """
    n = items[0][0]
    n_sq = _worker_public_key(n).n_squared
    acc = 1
    for _, c in items:
        acc = acc * c % n_sq
    return [acc]


def _weighted_fold_chunk(items: List[Tuple[int, int, int]]) -> List[int]:
    """``[(n, c, w), ...] -> [Π c^w mod n²]`` via one simultaneous
    multi-exponentiation (shared Straus squaring chain per chunk)."""
    n = items[0][0]
    n_sq = _worker_public_key(n).n_squared
    return [multi_exp([(c, w) for _, c, w in items], n_sq)]


def encrypt_batch(
    public_key: PaillierPublicKey,
    plaintexts: Sequence[int],
    signed: bool = False,
    executor=None,
    rng=None,
) -> List["PaillierCiphertext"]:
    """Encrypt many plaintexts, chunked across executor workers.

    With a seeded ``rng`` the obfuscator randomness is drawn serially
    up front, so the resulting ciphertext list is identical whichever
    executor runs the exponentiations.  Without one, serial execution
    drains this process's randomness pool (FIFO) exactly as repeated
    :meth:`PaillierPublicKey.encrypt` calls would, and parallel workers
    draw fresh CSPRNG randomness locally.
    """
    plaintexts = list(plaintexts)
    if signed:
        half = public_key.n // 2
        for m in plaintexts:
            if abs(m) >= half:
                raise PaillierError("signed plaintext out of range")
    if executor is None or not getattr(executor, "parallel", False):
        method = public_key.encrypt_signed if signed else public_key.encrypt
        return [method(m, rng=rng) for m in plaintexts]
    n = public_key.n
    if rng is not None:
        items = [(n, m % n, random_coprime(n, rng=rng)) for m in plaintexts]
    else:
        items = [(n, m % n, None) for m in plaintexts]
    values = executor.map_chunks(_encrypt_chunk, items,
                                 label="paillier.encrypt")
    return [PaillierCiphertext(public_key=public_key, value=v)
            for v in values]


def decrypt_batch(
    private_key: PaillierPrivateKey,
    ciphertexts: Sequence["PaillierCiphertext"],
    signed: bool = False,
    executor=None,
) -> List[int]:
    """Decrypt many ciphertexts, chunked across executor workers.

    Bit-identical to per-ciphertext :meth:`PaillierPrivateKey.decrypt`
    (or ``decrypt_signed``) in order, including the non-coprime
    rejection, which surfaces from worker processes unchanged.
    """
    ciphertexts = list(ciphertexts)
    for ciphertext in ciphertexts:
        private_key._check_key(ciphertext)
    if executor is None or not getattr(executor, "parallel", False):
        method = (private_key.decrypt_signed if signed
                  else private_key.decrypt)
        return [method(c) for c in ciphertexts]
    p, q = private_key.p, private_key.q
    values = executor.map_chunks(
        _decrypt_chunk, [(p, q, c.value) for c in ciphertexts],
        label="paillier.decrypt",
    )
    if not signed:
        return values
    n = private_key.public_key.n
    half = n // 2
    return [v - n if v > half else v for v in values]


def fold_ciphertexts(
    ciphertexts: Sequence["PaillierCiphertext"],
    public_key: Optional[PaillierPublicKey] = None,
    executor=None,
    weights: Optional[Sequence[int]] = None,
) -> "PaillierCiphertext":
    """Homomorphically sum a batch: partial products per worker chunk,
    combined serially (modular multiplication is associative, so the
    result equals the serial left fold bit-for-bit).

    With ``weights`` the result encrypts the weighted sum ``Σ w_i·m_i``
    (``Π c_i^{w_i} mod n²``), computed with simultaneous
    multi-exponentiation — one shared squaring chain per chunk instead
    of one full exponentiation per ciphertext.  Weights are reduced
    modulo ``n``, matching ``ciphertext * w`` semantics.

    An empty batch returns the multiplicative identity ciphertext
    (``c = 1``, an encryption of 0 with unit randomness) and requires
    ``public_key``.
    """
    ciphertexts = list(ciphertexts)
    if not ciphertexts:
        if public_key is None:
            raise PaillierError("empty fold needs an explicit public key")
        return PaillierCiphertext(public_key=public_key, value=1)
    public_key = ciphertexts[0].public_key
    for ciphertext in ciphertexts:
        if ciphertext.public_key.n != public_key.n:
            raise PaillierError("cannot fold ciphertexts under different keys")
    n, n_sq = public_key.n, public_key.n_squared
    if weights is not None:
        weights = [w % n for w in weights]
        if len(weights) != len(ciphertexts):
            raise PaillierError("weights must match ciphertexts 1:1")
        items = [(n, c.value, w) for c, w in zip(ciphertexts, weights)]
        if executor is None or not getattr(executor, "parallel", False):
            partials = _weighted_fold_chunk(items)
        else:
            partials = executor.map_chunks(
                _weighted_fold_chunk, items, label="paillier.fold",
            )
        acc = 1
        for partial in partials:
            acc = acc * partial % n_sq
        return PaillierCiphertext(public_key=public_key, value=acc)
    if executor is None or not getattr(executor, "parallel", False):
        acc = 1
        for ciphertext in ciphertexts:
            acc = acc * ciphertext.value % n_sq
        return PaillierCiphertext(public_key=public_key, value=acc)
    partials = executor.map_chunks(
        _fold_chunk, [(n, c.value) for c in ciphertexts],
        label="paillier.fold",
    )
    acc = 1
    for partial in partials:
        acc = acc * partial % n_sq
    return PaillierCiphertext(public_key=public_key, value=acc)


def generate_paillier_keypair(bits: int = DEFAULT_KEY_BITS, rng=None) -> PaillierKeyPair:
    """Generate a Paillier key pair with an n of roughly ``bits`` bits."""
    rng = rng or SystemRandomSource()
    half = bits // 2
    while True:
        p = generate_prime(half, rng=rng)
        q = generate_prime(half, rng=rng)
        if p == q:
            continue
        n = p * q
        if math.gcd(n, (p - 1) * (q - 1)) == 1:
            public = PaillierPublicKey(n=n)
            private = PaillierPrivateKey(public_key=public, p=p, q=q)
            return PaillierKeyPair(public_key=public, private_key=private)
