"""Paillier additively homomorphic encryption, from scratch.

PReVer's Research Challenge 1 calls for computing on encrypted data so
an untrusted data manager can verify constraints without seeing
plaintexts.  The constraints PReVer's applications need (COUNT/SUM
bounds, linear aggregates, sliding-window sums) are linear, and Paillier
supports exactly:

* ``Enc(a) * Enc(b) = Enc(a + b)``   (ciphertext multiplication)
* ``Enc(a) ^ k    = Enc(a * k)``     (scalar exponentiation)

Hot-path precomputation (the pipeline decrypts one aggregate per
update, so constant factors matter):

* keys cache everything derivable at construction — ``n²``, the
  Carmichael ``λ`` and classic ``μ``, and the CRT partial inverses
  ``hp``/``hq`` plus ``q⁻¹ mod p`` — so :meth:`PaillierPrivateKey.decrypt`
  is two half-size modular exponentiations and no inversions;
* :meth:`PaillierPublicKey.precompute_randomness` fills a pool of
  ``r^n mod n²`` obfuscators ahead of time (the classic offline/online
  split), so the online cost of :meth:`PaillierPublicKey.encrypt`
  drops to two modular multiplications.

Plaintexts are integers modulo ``n``; negative values are represented
in the upper half of the range (two's-complement style) and mapped back
by :meth:`decrypt_signed`.
"""

import math
from dataclasses import dataclass

from repro.common.errors import PReVerError
from repro.common.randomness import SystemRandomSource
from repro.crypto.numbers import (
    generate_prime,
    lcm,
    modinv,
    random_coprime,
)

DEFAULT_KEY_BITS = 512


class PaillierError(PReVerError):
    """Raised on key/ciphertext misuse (mismatched keys, bad range)."""


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public key: modulus n and generator g = n + 1."""

    n: int

    def __post_init__(self):
        # Frozen dataclass: stash derived values via object.__setattr__.
        # Equality/hash stay defined over ``n`` alone.
        object.__setattr__(self, "_n_sq", self.n * self.n)
        object.__setattr__(self, "_r_pool", [])

    @property
    def n_squared(self) -> int:
        return self._n_sq

    @property
    def g(self) -> int:
        return self.n + 1

    @property
    def max_plaintext(self) -> int:
        return self.n - 1

    # -- precomputed-randomness pool (offline phase) ---------------------

    def precompute_randomness(self, count: int, rng=None) -> int:
        """Generate ``count`` obfuscators ``r^n mod n²`` ahead of time.

        This is the expensive part of encryption; banking it offline
        makes the online :meth:`encrypt` two multiplications.  Returns
        the resulting pool size.
        """
        rng = rng or SystemRandomSource()
        n, n_sq = self.n, self._n_sq
        pool = self._r_pool
        for _ in range(count):
            pool.append(pow(random_coprime(n, rng=rng), n, n_sq))
        return len(pool)

    @property
    def randomness_pool_size(self) -> int:
        return len(self._r_pool)

    def _obfuscator(self, rng=None) -> int:
        """``r^n mod n²`` — pooled when available and no explicit rng
        was requested (an explicit rng means the caller wants control
        over the randomness, so the pool is bypassed)."""
        if rng is None and self._r_pool:
            return self._r_pool.pop()
        rng = rng or SystemRandomSource()
        return pow(random_coprime(self.n, rng=rng), self.n, self._n_sq)

    def encrypt(self, plaintext: int, rng=None) -> "PaillierCiphertext":
        """Encrypt an integer in [0, n)."""
        m = plaintext % self.n
        n_sq = self._n_sq
        # (n+1)^m = 1 + n*m (mod n^2), so skip the full modpow.
        c = ((1 + self.n * m) % n_sq) * self._obfuscator(rng) % n_sq
        return PaillierCiphertext(public_key=self, value=c)

    def encrypt_signed(self, plaintext: int, rng=None) -> "PaillierCiphertext":
        """Encrypt a possibly negative integer (|m| must be < n/2)."""
        if abs(plaintext) >= self.n // 2:
            raise PaillierError("signed plaintext out of range")
        return self.encrypt(plaintext % self.n, rng=rng)


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Private key holding the factorization, with CRT precomputation."""

    public_key: PaillierPublicKey
    p: int
    q: int

    def __post_init__(self):
        if self.p * self.q != self.public_key.n:
            raise PaillierError("private key does not match public key")
        n = self.public_key.n
        g = self.public_key.g
        p, q = self.p, self.q
        # Classic-path parameters: λ = lcm(p-1, q-1), μ = L(g^λ mod n²)⁻¹.
        lam = lcm(p - 1, q - 1)
        u = pow(g, lam, self.public_key.n_squared)
        mu = modinv((u - 1) // n, n)
        object.__setattr__(self, "_lambda", lam)
        object.__setattr__(self, "_mu", mu)
        # CRT-path parameters: hp = Lp(g^(p-1) mod p²)⁻¹ mod p (same for
        # q) and the recombination coefficient q⁻¹ mod p.
        object.__setattr__(self, "_p_sq", p * p)
        object.__setattr__(self, "_q_sq", q * q)
        gp = pow(g, p - 1, p * p)
        gq = pow(g, q - 1, q * q)
        object.__setattr__(self, "_hp", modinv((gp - 1) // p, p))
        object.__setattr__(self, "_hq", modinv((gq - 1) // q, q))
        object.__setattr__(self, "_q_inv_p", modinv(q, p))

    def _check_key(self, ciphertext: "PaillierCiphertext") -> None:
        if ciphertext.public_key.n != self.public_key.n:
            raise PaillierError("ciphertext was encrypted under another key")

    def decrypt(self, ciphertext: "PaillierCiphertext") -> int:
        """Decrypt to an integer in [0, n) (CRT fast path)."""
        self._check_key(ciphertext)
        return self._decrypt_crt_value(ciphertext.value)

    def decrypt_classic(self, ciphertext: "PaillierCiphertext") -> int:
        """Textbook decryption via λ/μ (same result as :meth:`decrypt`,
        one full-size exponentiation; kept as a cross-check)."""
        self._check_key(ciphertext)
        n = self.public_key.n
        u = pow(ciphertext.value, self._lambda, self.public_key.n_squared)
        return ((u - 1) // n) * self._mu % n

    def decrypt_signed(self, ciphertext: "PaillierCiphertext") -> int:
        """Decrypt, mapping the upper half of [0, n) to negatives."""
        value = self.decrypt(ciphertext)
        n = self.public_key.n
        if value > n // 2:
            return value - n
        return value

    def decrypt_crt(self, ciphertext: "PaillierCiphertext") -> int:
        """CRT-accelerated decryption (the :meth:`decrypt` fast path)."""
        self._check_key(ciphertext)
        return self._decrypt_crt_value(ciphertext.value)

    def _decrypt_crt_value(self, c: int) -> int:
        p, q = self.p, self.q
        mp = (pow(c, p - 1, self._p_sq) - 1) // p * self._hp % p
        mq = (pow(c, q - 1, self._q_sq) - 1) // q * self._hq % q
        # Recombine: m ≡ mp (mod p), m ≡ mq (mod q).
        h = self._q_inv_p * (mp - mq) % p
        return (mq + q * h) % self.public_key.n


@dataclass(frozen=True)
class PaillierKeyPair:
    public_key: PaillierPublicKey
    private_key: PaillierPrivateKey


class PaillierCiphertext:
    """A Paillier ciphertext supporting homomorphic operations.

    Operators: ``ct + ct`` and ``ct + int`` give encrypted sums;
    ``ct * int`` gives an encrypted scalar product.  Ciphertext-by-
    ciphertext multiplication is *not* possible in Paillier (that is
    exactly the FHE gap the paper discusses) and raises ``TypeError``.
    """

    __slots__ = ("public_key", "value")

    def __init__(self, public_key: PaillierPublicKey, value: int):
        self.public_key = public_key
        self.value = value % public_key.n_squared

    def __add__(self, other):
        n_sq = self.public_key.n_squared
        if isinstance(other, PaillierCiphertext):
            if other.public_key.n != self.public_key.n:
                raise PaillierError("cannot add ciphertexts under different keys")
            return PaillierCiphertext(self.public_key, self.value * other.value % n_sq)
        if isinstance(other, int):
            encrypted = self.public_key.encrypt(other)
            return self + encrypted
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other):
        if isinstance(other, PaillierCiphertext):
            return self + (other * -1)
        if isinstance(other, int):
            return self + (-other)
        return NotImplemented

    def __mul__(self, scalar):
        if not isinstance(scalar, int):
            return NotImplemented
        n = self.public_key.n
        exponent = scalar % n
        return PaillierCiphertext(
            self.public_key, pow(self.value, exponent, self.public_key.n_squared)
        )

    __rmul__ = __mul__

    def rerandomize(self, rng=None) -> "PaillierCiphertext":
        """Fresh randomness, same plaintext (unlinkability)."""
        zero = self.public_key.encrypt(0, rng=rng)
        return self + zero

    def to_dict(self) -> dict:
        return {"n": self.public_key.n, "c": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PaillierCiphertext(<{self.value % 10**8}...>)"


def generate_paillier_keypair(bits: int = DEFAULT_KEY_BITS, rng=None) -> PaillierKeyPair:
    """Generate a Paillier key pair with an n of roughly ``bits`` bits."""
    rng = rng or SystemRandomSource()
    half = bits // 2
    while True:
        p = generate_prime(half, rng=rng)
        q = generate_prime(half, rng=rng)
        if p == q:
            continue
        n = p * q
        if math.gcd(n, (p - 1) * (q - 1)) == 1:
            public = PaillierPublicKey(n=n)
            private = PaillierPrivateKey(public_key=public, p=p, q=q)
            return PaillierKeyPair(public_key=public, private_key=private)
