"""Cryptographic substrates, implemented from scratch.

PReVer's research challenges name a menu of cryptographic techniques;
this package provides working implementations of each building block:

* number theory: Miller–Rabin primality, modular inverse, CRT;
* a Schnorr group (prime-order subgroup of Z_p*) for commitments,
  signatures and sigma protocols;
* Paillier additively homomorphic encryption (RC1: compute on
  encrypted data);
* exponential ElGamal (additively homomorphic in the exponent, used
  where rerandomizable ciphertexts are convenient);
* Pedersen commitments and Schnorr signatures;
* RSA and RSA blind signatures (RC2: unlinkable single-use tokens);
* Shamir and additive secret sharing plus Beaver triples (RC2: MPC);
* sigma-protocol zero-knowledge proofs with Fiat–Shamir (RC1:
  verifiable constraint execution);
* Merkle trees with inclusion and consistency proofs (RC4: ledgers).

Keys default to sizes that are *fast enough for a Python simulator*
(512-bit moduli); every generator takes a ``bits`` parameter so callers
can choose production sizes.
"""

from repro.crypto.numbers import (
    is_probable_prime,
    generate_prime,
    generate_safe_prime,
    modinv,
    crt_pair,
)
from repro.crypto.group import SchnorrGroup
from repro.crypto.paillier import (
    PaillierKeyPair,
    PaillierPublicKey,
    PaillierPrivateKey,
    PaillierCiphertext,
    generate_paillier_keypair,
)
from repro.crypto.elgamal import ElGamalKeyPair, generate_elgamal_keypair
from repro.crypto.commitments import PedersenCommitter, PedersenCommitment
from repro.crypto.signatures import SchnorrSigner, SchnorrVerifier, SchnorrSignature
from repro.crypto.rsa import RSAKeyPair, generate_rsa_keypair
from repro.crypto.blind import BlindSigner, BlindClient, BlindedToken
from repro.crypto.sharing import (
    additive_share,
    additive_reconstruct,
    shamir_share,
    shamir_reconstruct,
    BeaverTripleDealer,
)
from repro.crypto.merkle import MerkleTree, InclusionProof, ConsistencyProof
from repro.crypto.hashing import sha256d, hash_to_int, prf
from repro.crypto import zkp

__all__ = [
    "is_probable_prime",
    "generate_prime",
    "generate_safe_prime",
    "modinv",
    "crt_pair",
    "SchnorrGroup",
    "PaillierKeyPair",
    "PaillierPublicKey",
    "PaillierPrivateKey",
    "PaillierCiphertext",
    "generate_paillier_keypair",
    "ElGamalKeyPair",
    "generate_elgamal_keypair",
    "PedersenCommitter",
    "PedersenCommitment",
    "SchnorrSigner",
    "SchnorrVerifier",
    "SchnorrSignature",
    "RSAKeyPair",
    "generate_rsa_keypair",
    "BlindSigner",
    "BlindClient",
    "BlindedToken",
    "additive_share",
    "additive_reconstruct",
    "shamir_share",
    "shamir_reconstruct",
    "BeaverTripleDealer",
    "MerkleTree",
    "InclusionProof",
    "ConsistencyProof",
    "sha256d",
    "hash_to_int",
    "prf",
    "zkp",
]
