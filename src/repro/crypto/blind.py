"""Chaum RSA blind signatures — the unlinkable-token primitive.

Separ's regulation tokens must be (a) issued by the authority, (b)
single-use, and (c) unlinkable: when a platform sees a token being
spent it must not learn which issuance event it came from, otherwise
the platform links the worker's activity across platforms.  Chaum's
protocol achieves this:

    client:  m' = H(m) * r^e  (mod n)      -- blind
    signer:  s' = (m')^d      (mod n)      -- sign blindly
    client:  s  = s' * r^-1   (mod n)      -- unblind; s = H(m)^d

The signer never sees ``m`` or ``s``; the verifier checks the ordinary
FDH-RSA equation.
"""

from dataclasses import dataclass

from repro.common.errors import PReVerError
from repro.common.randomness import SystemRandomSource
from repro.crypto.numbers import modinv, random_coprime
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey, generate_rsa_keypair


class BlindSignatureError(PReVerError):
    pass


@dataclass(frozen=True)
class BlindedToken:
    """What the client sends to the signer: the blinded hash."""

    blinded: int


class BlindSigner:
    """The authority side: blindly signs whatever residue it is handed.

    Real deployments rate-limit and authenticate this endpoint; the
    token scheme layers issuance policy on top (see
    ``repro.privacy.tokens``).
    """

    def __init__(self, keypair: RSAKeyPair = None, bits: int = 768, rng=None):
        self._keypair = keypair or generate_rsa_keypair(bits, rng=rng)
        self.signatures_issued = 0

    @property
    def public_key(self) -> RSAPublicKey:
        return self._keypair.public_key

    def sign_blinded(self, token: BlindedToken) -> int:
        if not 0 < token.blinded < self.public_key.n:
            raise BlindSignatureError("blinded value out of range")
        self.signatures_issued += 1
        return self._keypair.private_key.sign_raw(token.blinded)


class BlindClient:
    """The client side: blinds a message, unblinds the signature."""

    def __init__(self, public_key: RSAPublicKey, rng=None):
        self.public_key = public_key
        self._rng = rng or SystemRandomSource()
        self._blinding_factor = None
        self._message = None

    def blind(self, message: bytes) -> BlindedToken:
        if self._blinding_factor is not None:
            raise BlindSignatureError("client already has a blinding in flight")
        n, e = self.public_key.n, self.public_key.e
        r = random_coprime(n, rng=self._rng)
        self._blinding_factor = r
        self._message = message
        blinded = self.public_key.fdh(message) * pow(r, e, n) % n
        return BlindedToken(blinded=blinded)

    def unblind(self, blind_signature: int) -> int:
        if self._blinding_factor is None:
            raise BlindSignatureError("no blinding in flight")
        n = self.public_key.n
        signature = blind_signature * modinv(self._blinding_factor, n) % n
        if not self.public_key.verify(self._message, signature):
            raise BlindSignatureError("signer returned an invalid signature")
        self._blinding_factor = None
        self._message = None
        return signature
