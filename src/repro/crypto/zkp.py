"""Sigma-protocol zero-knowledge proofs, Fiat–Shamir transformed.

PReVer's RC1 asks the untrusted data manager to *prove* it executed a
constraint correctly without revealing private inputs.  The paper names
zk-SNARKs; we substitute classical sigma protocols (see DESIGN.md),
which provide the same functionality with linear-size proofs:

* :class:`DlogProof` — knowledge of x with y = g^x (Schnorr);
* :class:`CommitmentEqualityProof` — two Pedersen commitments hide the
  same value;
* :class:`BitProof` — a commitment hides 0 or 1 (OR-composition);
* :class:`RangeProof` — a commitment hides a value in [0, 2^bits)
  via bit decomposition, which is exactly what upper/lower-bound
  regulations (Separ, FLSA) need.

All proofs are non-interactive: the challenge is a hash of the full
transcript (Fiat–Shamir), domain-separated per protocol.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import IntegrityError
from repro.crypto.commitments import PedersenCommitment, PedersenCommitter
from repro.crypto.group import SchnorrGroup
from repro.crypto.hashing import hash_to_int
from repro.crypto.numbers import int_to_bytes, modinv


def _fs_challenge(group: SchnorrGroup, domain: bytes, *elements: int) -> int:
    payload = b"|".join(int_to_bytes(e % group.p) for e in elements)
    return hash_to_int(payload, group.q, domain=domain)


# ---------------------------------------------------------------------------
# Knowledge of discrete log (Schnorr's protocol)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DlogProof:
    """Proof of knowledge of x such that y = base^x."""

    commitment: int
    response: int

    def to_dict(self) -> dict:
        return {"t": self.commitment, "s": self.response}


def prove_dlog(
    group: SchnorrGroup, base: int, secret: int, rng=None
) -> Tuple[int, DlogProof]:
    """Returns (y, proof) with y = base^secret."""
    y = group.power(base, secret)
    k = group.random_exponent(rng)
    t = group.power(base, k)
    e = _fs_challenge(group, b"zkp-dlog", base, y, t)
    s = (k + e * secret) % group.q
    return y, DlogProof(commitment=t, response=s)


def verify_dlog(group: SchnorrGroup, base: int, y: int, proof: DlogProof) -> bool:
    if not (group.is_member(y) and group.is_member(proof.commitment)):
        return False
    e = _fs_challenge(group, b"zkp-dlog", base, y, proof.commitment)
    lhs = group.power(base, proof.response)
    rhs = proof.commitment * group.power(y, e) % group.p
    return lhs == rhs


# ---------------------------------------------------------------------------
# Equality of committed values
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CommitmentEqualityProof:
    """Both commitments hide the same message (different randomness)."""

    t1: int
    t2: int
    s_m: int
    s_r1: int
    s_r2: int


def prove_commitment_equality(
    committer: PedersenCommitter,
    message: int,
    r1: int,
    r2: int,
    rng=None,
) -> CommitmentEqualityProof:
    group = committer.group
    k_m = group.random_exponent(rng)
    k_r1 = group.random_exponent(rng)
    k_r2 = group.random_exponent(rng)
    t1 = group.power(committer.g, k_m) * group.power(committer.h, k_r1) % group.p
    t2 = group.power(committer.g, k_m) * group.power(committer.h, k_r2) % group.p
    c1 = committer.commit_with(message, r1).value
    c2 = committer.commit_with(message, r2).value
    e = _fs_challenge(group, b"zkp-eq", c1, c2, t1, t2)
    return CommitmentEqualityProof(
        t1=t1,
        t2=t2,
        s_m=(k_m + e * message) % group.q,
        s_r1=(k_r1 + e * r1) % group.q,
        s_r2=(k_r2 + e * r2) % group.q,
    )


def verify_commitment_equality(
    committer: PedersenCommitter,
    c1: PedersenCommitment,
    c2: PedersenCommitment,
    proof: CommitmentEqualityProof,
) -> bool:
    group = committer.group
    e = _fs_challenge(group, b"zkp-eq", c1.value, c2.value, proof.t1, proof.t2)
    lhs1 = (
        group.power(committer.g, proof.s_m)
        * group.power(committer.h, proof.s_r1)
        % group.p
    )
    rhs1 = proof.t1 * group.power(c1.value, e) % group.p
    lhs2 = (
        group.power(committer.g, proof.s_m)
        * group.power(committer.h, proof.s_r2)
        % group.p
    )
    rhs2 = proof.t2 * group.power(c2.value, e) % group.p
    return lhs1 == rhs1 and lhs2 == rhs2


# ---------------------------------------------------------------------------
# Bit proof: a commitment hides 0 or 1 (OR-composition of two Schnorr
# proofs with simulated branches, per Cramer–Damgård–Schoenmakers)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BitProof:
    t0: int
    t1: int
    e0: int
    e1: int
    s0: int
    s1: int


def prove_bit(
    committer: PedersenCommitter, bit: int, randomness: int, rng=None
) -> BitProof:
    """Prove Commit(bit, randomness) hides a value in {0, 1}."""
    if bit not in (0, 1):
        raise IntegrityError("prove_bit called with a non-bit value")
    group = committer.group
    c = committer.commit_with(bit, randomness).value
    # For bit b, prove knowledge of r such that c / g^b = h^r (real
    # branch); simulate the other branch.
    # Statement 0: c       = h^r        (bit == 0)
    # Statement 1: c / g   = h^r        (bit == 1)
    y0 = c
    y1 = c * modinv(group.power(committer.g, 1), group.p) % group.p
    if bit == 0:
        real_y, fake_y = y0, y1
    else:
        real_y, fake_y = y1, y0
    # Simulate fake branch: pick e_fake, s_fake; t_fake = h^s / y^e.
    e_fake = group.random_exponent(rng)
    s_fake = group.random_exponent(rng)
    t_fake = (
        group.power(committer.h, s_fake)
        * modinv(group.power(fake_y, e_fake), group.p)
        % group.p
    )
    # Real branch commitment.
    k = group.random_exponent(rng)
    t_real = group.power(committer.h, k)
    if bit == 0:
        t0, t1 = t_real, t_fake
    else:
        t0, t1 = t_fake, t_real
    e = _fs_challenge(group, b"zkp-bit", c, t0, t1)
    e_real = (e - e_fake) % group.q
    s_real = (k + e_real * randomness) % group.q
    if bit == 0:
        return BitProof(t0=t0, t1=t1, e0=e_real, e1=e_fake, s0=s_real, s1=s_fake)
    return BitProof(t0=t0, t1=t1, e0=e_fake, e1=e_real, s0=s_fake, s1=s_real)


def verify_bit(
    committer: PedersenCommitter, commitment: PedersenCommitment, proof: BitProof
) -> bool:
    group = committer.group
    c = commitment.value
    e = _fs_challenge(group, b"zkp-bit", c, proof.t0, proof.t1)
    if (proof.e0 + proof.e1) % group.q != e:
        return False
    y0 = c
    y1 = c * modinv(committer.g, group.p) % group.p
    ok0 = (
        group.power(committer.h, proof.s0)
        == proof.t0 * group.power(y0, proof.e0) % group.p
    )
    ok1 = (
        group.power(committer.h, proof.s1)
        == proof.t1 * group.power(y1, proof.e1) % group.p
    )
    return ok0 and ok1


# ---------------------------------------------------------------------------
# Range proof via bit decomposition
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RangeProof:
    """Proves a commitment hides a value in [0, 2^bits).

    Contains one bit-commitment and bit-proof per binary digit; the
    verifier also checks that the weighted product of bit commitments
    recombines to the value commitment (which ties the bits to the
    committed value because commitment randomness was chosen to match).
    """

    bits: int
    bit_commitments: List[PedersenCommitment]
    bit_proofs: List[BitProof]


def prove_range(
    committer: PedersenCommitter, value: int, bits: int, rng=None
) -> Tuple[PedersenCommitment, int, RangeProof]:
    """Commit to ``value`` and prove 0 <= value < 2^bits.

    Returns (commitment, randomness, proof).  The randomness of the
    value commitment is the weighted sum of bit randomness, so the
    recombination check is exact.
    """
    if not 0 <= value < (1 << bits):
        raise IntegrityError("value outside the provable range")
    group = committer.group
    bit_commitments: List[PedersenCommitment] = []
    bit_proofs: List[BitProof] = []
    total_randomness = 0
    for i in range(bits):
        bit = (value >> i) & 1
        r_i = group.random_exponent(rng)
        bit_commitments.append(committer.commit_with(bit, r_i))
        bit_proofs.append(prove_bit(committer, bit, r_i, rng=rng))
        total_randomness = (total_randomness + (r_i << i)) % group.q
    commitment = committer.commit_with(value, total_randomness)
    proof = RangeProof(
        bits=bits, bit_commitments=bit_commitments, bit_proofs=bit_proofs
    )
    return commitment, total_randomness, proof


def verify_range(
    committer: PedersenCommitter,
    commitment: PedersenCommitment,
    proof: RangeProof,
) -> bool:
    group = committer.group
    if len(proof.bit_commitments) != proof.bits:
        return False
    if len(proof.bit_proofs) != proof.bits:
        return False
    for bit_commitment, bit_proof in zip(proof.bit_commitments, proof.bit_proofs):
        if not verify_bit(committer, bit_commitment, bit_proof):
            return False
    # Recombine: prod_i C_i^(2^i) must equal the value commitment.
    recombined = 1
    for i, bit_commitment in enumerate(proof.bit_commitments):
        recombined = (
            recombined * group.power(bit_commitment.value, 1 << i) % group.p
        )
    return recombined == commitment.value


def prove_upper_bound(
    committer: PedersenCommitter,
    value: int,
    bound: int,
    bits: int,
    rng=None,
) -> Tuple[PedersenCommitment, int, "BoundProof"]:
    """Prove value <= bound by range-proving the slack (bound - value).

    This is precisely the FLSA-style regulation check: a worker proves
    their cumulative hours do not exceed the cap, without revealing the
    hours.  Returns (value_commitment, value_randomness, proof).
    """
    if value > bound:
        raise IntegrityError("cannot prove a false bound")
    slack = bound - value
    slack_commitment, slack_randomness, slack_proof = prove_range(
        committer, slack, bits, rng=rng
    )
    value_commitment, value_randomness, value_proof = prove_range(
        committer, value, bits, rng=rng
    )
    return (
        value_commitment,
        value_randomness,
        BoundProof(
            bound=bound,
            slack_commitment=slack_commitment,
            slack_proof=slack_proof,
            value_proof=value_proof,
            combined_randomness=(value_randomness + slack_randomness)
            % committer.group.q,
        ),
    )


@dataclass(frozen=True)
class BoundProof:
    bound: int
    slack_commitment: PedersenCommitment
    slack_proof: RangeProof
    value_proof: RangeProof
    combined_randomness: int


def prove_lower_bound(
    committer: PedersenCommitter,
    value: int,
    bound: int,
    bits: int,
    rng=None,
) -> Tuple[PedersenCommitment, int, "LowerBoundProof"]:
    """Prove value >= bound by range-proving the excess (value - bound).

    The lower-bound regulations Separ also supports (e.g. minimum
    activity / minimum wage), in zero knowledge.
    Returns (value_commitment, value_randomness, proof).
    """
    if value < bound:
        raise IntegrityError("cannot prove a false lower bound")
    excess = value - bound
    excess_commitment, excess_randomness, excess_proof = prove_range(
        committer, excess, bits, rng=rng
    )
    value_commitment, value_randomness, value_proof = prove_range(
        committer, value, bits, rng=rng
    )
    return (
        value_commitment,
        value_randomness,
        LowerBoundProof(
            bound=bound,
            excess_commitment=excess_commitment,
            excess_proof=excess_proof,
            value_proof=value_proof,
            # value = bound + excess, so Commit(value) must equal
            # Commit(bound, 0) * Commit(excess); randomness matches
            # when r_value - r_excess is published.
            randomness_difference=(value_randomness - excess_randomness)
            % committer.group.q,
        ),
    )


@dataclass(frozen=True)
class LowerBoundProof:
    bound: int
    excess_commitment: PedersenCommitment
    excess_proof: RangeProof
    value_proof: RangeProof
    randomness_difference: int


def verify_lower_bound(
    committer: PedersenCommitter,
    value_commitment: PedersenCommitment,
    proof: LowerBoundProof,
) -> bool:
    """Check C_value == Commit(bound, diff) * C_excess plus both range
    proofs — hence value = bound + excess with excess >= 0."""
    if not verify_range(committer, value_commitment, proof.value_proof):
        return False
    if not verify_range(committer, proof.excess_commitment, proof.excess_proof):
        return False
    expected = committer.combine(
        committer.commit_with(proof.bound, proof.randomness_difference),
        proof.excess_commitment,
    )
    return expected.value == value_commitment.value


def verify_upper_bound(
    committer: PedersenCommitter,
    value_commitment: PedersenCommitment,
    proof: BoundProof,
) -> bool:
    """Check C_value * C_slack == Commit(bound, combined_randomness)
    plus both range proofs — hence value in [0, 2^bits) and
    value + slack == bound with slack >= 0, i.e. value <= bound."""
    if not verify_range(committer, value_commitment, proof.value_proof):
        return False
    if not verify_range(committer, proof.slack_commitment, proof.slack_proof):
        return False
    combined = committer.combine(value_commitment, proof.slack_commitment)
    expected = committer.commit_with(proof.bound, proof.combined_randomness)
    return combined.value == expected.value
