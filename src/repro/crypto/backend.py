"""Modular-exponentiation acceleration layer.

Every hot ``pow(base, exp, mod)`` in the crypto stack routes through
this module, which provides three things:

1. **A pluggable fast-math backend.**  ``gmpy2`` (GMP bindings) is
   auto-detected and used for ``powmod`` / ``invert`` when importable;
   otherwise the pure-python implementations run.  Selection is
   overridable with ``REPRO_MATH_BACKEND=auto|gmpy2|python`` (or
   :func:`set_backend` in tests).  Both backends are value-identical —
   the equivalence property tests in ``tests/test_crypto_backend.py``
   pin ``powmod`` / ``invert`` agreement on randomized inputs — so the
   backend choice can never change a decision, digest, or WAL byte.

2. **Fixed-base windowed exponentiation** (:class:`FixedBaseTable`,
   :func:`fixed_base`).  For a long-lived base (a Schnorr group
   generator, a cached public key, an ElGamal ``y``) a one-time table
   of ``base^(d << w*i)`` turns every subsequent exponentiation into
   ~``bits/window`` modular multiplications with *no squarings* —
   measurably faster than CPython's C ``pow`` even from pure python
   (~3-5x at 256 bits with the default window).  Tables live in a
   bounded per-process cache: executor workers rebuild them lazily the
   way PR 3's key handles re-derive CRT constants, so nothing here is
   ever pickled.

3. **Simultaneous multi-exponentiation** (:func:`multi_exp`,
   Straus/interleaved).  ``Π base_i^{e_i} mod m`` over many pairs
   shares one squaring chain across every base, roughly halving the
   cost of the Schnorr random-linear-combination combined check and
   weighted ciphertext folds relative to independent ``pow`` calls.

The kernels are backend-aware: under gmpy2 the inner multiply loops
run on ``mpz`` limbs; under pure python they run on CPython longs.
Either way the returned values are plain ``int``.
"""

import os
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

from repro.common.errors import PReVerError

_ENV_BACKEND = "REPRO_MATH_BACKEND"

#: Default window width for fixed-base tables.  8 bits ⇒ one
#: multiplication per exponent byte and ``ceil(bits/8) * 256`` cached
#: entries per table (~256 KiB at 256-bit moduli) — the sweet spot
#: measured for pure python; see docs/OPERATIONS.md for the tradeoff.
DEFAULT_FIXED_BASE_WINDOW = 8

#: Window width for Straus interleaved multi-exponentiation (its
#: per-base tables are transient, so a small window wins).
DEFAULT_MULTI_EXP_WINDOW = 4

#: Fixed-base tables are built on the *second* sighting of a base by
#: default (``warm=False``), so one-shot verifications never pay the
#: table build; :data:`_FB_TABLE_CAP` bounds per-process table memory.
_FB_TABLE_CAP = 256
_FB_SEEN_CAP = 4096


class MathBackendError(PReVerError):
    """Unknown or unavailable math backend requested."""


def _egcd(a: int, b: int) -> Tuple[int, int]:
    """Extended Euclid restricted to what inversion needs: (g, x) with
    ``a*x ≡ g (mod b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
    return old_r, old_s


class PythonBackend:
    """Pure-python (CPython bigint) implementations — always available."""

    name = "python"

    #: Identity wrapper: kernels run their inner loops on ``wrap``-ed
    #: values (``mpz`` under gmpy2), plain ints here.
    wrap = staticmethod(int)

    @staticmethod
    def powmod(base: int, exponent: int, modulus: int) -> int:
        """``base ** exponent % modulus`` (CPython's C implementation)."""
        return pow(base, exponent, modulus)

    @staticmethod
    def invert(a: int, modulus: int) -> int:
        """Modular inverse; raises ``ValueError`` when not invertible."""
        g, x = _egcd(a % modulus, modulus)
        if g != 1:
            raise ValueError(f"{a} is not invertible modulo {modulus}")
        return x % modulus

    @staticmethod
    def mulmod(a: int, b: int, modulus: int) -> int:
        """``a * b % modulus``."""
        return a * b % modulus


class Gmpy2Backend:
    """GMP-accelerated implementations via ``gmpy2``.

    Results are converted back to plain ``int`` so downstream
    serialization, hashing, and equality are type-stable regardless of
    the backend in effect.
    """

    name = "gmpy2"

    def __init__(self, gmpy2):
        self._gmpy2 = gmpy2
        self.wrap = gmpy2.mpz

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        return int(self._gmpy2.powmod(base, exponent, modulus))

    def invert(self, a: int, modulus: int) -> int:
        try:
            return int(self._gmpy2.invert(a, modulus))
        except ZeroDivisionError:
            raise ValueError(f"{a} is not invertible modulo {modulus}") from None

    def mulmod(self, a: int, b: int, modulus: int) -> int:
        return int(self._gmpy2.mpz(a) * b % modulus)


_PYTHON_BACKEND = PythonBackend()


def _load_gmpy2() -> Optional[Gmpy2Backend]:
    try:
        import gmpy2  # noqa: F401 — optional accelerator, never a hard dep
    except ImportError:
        return None
    return Gmpy2Backend(gmpy2)


def _resolve(name: Optional[str]):
    name = (name or "auto").strip().lower() or "auto"
    if name == "python":
        return _PYTHON_BACKEND
    if name == "gmpy2":
        backend = _load_gmpy2()
        if backend is None:
            raise MathBackendError(
                "REPRO_MATH_BACKEND=gmpy2 but gmpy2 is not importable; "
                "install gmpy2 or use auto/python"
            )
        return backend
    if name == "auto":
        return _load_gmpy2() or _PYTHON_BACKEND
    raise MathBackendError(f"unknown math backend {name!r}")


_ACTIVE = None


def active_backend():
    """The backend in effect (resolving ``REPRO_MATH_BACKEND`` once)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = _resolve(os.environ.get(_ENV_BACKEND))
    return _ACTIVE


def backend_name() -> str:
    """Name of the active backend (``python`` or ``gmpy2``)."""
    return active_backend().name


def set_backend(name: Optional[str] = None) -> str:
    """Force a backend (``python`` / ``gmpy2`` / ``auto``; ``None``
    re-resolves the environment).  Clears the fixed-base table cache so
    subsequent tables build on the new backend.  Returns the name of
    the backend now in effect."""
    global _ACTIVE
    _ACTIVE = _resolve(name if name is not None
                       else os.environ.get(_ENV_BACKEND))
    clear_fixed_base_cache()
    return _ACTIVE.name


def powmod(base: int, exponent: int, modulus: int) -> int:
    """``base ** exponent % modulus`` through the active backend."""
    return active_backend().powmod(base, exponent, modulus)


def invert(a: int, modulus: int) -> int:
    """Modular inverse through the active backend.  Raises
    ``ValueError`` when ``a`` is not invertible."""
    return active_backend().invert(a, modulus)


def mulmod(a: int, b: int, modulus: int) -> int:
    """``a * b % modulus`` through the active backend."""
    return active_backend().mulmod(a, b, modulus)


# -- fixed-base windowed exponentiation --------------------------------------

class FixedBaseTable:
    """Precomputed powers of one base: ``rows[i][d] = base^(d << w*i)``.

    :meth:`pow` then needs only one table lookup and one modular
    multiplication per ``window``-bit digit of the exponent — no
    squarings at all.  Exponents wider than ``max_bits`` fall back to
    the backend ``powmod`` (correct, just unaccelerated).
    """

    __slots__ = ("base", "modulus", "window", "max_bits", "_rows", "_mask")

    def __init__(self, base: int, modulus: int, max_bits: int,
                 window: int = DEFAULT_FIXED_BASE_WINDOW):
        if modulus <= 0:
            raise ValueError("fixed-base table needs a positive modulus")
        if max_bits <= 0 or window <= 0:
            raise ValueError("max_bits and window must be positive")
        self.base = base % modulus
        self.modulus = modulus
        self.window = window
        self.max_bits = max_bits
        self._mask = (1 << window) - 1
        wrap = active_backend().wrap
        mod = wrap(modulus)
        size = 1 << window
        rows = []
        base_power = wrap(self.base)
        for _ in range((max_bits + window - 1) // window):
            row = [wrap(1)] * size
            for d in range(1, size):
                row[d] = row[d - 1] * base_power % mod
            rows.append(row)
            # base^(1 << w*(i+1)) = row[-1] * base_power.
            base_power = row[size - 1] * base_power % mod
        self._rows = rows

    def pow(self, exponent: int) -> int:
        """``base ** exponent % modulus`` for ``exponent >= 0``."""
        if exponent < 0:
            raise ValueError("fixed-base exponent must be non-negative")
        if exponent >> self.max_bits:
            return powmod(self.base, exponent, self.modulus)
        mod = self.modulus
        acc = 1
        window, mask, rows = self.window, self._mask, self._rows
        i = 0
        while exponent:
            digit = exponent & mask
            if digit:
                acc = acc * rows[i][digit] % mod
            exponent >>= window
            i += 1
        return int(acc % mod)

    @property
    def entries(self) -> int:
        """Cached table entries (memory cost ≈ entries × modulus size)."""
        return len(self._rows) << self.window


class _PowmodFallback:
    """Same ``.pow`` surface as :class:`FixedBaseTable` without a
    table — what :func:`fixed_base` hands out for a base it has only
    seen once (building a table for a one-shot base costs more than it
    saves)."""

    __slots__ = ("base", "modulus")

    def __init__(self, base: int, modulus: int):
        self.base = base
        self.modulus = modulus

    def pow(self, exponent: int) -> int:
        if exponent < 0:
            raise ValueError("fixed-base exponent must be non-negative")
        return powmod(self.base, exponent, self.modulus)


_FB_TABLES: "OrderedDict[tuple, FixedBaseTable]" = OrderedDict()
_FB_SEEN: "OrderedDict[tuple, int]" = OrderedDict()


def fixed_base(base: int, modulus: int, max_bits: int,
               window: int = DEFAULT_FIXED_BASE_WINDOW,
               warm: bool = False):
    """A cached fixed-base object for ``(base, modulus)``.

    ``warm=True`` builds the table immediately (for bases known to be
    long-lived: group generators, engine public keys).  Otherwise the
    first sighting returns a plain-``powmod`` fallback and the table is
    built from the second sighting on, so one-shot bases never pay the
    build cost.  The cache is per-process and LRU-bounded; executor
    worker processes each grow their own (tables are never pickled).
    """
    key = (base, modulus)
    table = _FB_TABLES.get(key)
    if table is not None:
        _FB_TABLES.move_to_end(key)
        return table
    if not warm:
        seen = _FB_SEEN.get(key, 0) + 1
        if seen < 2:
            _FB_SEEN[key] = seen
            while len(_FB_SEEN) > _FB_SEEN_CAP:
                _FB_SEEN.popitem(last=False)
            return _PowmodFallback(base, modulus)
        _FB_SEEN.pop(key, None)
    table = FixedBaseTable(base, modulus, max_bits, window=window)
    _FB_TABLES[key] = table
    while len(_FB_TABLES) > _FB_TABLE_CAP:
        _FB_TABLES.popitem(last=False)
    return table


def clear_fixed_base_cache() -> None:
    """Drop every cached fixed-base table (tests and backend flips)."""
    _FB_TABLES.clear()
    _FB_SEEN.clear()


def fixed_base_cache_stats() -> dict:
    """Cache occupancy, for diagnostics and the bench artifact."""
    return {
        "tables": len(_FB_TABLES),
        "pending": len(_FB_SEEN),
        "entries": sum(t.entries for t in _FB_TABLES.values()),
    }


# -- simultaneous multi-exponentiation ---------------------------------------

def multi_exp(pairs: Sequence[Tuple[int, int]], modulus: int,
              window: int = DEFAULT_MULTI_EXP_WINDOW) -> int:
    """``Π base^exponent mod modulus`` (Straus interleaved).

    One shared squaring chain covers every base, with a transient
    ``2^window``-entry digit table per base — about half the cost of
    independent ``pow`` calls for the Schnorr RLC shape, from either
    backend.  Exponents must be non-negative (they may exceed the
    group order: callers like the RLC check rely on *unreduced*
    exponents).  An empty product is ``1 % modulus``.
    """
    if modulus <= 0:
        raise ValueError("multi_exp needs a positive modulus")
    wrap = active_backend().wrap
    mod = wrap(modulus)
    tables: List[Tuple[list, int]] = []
    max_bits = 0
    for base, exponent in pairs:
        if exponent < 0:
            raise ValueError("multi_exp exponents must be non-negative")
        if exponent == 0:
            continue
        wrapped = wrap(base % modulus)
        size = 1 << window
        row = [wrap(1)] * size
        for d in range(1, size):
            row[d] = row[d - 1] * wrapped % mod
        tables.append((row, exponent))
        bits = exponent.bit_length()
        if bits > max_bits:
            max_bits = bits
    if not tables:
        return 1 % modulus
    if len(tables) == 1:
        row, exponent = tables[0]
        return powmod(int(row[1]), exponent, modulus)
    mask = (1 << window) - 1
    n_windows = (max_bits + window - 1) // window
    acc = wrap(1)
    for i in range(n_windows - 1, -1, -1):
        if i != n_windows - 1:
            for _ in range(window):
                acc = acc * acc % mod
        shift = i * window
        for row, exponent in tables:
            digit = (exponent >> shift) & mask
            if digit:
                acc = acc * row[digit] % mod
    return int(acc)
