#!/usr/bin/env python3
"""Figure 1(b): in-person conference participation during COVID.

The attendee list is public; vaccination records are private and live
in a health registry replicated on two non-colluding PIR servers.  The
venue checks each registrant's record via PIR — the registry servers
never learn *whose* record was consulted — and only eligible
registrants join the public in-person list.

Run:  python examples/conference_checkin.py
"""

from repro.apps.conference import ConferenceRegistration


def main():
    registry = {
        "alice": True,
        "bob": False,
        "carol": True,
        "dan": True,
        "eve": False,
    }
    conference = ConferenceRegistration(registry)

    print("registrations:")
    for name in sorted(registry):
        result = conference.register_in_person(name)
        if result.accepted:
            print(f"  {name:<6} -> in-person (vaccination verified via PIR)")
        else:
            conference.register_online(name)
            print(f"  {name:<6} -> online   (in-person requirements not met)")

    print("\npublic attendee list:")
    for row in conference.attendee_list():
        print(f"  {row['name']:<6} {row['mode']}")

    pir = conference.verifier.pir
    reads = sum(1 for kind, _ in pir.server_a.query_log if kind == "read")
    print(f"\nhealth-registry server A answered {reads} queries; "
          f"every query vector it saw was a uniformly random subset —")
    print("it cannot tell which registrant any query was about.")
    example = pir.server_a.query_log[0][1]
    print(f"  example selector: {example}")


if __name__ == "__main__":
    main()
