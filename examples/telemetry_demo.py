#!/usr/bin/env python3
"""Telemetry demo: the live ops endpoint end-to-end.

Boots a WAL-durable, traced Paillier-engine PReVer instance, starts
the :class:`~repro.obs.server.OpsServer` on an ephemeral port, and
exercises every route a real deployment would wire up:

* ``/metrics`` — Prometheus text exposition (scrape config target);
* ``/metrics.json`` — the versioned JSON schema;
* ``/healthz`` / ``/readyz`` — liveness and the anchored-root check;
* ``/trace/<trace_id>`` — one update's full verification trail, whose
  inclusion proof this script then **re-verifies client-side** from
  the served JSON alone (rebuilding the entry, digest, and proof —
  the auditor never needs the server's trust).

With ``--profile-out`` the run is wall-profiled and the collapsed
stacks (flamegraph.pl input) are written there; ``--metrics-out``
archives the ``/metrics.json`` body.

Run:  PYTHONPATH=src python examples/telemetry_demo.py
          [--profile-out profile.collapsed] [--metrics-out metrics.json]
"""

import argparse
import json
import tempfile
import urllib.error
import urllib.request

from repro import (
    CentralLedger,
    ColumnType,
    Database,
    Durability,
    EventLog,
    TableSchema,
    Tracer,
    Update,
    UpdateOperation,
    single_private_database,
    upper_bound_regulation,
)
from repro.crypto.merkle import InclusionProof
from repro.ledger.central import LedgerDigest, LedgerEntry
from repro.obs.profiler import SamplingProfiler
from repro.obs.server import start_ops_server


def build_framework(state_dir, profiler=None):
    schema = TableSchema.build(
        "emissions",
        [("id", ColumnType.INT), ("org", ColumnType.TEXT),
         ("co2", ColumnType.INT)],
        primary_key=["id"],
    )
    database = Database("cloud-manager")
    database.create_table(schema)
    cap = upper_bound_regulation(
        "iso-cap", "emissions", "co2", bound=100, match_columns=["org"]
    )
    tracer = Tracer().add_sink(EventLog())
    return single_private_database(
        database, [cap], engine="paillier", tracer=tracer,
        durability=Durability.wal(state_dir), profiler=profiler,
    )


def get(url):
    """GET ``url``; returns (status, body_bytes), tolerating 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def reverify_trail(trail):
    """Re-run the trail's inclusion proof from the JSON alone."""
    entry = LedgerEntry(sequence=trail["sequence"], payload=trail["payload"])
    digest = LedgerDigest(
        size=trail["digest"]["size"],
        root=bytes.fromhex(trail["digest"]["root"]),
    )
    proof = InclusionProof(
        leaf_index=trail["proof"]["leaf_index"],
        tree_size=trail["proof"]["tree_size"],
        path=[bytes.fromhex(node) for node in trail["proof"]["path"]],
    )
    return CentralLedger.verify_entry(digest, entry, proof)


def main(argv=None):
    parser = argparse.ArgumentParser(description="live ops endpoint demo")
    parser.add_argument("--profile-out", default="",
                        help="wall-profile the run and write collapsed "
                             "stacks (flamegraph.pl input) to this path")
    parser.add_argument("--metrics-out", default="",
                        help="archive the /metrics.json body to this path")
    args = parser.parse_args(argv)

    profiler = (SamplingProfiler(mode="wall", interval=0.001)
                if args.profile_out else None)
    with tempfile.TemporaryDirectory(prefix="telemetry-demo-") as state_dir:
        prever = build_framework(state_dir, profiler=profiler)
        updates = [
            Update(table="emissions", operation=UpdateOperation.INSERT,
                   payload={"id": i, "org": "acme", "co2": co2})
            for i, co2 in enumerate([60, 30, 40])
        ]
        results = prever.submit_many(updates)

        with start_ops_server(prever) as server:
            print(f"== ops server at {server.url()} ==")

            status, body = get(server.url("/metrics"))
            lines = body.decode("utf-8").splitlines()
            print(f"\n== /metrics: {status}, {len(lines)} lines ==")
            print("\n".join(lines[:6]))

            status, body = get(server.url("/metrics.json"))
            doc = json.loads(body)
            print(f"\n== /metrics.json: {status}, "
                  f"schema v{doc['schema_version']}, "
                  f"{len(doc['counters'])} counters ==")
            if args.metrics_out:
                with open(args.metrics_out, "w", encoding="utf-8") as handle:
                    handle.write(body.decode("utf-8"))
                print(f"wrote {args.metrics_out}")

            for probe in ("/healthz", "/readyz"):
                status, body = get(server.url(probe))
                report = json.loads(body)
                checks = {name: check["ok"]
                          for name, check in report["checks"].items()}
                print(f"\n== {probe}: {status} ok={report['ok']} "
                      f"checks={checks} ==")

            applied = next(r for r in results if r.applied)
            rejected = next(r for r in results if not r.applied)
            for result, label in ((applied, "applied"), (rejected, "rejected")):
                status, body = get(server.url(f"/trace/{result.trace_id}"))
                trail = json.loads(body)
                assert status == 200 and trail["verified"], \
                    f"trail for {label} update did not verify server-side"
                assert reverify_trail(trail), \
                    f"client-side re-verification failed for {label} update"
                print(f"\n== /trace/{result.trace_id} ({label}) ==")
                print(f"  sequence={trail['sequence']} "
                      f"status={trail['payload']['status']}")
                print(f"  anchored root={trail['digest']['root'][:16]}… "
                      f"size={trail['digest']['size']}")
                print(f"  proof path: {len(trail['proof']['path'])} nodes — "
                      f"re-verified client-side from the JSON alone")
                print(f"  events: "
                      f"{[event['kind'] for event in trail['events']]}")

        prever.close()
        if profiler is not None:
            stacks = profiler.write_collapsed(args.profile_out)
            report = profiler.stage_report()
            print(f"\n== profiler: {profiler.sample_count} samples, "
                  f"{stacks} stacks -> {args.profile_out} ==")
            for stage, stats in report.items():
                print(f"  {stage:<14} self={stats['self_seconds'] * 1e3:.1f}ms "
                      f"cum={stats['cum_seconds'] * 1e3:.1f}ms")


if __name__ == "__main__":
    main()
