#!/usr/bin/env python3
"""Serving-tier demo: the full deployment shape, end to end.

Boots a WAL-durable, traced plaintext-engine PReVer instance and puts
*both* front doors in front of it on ephemeral ports:

* the **serving tier** (``PReVer.serve()`` → wire protocol, Schnorr
  session auth, batched admission) — where producers submit updates;
* the **ops endpoint** (``start_ops_server``) — where operators scrape
  ``/metrics`` and auditors fetch ``/trace/<id>``.

Three producers then connect concurrently over the real socket
protocol, authenticate their sessions with their Schnorr keys, and
submit a small update stream whose per-org cap trips partway through —
so both accept and reject decisions come back over the wire.  For one
applied update the demo fetches the served verification trail from the
ops endpoint and **re-verifies the inclusion proof client-side** from
the JSON alone, proving the round trip producer → wire → pipeline →
ledger → auditor needs no trust in the server.

Run:  PYTHONPATH=src python examples/serve_demo.py
"""

import asyncio
import json
import tempfile
import urllib.error
import urllib.request

from repro import (
    CentralLedger,
    ColumnType,
    Database,
    Durability,
    EventLog,
    TableSchema,
    Tracer,
    Update,
    UpdateOperation,
    single_private_database,
    upper_bound_regulation,
)
from repro.crypto.merkle import InclusionProof
from repro.ledger.central import LedgerDigest, LedgerEntry
from repro.model.participants import DataProducer
from repro.obs.server import start_ops_server
from repro.serve.client import ServeClient

CAP = 100


def build_framework(state_dir):
    schema = TableSchema.build(
        "emissions",
        [("id", ColumnType.INT), ("org", ColumnType.TEXT),
         ("co2", ColumnType.INT)],
        primary_key=["id"],
    )
    database = Database("cloud-manager")
    database.create_table(schema)
    cap = upper_bound_regulation(
        "iso-cap", "emissions", "co2", bound=CAP, match_columns=["org"])
    tracer = Tracer().add_sink(EventLog())
    return single_private_database(
        database, [cap], engine="plaintext", tracer=tracer,
        durability=Durability.serving(state_dir),
    )


def get(url):
    """GET ``url``; returns (status, body_bytes), tolerating 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def reverify_trail(trail):
    """Re-run the trail's inclusion proof from the JSON alone."""
    entry = LedgerEntry(sequence=trail["sequence"], payload=trail["payload"])
    digest = LedgerDigest(
        size=trail["digest"]["size"],
        root=bytes.fromhex(trail["digest"]["root"]),
    )
    proof = InclusionProof(
        leaf_index=trail["proof"]["leaf_index"],
        tree_size=trail["proof"]["tree_size"],
        path=[bytes.fromhex(node) for node in trail["proof"]["path"]],
    )
    return CentralLedger.verify_entry(digest, entry, proof)


async def run_producers(host, port, producers):
    """Each producer authenticates and submits its stream concurrently."""

    async def one_producer(producer, offset):
        updates = [
            Update(table="emissions", operation=UpdateOperation.INSERT,
                   payload={"id": offset + i, "org": producer.name,
                            "co2": co2}).sign_with(producer)
            for i, co2 in enumerate([60, 30, 40])  # third trips the cap
        ]
        async with await ServeClient.connect(
                host, port, producer=producer) as client:
            print(f"  {producer.name}: session {client.session_id} open")
            return await client.submit_many(updates, retries=10)

    batches = await asyncio.gather(*[
        one_producer(producer, 100 * index)
        for index, producer in enumerate(producers)
    ])
    return [result for batch in batches for result in batch]


def main():
    producers = [DataProducer(name) for name in ("acme", "globex", "initech")]
    with tempfile.TemporaryDirectory(prefix="serve-demo-") as state_dir:
        prever = build_framework(state_dir)
        with prever.serve(
                producers={p.name: p.public_key for p in producers},
                batch_window=0.01) as server:
            print(f"== serving tier at {server.url()} ==")
            host, port = server.address
            results = asyncio.run(run_producers(host, port, producers))

            applied = [r for r in results if r.applied]
            rejected = [r for r in results if not r.applied]
            print(f"\n== served decisions: {len(applied)} applied, "
                  f"{len(rejected)} rejected (cap={CAP}) ==")
            for result in rejected:
                print(f"  {result.update_id}: rejected by "
                      f"{result.failed_constraint} "
                      f"(seq {result.ledger_sequence})")

            with start_ops_server(prever) as ops:
                print(f"\n== ops endpoint at {ops.url()} ==")
                status, body = get(ops.url("/metrics.json"))
                doc = json.loads(body)
                serve_counters = {
                    name: value["count"]
                    for name, value in doc["counters"].items()
                    if name.startswith("server.")
                }
                assert status == 200 and serve_counters["server.sessions"] == 3
                print(f"  server.* counters on /metrics.json: "
                      f"{sorted(serve_counters)}")

                # One served decision, audited end to end: fetch the
                # trail the server anchored, then re-verify the
                # inclusion proof with nothing but the JSON.
                audited = applied[0]
                status, body = get(ops.url(f"/trace/{audited.trace_id}"))
                trail = json.loads(body)
                assert status == 200 and trail["verified"]
                assert reverify_trail(trail), \
                    "client-side re-verification failed"
                print(f"\n== /trace/{audited.trace_id} ==")
                print(f"  served seq={audited.ledger_sequence} == "
                      f"trail seq={trail['sequence']}: "
                      f"{audited.ledger_sequence == trail['sequence']}")
                print(f"  anchored root={trail['digest']['root'][:16]}… "
                      f"re-verified client-side from the JSON alone")
        prever.close()
        print("\n== drained and closed; every admitted update anchored ==")


if __name__ == "__main__":
    main()
