#!/usr/bin/env python3
"""Tracing demo: follow one rejected update end-to-end.

Attaches a recording :class:`~repro.obs.tracing.Tracer` with a JSONL
:class:`~repro.obs.events.EventLog` sink to a Paillier-engine PReVer
instance, submits a batch where the last update blows the per-org cap,
then prints the rejected update's span tree (validate → verify → apply
→ anchor), shows how its trace ID appears in the anchored ledger entry
and the auditor's spot checks, and dumps the whole event log as JSONL.

Run:  PYTHONPATH=src python examples/tracing_demo.py [--out trace.jsonl]
"""

import argparse

from repro import (
    ColumnType,
    Database,
    EventLog,
    LedgerAuditor,
    TableSchema,
    Tracer,
    Update,
    UpdateOperation,
    single_private_database,
    to_prometheus,
    upper_bound_regulation,
)


def build_traced_framework(tracer):
    schema = TableSchema.build(
        "emissions",
        [("id", ColumnType.INT), ("org", ColumnType.TEXT),
         ("co2", ColumnType.INT)],
        primary_key=["id"],
    )
    database = Database("cloud-manager")
    database.create_table(schema)
    cap = upper_bound_regulation(
        "iso-cap", "emissions", "co2", bound=100, match_columns=["org"]
    )
    return single_private_database(
        database, [cap], engine="paillier", tracer=tracer
    )


def span_tree(spans):
    """Render a trace's spans as an indented tree, children in order."""
    by_parent = {}
    for span in spans:
        by_parent.setdefault(span.parent_id, []).append(span)
    lines = []

    def walk(parent_id, depth):
        for span in by_parent.get(parent_id, []):
            lines.append(
                f"{'  ' * depth}{span.name:<10} "
                f"status={span.status:<8} "
                f"dur={span.duration * 1e3:.3f}ms "
                f"{span.attributes}"
            )
            walk(span.span_id, depth + 1)

    walk(None, 0)
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description="traced PReVer pipeline")
    parser.add_argument("--out", default="trace_demo.jsonl",
                        help="JSONL event-log path ('' to skip writing)")
    args = parser.parse_args(argv)

    tracer = Tracer()
    log = EventLog()
    tracer.add_sink(log)
    prever = build_traced_framework(tracer)

    # Batch: 60 + 30 fit under the cap of 100; 40 blows it.
    updates = [
        Update(table="emissions", operation=UpdateOperation.INSERT,
               payload={"id": i, "org": "acme", "co2": co2})
        for i, co2 in enumerate([60, 30, 40])
    ]
    results = prever.submit_many(updates)

    print("== decisions ==")
    for result in results:
        print(f"  {result.update.update_id}: "
              f"{'applied' if result.applied else 'REJECTED':<8} "
              f"trace={result.trace_id} seq={result.ledger_sequence}")

    rejected = next(r for r in results if not r.applied)
    print(f"\n== span tree for rejected update {rejected.update.update_id} ==")
    print(span_tree(tracer.traces()[rejected.trace_id]))

    entry = prever.ledger.entry(rejected.ledger_sequence)
    print("\n== anchored ledger entry correlates by trace_id ==")
    print(f"  sequence={entry.sequence} trace_id={entry.payload['trace_id']} "
          f"status={entry.payload['status']}")

    auditor = LedgerAuditor("regulator", tracer=tracer)
    auditor.audit(prever.ledger, spot_check=len(results))
    checks = log.events("audit.entry_check")
    print(f"\n== auditor spot checks ({len(checks)}) ==")
    for check in checks:
        print(f"  seq={check['sequence']} ok={check['ok']} "
              f"trace_id={check['trace_id']}")

    print(f"\n== event log: {len(log)} records, kinds={log.kinds()} ==")
    for event in log.for_trace(rejected.trace_id):
        print(f"  {event['kind']:<18} seq={event['seq']}")

    print("\n== Prometheus exposition (first lines) ==")
    print("\n".join(to_prometheus(prever.metrics).splitlines()[:8]))

    if args.out:
        count = log.write(args.out)
        print(f"\nwrote {count} events to {args.out}")


if __name__ == "__main__":
    main()
