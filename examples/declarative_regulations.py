#!/usr/bin/env python3
"""Regulations as text: the declarative constraint language.

Section 3.2 argues regulations should be expressed in declarative,
query-language form, with temporal extensions for sliding windows.
Here an authority publishes three regulations as strings; they compile
to constraint objects and drive the same engines as hand-built ones.

Run:  python examples/declarative_regulations.py
"""

from repro import (
    ColumnType,
    Database,
    TableSchema,
    Update,
    UpdateOperation,
    parse_constraint,
    parse_regulation,
    single_private_database,
)

REGULATION_TEXTS = [
    ("flsa-40h",
     "SUM(hours) PER worker WITHIN 7d OF completed_at <= 40 ON tasks"),
    ("sane-hours",
     "CHECK NEW.hours > 0 AND NEW.hours <= 12 ON tasks"),
    ("task-quota",
     "COUNT(*) PER worker WITHIN 1d OF completed_at <= 3 ON tasks"),
]


def main():
    schema = TableSchema.build(
        "tasks",
        [("task_id", ColumnType.TEXT), ("worker", ColumnType.TEXT),
         ("hours", ColumnType.INT), ("completed_at", ColumnType.FLOAT)],
        primary_key=["task_id"],
    )
    db = Database("platform")
    db.create_table(schema)

    print("published regulation texts:")
    constraints = []
    for name, text in REGULATION_TEXTS:
        constraint = (parse_regulation if "SUM" in text or "COUNT" in text
                      else parse_constraint)(text, name=name)
        constraints.append(constraint)
        shape = "aggregate" if constraint.is_aggregate else "predicate"
        print(f"  [{name}] {text}")
        print(f"      -> {shape}, engine-evaluable: {constraint.is_linear()}")

    framework = single_private_database(db, constraints, engine="plaintext")
    framework.constraints = constraints  # all three active

    day = 86_400.0
    submissions = [
        ("t1", "dora", 8, 0.0, "fine"),
        ("t2", "dora", 13, 1.0, "rejected: over 12h in one task"),
        ("t3", "dora", 8, 2.0, "fine"),
        ("t4", "dora", 8, 3.0, "fine"),
        ("t5", "dora", 1, 4.0, "rejected: 4th task within a day"),
        ("t6", "dora", 8, 1.5 * day, "fine (new day)"),
        ("t7", "dora", 8, 1.6 * day, "fine"),
        ("t8", "dora", 4, 1.7 * day, "rejected: 44h inside the week"),
    ]
    print("\nsubmissions:")
    for task_id, worker, hours, at, note in submissions:
        framework.clock.advance_to(at)
        result = framework.submit(Update(
            table="tasks", operation=UpdateOperation.INSERT,
            payload={"task_id": task_id, "worker": worker, "hours": hours,
                     "completed_at": at},
        ))
        print(f"  {task_id}: {hours:>2}h at day {at/day:>4.1f}  "
              f"{'ACCEPTED' if result.accepted else 'REJECTED':8}  ({note})")

    total = db.aggregate("tasks", "SUM", "hours")
    print(f"\nincorporated weekly hours: {total} (cap 40)")


if __name__ == "__main__":
    main()
