#!/usr/bin/env python3
"""The query side of private dynamic data: searchable encryption.

PReVer focuses on private *updates*; the paper's introduction situates
it against the query-side literature (dynamic searchable encryption).
This example shows both halves working on one outsourced store: an
organization appends incident reports through the regulated pipeline
and keeps them keyword-searchable — while the cloud host sees neither
contents, keywords, nor which new documents match old queries
(forward privacy).

Run:  python examples/encrypted_search.py
"""

from repro import (
    ColumnType,
    Database,
    TableSchema,
    Update,
    UpdateOperation,
    parse_constraint,
    single_private_database,
)
from repro.privacy.sse import SSEClient

REPORTS = [
    ("r1", "minor spill in lab 3", ["spill", "lab3"]),
    ("r2", "sensor fault on line 2", ["sensor", "line2"]),
    ("r3", "spill cleanup complete", ["spill", "cleanup"]),
    ("r4", "sensor recalibrated", ["sensor"]),
]


def main():
    schema = TableSchema.build(
        "incidents",
        [("report_id", ColumnType.TEXT), ("body", ColumnType.TEXT),
         ("severity", ColumnType.INT)],
        primary_key=["report_id"],
    )
    db = Database("cloud-host")
    db.create_table(schema)
    sanity = parse_constraint(
        "CHECK NEW.severity >= 1 AND NEW.severity <= 5 ON incidents",
        name="severity-range",
    )
    framework = single_private_database(db, [sanity], engine="plaintext")
    sse = SSEClient(master_key=b"org-search-key-0123456789abcdef!")

    print("indexing incident reports through the regulated pipeline:")
    for report_id, body, keywords in REPORTS:
        result = framework.submit(Update(
            table="incidents", operation=UpdateOperation.INSERT,
            payload={"report_id": report_id, "body": body, "severity": 2},
        ))
        sse.add_record(report_id, keywords)
        print(f"  {report_id}: applied={result.applied}, "
              f"indexed under {keywords}")

    print("\nsearches (resolved by the untrusted host):")
    for keyword in ("spill", "sensor", "fire"):
        matches = sse.search(keyword)
        print(f"  '{keyword}' -> {matches or 'no matches'}")

    print("\nforward privacy in action:")
    old_tokens = sse.issued_token_view("spill")
    sse.add_record("r5", ["spill"])
    stale = sse.server.search(list(old_tokens))
    print(f"  host replays the old 'spill' token set: "
          f"finds {len(stale)} records (the new r5 is invisible)")
    print(f"  a fresh authorized search finds: {sse.search('spill')}")

    print(f"\nhost's total view: {sse.server.index_size()} opaque index "
          f"entries, {len(sse.server.search_log)} label-set queries —")
    print("no keyword or report id ever appears in it.")


if __name__ == "__main__":
    main()
