#!/usr/bin/env python3
"""Figure 1(a): environmental sustainability certification.

Three organizations pursue ISO-style certification tiers while keeping
their emissions statistics private from the certifying authority.  The
authority verifies every report against the public tier caps over
Paillier ciphertexts and never observes a single plaintext statistic.

Run:  python examples/sustainability_certification.py
"""

from repro.apps.sustainability import CERT_TIERS, SustainabilityCertification


def main():
    print("public certification tiers (annual CO2 caps, tons):")
    for tier, cap in CERT_TIERS.items():
        print(f"  {tier:<9} <= {cap}")
    print()

    scenarios = {
        "green-co": ("platinum", [("energy", 40), ("waste", 30), ("transport", 25)]),
        "acme":     ("gold", [("energy", 120), ("waste", 90), ("transport", 60)]),
        "smokestack-inc": ("silver", [("energy", 300), ("waste", 150),
                                      ("transport", 100)]),
    }

    for org, (tier, reports) in scenarios.items():
        cert = SustainabilityCertification(org, tier=tier)
        print(f"{org} applying for {tier.upper()} "
              f"(cap {cert.cap} tons):")
        for category, tons in reports:
            result = cert.report(category, tons)
            status = "accepted" if result.accepted else "REJECTED (over cap)"
            print(f"  {category:<10} {tons:>4} tons  {status}")
        print(f"  -> certified: {cert.certified()}, "
              f"incorporated total: {cert.reported_total()} tons")
        transcript = cert.authority_view()
        groups = sum(1 for k, _ in transcript if k == "group")
        ciphers = sum(1 for k, _ in transcript if k == "ciphertext")
        print(f"  -> certifier observed: {groups} group keys, "
              f"{ciphers} ciphertexts, 0 plaintext statistics\n")


if __name__ == "__main__":
    main()
