#!/usr/bin/env python3
"""Sharded front-end demo: partition, dispatch, escalate, recover.

Builds a :class:`~repro.core.sharded.ShardedPReVer` that partitions an
orders table and a payments table across two shards, each a full
PReVer instance with its own ledger and write-ahead log.  It then:

1. submits a mixed batch and shows per-shard routing, decisions, and
   the Merkle **root-of-roots** over the per-shard ledger roots;
2. registers a *cross-shard* COUNT budget with an RC2 token verifier —
   no single shard can see enough state to check it — and shows an
   over-budget update being rejected coordinator-side, anchored on the
   escalation ledger, without touching any shard's ledger;
3. restarts: a fresh front-end recovers every shard from its own WAL,
   re-verifies each shard root against its last durable anchor, and
   reproduces the identical root-of-roots.

Run:  PYTHONPATH=src python examples/sharded_pipeline.py
          [--dispatch {serial,process}] [--dir STATE_DIR]
"""

import argparse
import functools
import os
import shutil
import tempfile

from repro import (
    ColumnType,
    Constraint,
    ConstraintKind,
    Database,
    Durability,
    ShardedPReVer,
    ShardSpec,
    TableSchema,
    Update,
    UpdateOperation,
    upper_bound_regulation,
)
from repro.core.federated import TokenVerifier
from repro.core.framework import PReVer
from repro.model.constraints import AggregateSpec, Comparison

SHARD_TABLES = {"orders-shard": "orders", "payments-shard": "payments"}


def build_shard(name, table, state_dir):
    """Builder for one shard: its own database, cap regulation, and WAL.

    Under ``--dispatch process`` this runs inside the shard's dedicated
    worker process, which is why it is a plain module-level function.
    """
    database = Database(name)
    database.create_table(TableSchema.build(
        table,
        [("id", ColumnType.INT), ("who", ColumnType.TEXT),
         ("amount", ColumnType.INT)],
        primary_key=["id"],
    ))
    cap = upper_bound_regulation(
        f"{table}-cap", table, "amount", bound=100, match_columns=["who"]
    )
    cap.constraint_id = f"cst-{table}-cap"  # stable across rebuilds
    framework = PReVer(
        [database], durability=Durability.wal(os.path.join(state_dir, name))
    )
    framework.register_constraint(Constraint(
        name=cap.name, kind=ConstraintKind.INTERNAL,
        aggregate=cap.aggregate, comparison=cap.comparison,
        bound=cap.bound, tables=cap.tables,
        constraint_id=cap.constraint_id,
    ))
    return framework


def build_front_end(state_dir, dispatch):
    specs = [
        ShardSpec(name, (table,),
                  functools.partial(build_shard, name, table, state_dir))
        for name, table in sorted(SHARD_TABLES.items())
    ]
    return ShardedPReVer(specs, dispatch=dispatch)


def mixed_batch(first_id, n):
    tables = sorted(SHARD_TABLES.values())
    return [
        Update(table=tables[i % 2], operation=UpdateOperation.INSERT,
               payload={"id": i, "who": "alice", "amount": 10},
               update_id=f"upd-{i:05d}", producers=["alice"])
        for i in range(first_id, first_id + n)
    ]


def main(argv=None):
    parser = argparse.ArgumentParser(description="sharded front-end demo")
    parser.add_argument("--dispatch", choices=["serial", "process"],
                        default="serial",
                        help="run shards in-process, or one worker "
                             "process per shard (default: serial)")
    parser.add_argument("--dir", default="",
                        help="state directory (default: a fresh temp dir)")
    args = parser.parse_args(argv)
    state_dir = args.dir or tempfile.mkdtemp(prefix="sharded-pipeline-")

    # -- 1. partition and route ---------------------------------------------
    front = build_front_end(state_dir, args.dispatch)
    results = front.submit_many(mixed_batch(0, 8))
    digest = front.digest()
    print(f"== two shards, {args.dispatch} dispatch ==")
    for result in results[:4]:
        print(f"  {result.update.update_id} -> shard {result.shard!r} "
              f"(applied={result.applied})")
    print(f"  root-of-roots {digest.root.hex()[:16]}…  "
          f"shard sizes {list(digest.shard_sizes)}")

    # -- 2. a cross-shard budget, enforced fail-closed ----------------------
    # COUNT over orders AND payments: neither shard sees both tables,
    # so the constraint must escalate to an RC2 federated verifier.
    global_budget = Constraint(
        name="global-count", kind=ConstraintKind.INTERNAL,
        aggregate=AggregateSpec(func="COUNT", column=None),
        comparison=Comparison.LE, bound=2,
        tables=tuple(sorted(SHARD_TABLES.values())),
        constraint_id="cst-global-count",
    )
    front.register_cross_shard_constraint(
        global_budget, TokenVerifier(global_budget)
    )
    escalated = front.submit_many(mixed_batch(100, 4))
    accepted = [r for r in escalated if r.applied]
    rejected = [r for r in escalated if not r.applied]
    print("\n== cross-shard COUNT<=2 budget (token escalation) ==")
    print(f"  accepted {len(accepted)}, rejected {len(rejected)} "
          f"(budget exhausted)")
    for result in rejected:
        print(f"  {result.update.update_id} rejected by "
              f"{result.outcome.failed_constraint!r}, anchored on the "
              f"escalation ledger at seq {result.ledger_sequence} "
              f"(shard={result.shard})")
    assert len(front.escalation_ledger) == len(rejected)
    root_before_restart = front.digest().root
    front.close()

    # -- 3. restart: per-shard recovery, same root-of-roots -----------------
    recovered = build_front_end(state_dir, args.dispatch)
    reports = recovered.recover()
    print("\n== recovery (per shard) ==")
    for name, report in sorted(reports.items()):
        print(f"  {name}: replayed {report.replayed_updates} updates, "
              f"root verified against anchor: "
              f"{report.verified_against_anchor}")
    assert all(r.verified_against_anchor for r in reports.values())
    assert recovered.digest().root == root_before_restart, \
        "recovery must reproduce the root-of-roots"
    print(f"  root-of-roots reproduced: "
          f"{recovered.digest().root.hex()[:16]}…")

    # -- 4. ...and keeps serving --------------------------------------------
    more = recovered.submit_many(mixed_batch(200, 4))
    print(f"\n  post-recovery batch: applied "
          f"{sum(r.applied for r in more)}/4")
    recovered.close()

    if not args.dir:
        shutil.rmtree(state_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
