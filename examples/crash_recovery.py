#!/usr/bin/env python3
"""Crash recovery demo: WAL, simulated crash, replay, root check.

Builds a Paillier-free (plaintext) sustainability framework with the
``wal+snapshot`` durability policy, anchors one batch, then rebuilds it
with a crash injected mid-pipeline and submits a second batch — the
process "dies" exactly where a real crash could.  A third, fresh
instance recovers: snapshot load, WAL replay, and a final check that
the recovered Merkle root equals the last durably anchored root.  It
then keeps serving, proving recovery hands back a live framework.

Run:  PYTHONPATH=src python examples/crash_recovery.py
          [--crash-at {wal_update,apply,anchor_append,anchor_marker}]
          [--dir STATE_DIR]
"""

import argparse
import shutil
import tempfile

from repro import (
    ColumnType,
    Database,
    Durability,
    LedgerAuditor,
    SimulatedCrash,
    TableSchema,
    Update,
    UpdateOperation,
    single_private_database,
    upper_bound_regulation,
)
from repro.durability.policy import CRASH_POINTS


def build(state_dir, crash_after=None):
    """One emissions database under the wal+snapshot policy.

    Recovery replays anchored decision payloads verbatim, and those
    payloads name constraints by id — so every rebuild of the "same"
    framework must pin the constraint id rather than taking a fresh
    generated one.
    """
    schema = TableSchema.build(
        "emissions",
        [("id", ColumnType.INT), ("org", ColumnType.TEXT),
         ("co2", ColumnType.INT)],
        primary_key=["id"],
    )
    database = Database("cloud-manager")
    database.create_table(schema)
    cap = upper_bound_regulation(
        "iso-cap", "emissions", "co2", bound=10**6, match_columns=["org"]
    )
    cap.constraint_id = "cst-iso-cap"  # stable across rebuilds
    durability = Durability.wal_with_snapshots(
        state_dir, snapshot_every=100, crash_after=crash_after
    )
    return single_private_database(
        database, [cap], engine="plaintext", durability=durability
    )


def emissions(first_id, n, co2=10):
    return [
        Update(table="emissions", operation=UpdateOperation.INSERT,
               payload={"id": i, "org": f"org{i % 4}", "co2": co2},
               update_id=f"upd-{i:05d}")
        for i in range(first_id, first_id + n)
    ]


def main(argv=None):
    parser = argparse.ArgumentParser(description="crash + recovery demo")
    parser.add_argument("--crash-at", choices=CRASH_POINTS,
                        default="anchor_append",
                        help="pipeline point where the simulated crash "
                             "fires (default: ledger extended in memory, "
                             "anchor marker not yet durable)")
    parser.add_argument("--dir", default="",
                        help="state directory (default: a fresh temp dir)")
    args = parser.parse_args(argv)
    state_dir = args.dir or tempfile.mkdtemp(prefix="crash-recovery-")

    # -- 1. normal operation: one durably anchored batch -------------------
    prever = build(state_dir)
    results = prever.submit_many(emissions(0, 8))
    anchored_root = prever.ledger.digest().root.hex()
    print("== before the crash ==")
    print(f"  applied {sum(r.applied for r in results)}/8 updates")
    print(f"  anchored root {anchored_root[:16]}…  "
          f"ledger size {len(prever.ledger)}")
    prever.close()

    # -- 2. crash mid-batch -------------------------------------------------
    crashing = build(state_dir, crash_after=args.crash_at)
    crashing.recover()  # a restarted process always recovers first
    try:
        crashing.submit_many(emissions(100, 8))
        raise SystemExit("crash point never fired")
    except SimulatedCrash as crash:
        print(f"\n== simulated crash: {crash} ==")
    # No close(): a dead process does not flush or fsync anything.

    # -- 3. a fresh instance recovers ---------------------------------------
    recovered = build(state_dir)
    report = recovered.recover()
    print("\n== recovery report ==")
    for key, value in report.to_dict().items():
        print(f"  {key:<24} {value}")

    # The recovered root must equal the last *durably anchored* root:
    # the pre-crash batch always; the crashed batch too only when the
    # crash hit after its anchor marker reached disk.
    assert report.verified_against_anchor, "root check must have run"
    if args.crash_at == "anchor_marker":
        assert report.final_size == 16, "marker was durable: batch kept"
    else:
        assert report.final_root == anchored_root, \
            "recovered root must equal the pre-crash anchored root"
        assert report.final_size == 8, "unanchored batch must be dropped"
    assert LedgerAuditor("regulator").audit(recovered.ledger).ok
    print("\n== verified ==")
    print("  recovered ledger root equals the last anchored root, "
          "and a fresh audit passes")

    # -- 4. ...and keeps serving -------------------------------------------
    more = recovered.submit_many(emissions(200, 4))
    print(f"  post-recovery batch: applied {sum(r.applied for r in more)}/4, "
          f"ledger size now {len(recovered.ledger)}")
    recovered.close()

    if not args.dir:
        shutil.rmtree(state_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
