#!/usr/bin/env python3
"""Quickstart: the PReVer pipeline (Figure 2) in ~40 lines.

An external authority defines a regulation; a producer sends updates;
the framework verifies each one under encryption (the manager never
sees plaintexts), applies the accepted ones, and anchors every decision
on an auditable append-only ledger.

Run:  python examples/quickstart.py
"""

from repro import (
    ColumnType,
    Database,
    LedgerAuditor,
    TableSchema,
    Update,
    UpdateOperation,
    single_private_database,
    upper_bound_regulation,
)


def main():
    # (0) Schema + regulation: per-org CO2 reports capped at 100 tons.
    schema = TableSchema.build(
        "emissions",
        [("id", ColumnType.INT), ("org", ColumnType.TEXT),
         ("co2", ColumnType.INT)],
        primary_key=["id"],
    )
    database = Database("cloud-manager")
    database.create_table(schema)
    cap = upper_bound_regulation(
        "iso-cap", "emissions", "co2", bound=100, match_columns=["org"]
    )

    # The Paillier engine: the untrusted manager verifies the cap over
    # ciphertexts; only the accept/reject bit becomes public.
    prever = single_private_database(database, [cap], engine="paillier")

    # (1)-(3) Updates flow through verify -> apply -> anchor.
    for i, co2 in enumerate([60, 30, 20, 10]):
        update = Update(
            table="emissions",
            operation=UpdateOperation.INSERT,
            payload={"id": i, "org": "acme", "co2": co2},
        )
        result = prever.submit(update)
        print(f"report {i}: co2={co2:>3}  ->  "
              f"{'ACCEPTED' if result.accepted else 'REJECTED'}"
              f"  (ledger seq {result.ledger_sequence})")

    total = database.aggregate("emissions", "SUM", "co2")
    print(f"\nstored total: {total} (cap was 100)")

    # (RC4) Anyone can audit the decision history.
    auditor = LedgerAuditor("regulator")
    report = auditor.audit(prever.ledger, spot_check=2)
    print(f"ledger audit: {report.outcome.value}, "
          f"{len(prever.ledger)} decisions anchored")

    # What did the manager actually see? Ciphertexts only.
    ciphertexts = [v for k, v in prever.engine.manager_transcript
                   if k == "ciphertext"]
    print(f"manager saw {len(ciphertexts)} ciphertexts, "
          f"e.g. {str(ciphertexts[0])[:40]}...")


if __name__ == "__main__":
    main()
