#!/usr/bin/env python3
"""Section 5: Separ — multi-platform crowdworking under the FLSA.

Ten workers complete tasks across four competing platforms for three
weeks.  The 40-hour weekly cap is enforced *across* platforms via
blind-signed single-use tokens, although no platform ever learns a
worker's identity or their activity elsewhere.  Spends are anchored on
a sharded permissioned blockchain (SharPer-style).

Run:  python examples/crowdworking_separ.py
"""

from repro.apps.crowdworking import CrowdworkingScenario


def main():
    scenario = CrowdworkingScenario(
        platform_names=("uber", "lyft", "grab", "ola"),
        workers=10,
        weekly_hour_cap=40,
        seed=2024,
    )

    print("simulating 3 weeks of greedy task completion "
          "(workers attempt ~42h/week on average)\n")
    for week in range(3):
        summary = scenario.run_week(tasks_per_worker=12, max_task_hours=6)
        top = max(summary.hours_by_worker.values())
        print(f"week {summary.week}: attempted={summary.tasks_attempted}  "
              f"accepted={summary.tasks_accepted}  "
              f"cap-rejections={summary.cap_rejections}  "
              f"max-hours-any-worker={top}")

    print(f"\nno worker ever exceeded 40h in any week: "
          f"{scenario.no_worker_exceeded_cap()}")

    scenario.settle()
    system = scenario.system
    counts = system.blockchain.committed_counts()
    print(f"blockchain shards committed: {counts}")

    # The privacy surface: even colluding platforms learn only
    # per-pseudonym weekly totals.
    view = system.collusion_view(["uber", "lyft", "grab", "ola"])
    print(f"\nfull-collusion view: {len(view['serials'])} unlinkable "
          f"serials, {len(view['pseudonym_counts'])} weekly pseudonyms")
    sample = next(iter(view["pseudonym_counts"]))
    print(f"  sample pseudonym: {sample[:16]}... "
          f"(rotates weekly, unlinkable to worker identity)")

    # Lower-bound regulation at period close (e.g. minimum activity).
    week = system.current_period() - 1
    meets = sum(
        1 for w in scenario.worker_names
        if system.registry.check_lower_bound(
            week, system.workers[w].pseudonym(week), 10
        )
    )
    print(f"\nworkers meeting the >=10h lower-bound regulation "
          f"last week: {meets}/{len(scenario.worker_names)}")


if __name__ == "__main__":
    main()
