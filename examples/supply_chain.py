#!/usr/bin/env python3
"""Figure 1(d): supply chain management with confidential collaborations.

Four mutually distrustful enterprises move goods under SLA constraints.
Each pair's flow records live in a Qanaat-style confidential
collaboration — invisible to the other enterprises — while a global
anchor chain lets every member verify integrity (detecting rollbacks)
without revealing contents to outsiders.

Run:  python examples/supply_chain.py
"""

from repro.apps.supplychain import SLA, SupplyChainNetwork
from repro.common.errors import PrivacyError


def main():
    enterprises = ["mine-co", "smelter", "factory", "retailer"]
    network = SupplyChainNetwork(enterprises)
    network.agree_sla(SLA("mine-co", "smelter", 500, window=3600.0))
    network.agree_sla(SLA("smelter", "factory", 300, window=3600.0))
    network.agree_sla(SLA("factory", "retailer", 200, window=3600.0))

    print("SLAs in force: mine-co->smelter 500/h, smelter->factory 300/h, "
          "factory->retailer 200/h\n")

    shipments = [
        ("mine-co", "smelter", 300),
        ("mine-co", "smelter", 250),   # would exceed 500/h
        ("smelter", "factory", 200),
        ("factory", "retailer", 150),
        ("factory", "retailer", 100),  # would exceed 200/h
    ]
    for source, target, units in shipments:
        ok = network.ship(source, target, units)
        print(f"  {source:>8} -> {target:<8} {units:>4} units  "
              f"{'shipped' if ok else 'BLOCKED by SLA'}")

    # Internal updates stay inside the enterprise.
    network.internal_update("factory", {"process": "secret alloy recipe v7"})

    print("\nconfidentiality checks:")
    try:
        network.flow_history("retailer", "mine-co", "smelter")
    except PrivacyError as err:
        print(f"  retailer reading mine-co->smelter flows: DENIED ({err})")
    flows = network.flow_history("smelter", "mine-co", "smelter")
    print(f"  smelter reading its own inbound flows: {len(flows)} records")

    print("\nintegrity audits (against the global anchor chain):")
    for enterprise in enterprises:
        print(f"  {enterprise:<9} verifies its collaborations: "
              f"{network.verify_integrity(enterprise)}")

    # A dishonest member rolls back a flow record...
    network.network.collaboration("mine-co->smelter").ledger.tamper_rewrite(
        0, {"units": 1, "at": 0.0}
    )
    print("\nafter mine-co tampers with a shipped quantity:")
    print(f"  smelter's audit now reports: "
          f"{network.verify_integrity('smelter')}  (tamper detected)")


if __name__ == "__main__":
    main()
