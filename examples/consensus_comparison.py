#!/usr/bin/env python3
"""Section 6's evaluation methodology in miniature: compare the
distributed PReVer substrate against Paxos and PBFT in throughput and
latency, on one deterministic network simulator.

Run:  python examples/consensus_comparison.py
"""

from repro.chain.sharper import ShardedLedger
from repro.consensus.paxos import PaxosCluster
from repro.consensus.pbft import PBFTCluster

COMMANDS = 50


def drive(cluster):
    for i in range(COMMANDS):
        cluster.submit({"op": i})
    cluster.run()
    return cluster.stats()


def main():
    print(f"{COMMANDS} commands through each protocol "
          f"(simulated 1ms +/- 0.5ms links)\n")
    print(f"{'protocol':<22}{'nodes':>6}{'decided':>9}{'msgs':>8}"
          f"{'mean lat':>10}{'tput':>12}")

    paxos = drive(PaxosCluster(n=7))
    print(f"{'Paxos (CFT)':<22}{7:>6}{paxos.decided:>9}{paxos.messages:>8}"
          f"{paxos.mean_latency*1000:>8.2f}ms"
          f"{paxos.throughput:>10.0f}/s")

    pbft = drive(PBFTCluster(f=2))
    print(f"{'PBFT (BFT)':<22}{7:>6}{pbft.decided:>9}{pbft.messages:>8}"
          f"{pbft.mean_latency*1000:>8.2f}ms"
          f"{pbft.throughput:>10.0f}/s")

    # SharPer: two PBFT shards (f=1 each), 10% cross-shard.
    ledger = ShardedLedger(["s0", "s1"], f=1)
    for i in range(COMMANDS):
        if i % 10 == 0:
            ledger.submit_cross(["s0", "s1"], {"op": i})
        else:
            ledger.submit_intra(f"s{i % 2}", {"op": i})
    ledger.run()
    committed = sum(ledger.committed_counts().values())
    msgs = ledger.network.metrics.counter("net.messages").count
    cross = ledger.cross_shard_latencies()
    print(f"{'SharPer (2 shards)':<22}{8:>6}{committed:>9}{msgs:>8}"
          f"{(sum(cross)/len(cross))*1000:>8.2f}ms"
          f"{ledger.throughput():>10.0f}/s")

    print("\nshape to observe: PBFT pays ~O(n^2) messages vs Paxos's O(n);")
    print("sharding recovers throughput on shardable workloads, at a")
    print("latency premium for cross-shard transactions.")


if __name__ == "__main__":
    main()
