#!/usr/bin/env python3
"""Separ's future work, implemented: token issuance with no single
trusted authority.

The paper (Section 5): "Separ requires a centralized trusted third
party authority to issue tokens.  This is a serious shortcoming."
Here the signing key is n-of-n multiplicatively shared; every signer
independently enforces the weekly budget, so even n-1 compromised
signers can neither forge tokens nor over-issue.

Run:  python examples/distributed_issuance.py
"""

from repro.core.separ import SeparSystem
from repro.privacy.threshold_tokens import DistributedTokenAuthority
from repro.privacy.tokens import TokenError, TokenWallet


def main():
    print("== the primitive: 3-of-3 shared-key blind issuance ==")
    authority = DistributedTokenAuthority(signers=3, budget_per_period=5,
                                          rsa_bits=512)
    wallet = TokenWallet("worker-1", authority.public_key)
    wallet.request_tokens(authority, period=0, count=5)
    token = wallet.take(0, 1)[0]
    print(f"  combined signature verifies under the ordinary public key: "
          f"{authority.public_key.verify(token.message(), token.signature)}")

    try:
        wallet.request_tokens(authority, period=0, count=1)
    except TokenError as err:
        print(f"  over-budget request refused by every signer: {err}")

    view = authority.compromise_view([0, 1])
    print(f"  a 2-signer coalition holds {view['shares_held']}/"
          f"{view['shares_needed']} shares — cannot sign alone")

    print("\n== Separ running on the distributed authority ==")
    system = SeparSystem(["uber", "lyft"], weekly_hour_cap=40,
                         distributed_authority=3)
    system.register_worker("dora")
    for platform, hours in [("uber", 25), ("lyft", 15)]:
        result = system.complete_task("dora", platform, hours)
        print(f"  {hours}h on {platform}: "
              f"{'accepted' if result.accepted else result.reason}")
    result = system.complete_task("dora", "uber", 1)
    print(f"  1 more hour: {result.reason}")

    print("\n== the n-of-n liveness trade-off ==")
    system.authority.take_offline(1)
    system.advance_weeks(1)
    result = system.complete_task("dora", "uber", 5)
    print(f"  with signer 1 offline, new issuance: {result.reason}")
    print("  (k-of-n threshold signing is the documented next step)")


if __name__ == "__main__":
    main()
